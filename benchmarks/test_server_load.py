"""Server load benchmark: 8 concurrent clients over localhost TCP.

The acceptance workload for the `repro.server` network layer: an
in-process :class:`StationServer` wrapping the hospital station is
driven by the thread-based load generator with >= 8 concurrent
clients.  Asserts every request succeeds and that real throughput /
latency percentiles come out sane; the full report lands in
``BENCH_server.json`` (next to ``BENCH_engine.json``).
"""

import json
import pathlib

from repro.server.loadgen import run_load, write_report
from repro.server.service import ServerThread, StationServer, hospital_station

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

CLIENTS = 8
QUERIES = 4


def test_eight_client_load_writes_report():
    station, subjects = hospital_station(folders=2)
    server = StationServer(station)
    with ServerThread(server) as (host, port):
        report = run_load(
            host, port, clients=CLIENTS, queries=QUERIES, subjects=subjects
        )
        stats_snapshot = dict(server.server_stats)

    assert report["clients"] == CLIENTS
    assert report["requests"] == CLIENTS * QUERIES
    assert report["errors"] == 0, report["error_samples"]
    assert report["throughput_rps"] > 0
    latency = report["latency_ms"]
    assert 0 < latency["p50"] <= latency["p95"] <= latency["max"]
    assert report["bytes_received"] > 0
    # The server really served that traffic (not some other instance).
    assert stats_snapshot["queries"] == CLIENTS * QUERIES
    assert stats_snapshot["connections"] >= CLIENTS
    # Per-connection meters were merged into the shared one on close.
    assert server.meter.bytes_decrypted > 0

    report["server_stats"] = stats_snapshot
    out = REPO_ROOT / "BENCH_server.json"
    write_report(report, str(out))
    loaded = json.loads(out.read_text())
    assert loaded["throughput_rps"] > 0
    assert "p50" in loaded["latency_ms"] and "p95" in loaded["latency_ms"]
    station.close()
