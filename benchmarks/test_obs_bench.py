"""Tracing overhead guard: the cached hot path with tracing on vs off.

Every request already pays the frame-header and dispatch cost; tracing
adds span bookkeeping server-side plus the trace id echoed in the
RESULT trailer.  The guard drives the same cached query end-to-end
against a ``repro serve --seal`` **subprocess** — a real station server
in its own interpreter, streaming link-sealed chunks: the paper's
Section 2 deployment, where the terminal talks to the station over an
untrusted network — with and without a trace id, and asserts the
traced path stays within ``MAX_OVERHEAD`` of the untraced one.  (An
in-process server thread would share the GIL with the measuring
client, double-billing every server-side microsecond against the
client's turnaround and measuring an overhead no deployed client ever
sees.)

Wall-clock on a shared CI host is noisy, so the measurement compares
the *per-request minimum* of each arm over interleaved rounds (each
round runs one untraced and one traced batch back to back, alternating
which goes first to cancel machine-speed drift).  The minimum is the
deterministic floor: GC pauses and scheduler preemption only ever add
time, and they hit both arms stochastically, so the min-to-min ratio
isolates the cost tracing itself adds to every request.  A
``gc.collect()`` before each batch keeps one arm's garbage from being
billed to the other.  A failing attempt is re-measured a few times
before the guard trips.  Emits ``BENCH_obs.json`` — the artifact CI
uploads.
"""

import gc
import json
import os
import pathlib
import re
import subprocess
import sys
import time

from repro.obs.trace import new_trace_id
from repro.server.client import RemoteSession

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: The issue's acceptance bar: traced cached-path <= 1.05x untraced.
MAX_OVERHEAD = 1.05
ROUNDS = 7
BATCH = 40
ATTEMPTS = 4

_SERVING = re.compile(
    r"serving '(?P<doc>[^']+)' on (?P<host>\S+):(?P<port>\d+) "
    r"\(subjects: (?P<subjects>.+), backend: "
)


def _spawn_server():
    """``repro serve`` in its own interpreter; returns (proc, host, port,
    document, first subject) parsed from its announce line."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(REPO_ROOT / "src"), env.get("PYTHONPATH")])
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--hospital",
            "6",
            "--port",
            "0",
            "--chunk-size",
            "4096",
            "--seal",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    match = _SERVING.search(line)
    if match is None:
        proc.terminate()
        proc.wait(timeout=10)
        raise AssertionError("could not parse serve banner: %r" % line)
    subject = match.group("subjects").split(",")[0].strip()
    return proc, match.group("host"), int(match.group("port")), subject


def _time_batch(session, trace_ids):
    """Fastest single request in one batch (the deterministic floor)."""
    gc.collect()
    fastest = float("inf")
    for trace in trace_ids:
        started = time.perf_counter()
        result = session.evaluate("hospital", trace=trace)
        elapsed = time.perf_counter() - started
        if elapsed < fastest:
            fastest = elapsed
        assert result.trailer.get("cached") is True
    return fastest


def _measure(session):
    """One attempt: interleaved rounds, best-of for each arm."""
    untraced = [0] * BATCH
    best = {"off": float("inf"), "on": float("inf")}
    for round_index in range(ROUNDS):
        traced = [new_trace_id() for _ in range(BATCH)]
        arms = [("off", untraced), ("on", traced)]
        if round_index % 2:
            arms.reverse()
        for name, ids in arms:
            best[name] = min(best[name], _time_batch(session, ids))
    return best["on"] / best["off"], best


def test_tracing_overhead_on_cached_path():
    proc, host, port, subject = _spawn_server()
    attempts = []
    try:
        with RemoteSession(host, port, subject) as session:
            warm = session.evaluate("hospital")  # populate the view cache
            assert session.evaluate("hospital").trailer.get("cached") is True
            assert warm.data
            for _ in range(ATTEMPTS):
                ratio, best = _measure(session)
                attempts.append(
                    {
                        "ratio": round(ratio, 4),
                        "untraced_us": round(best["off"] * 1e6, 1),
                        "traced_us": round(best["on"] * 1e6, 1),
                    }
                )
                if ratio <= MAX_OVERHEAD:
                    break
            observability = session.stats()["observability"]
    finally:
        proc.terminate()
        proc.wait(timeout=10)

    final = attempts[-1]
    report = {
        "bench": "obs",
        "rounds": ROUNDS,
        "batch": BATCH,
        "max_overhead": MAX_OVERHEAD,
        "attempts": attempts,
        "ratio": final["ratio"],
        "tracer": observability,
    }
    (REPO_ROOT / "BENCH_obs.json").write_text(json.dumps(report, indent=2) + "\n")

    # Every traced request finished its trace server-side.
    assert observability["finished"] >= ROUNDS * BATCH
    assert final["ratio"] <= MAX_OVERHEAD, attempts
