"""Shared fixtures for the per-table/figure benchmark suite.

The Workloads instance is process-wide: documents, encodings and
protected forms are built once and reused by every bench.
"""

import pytest

from repro.bench.workloads import Workloads


@pytest.fixture(scope="session")
def workloads():
    return Workloads.shared()


def print_experiment(title: str, data) -> None:
    """Render an experiment table into the captured bench output."""
    from repro.bench.experiments import render

    print()
    print(render(data, title=title))
