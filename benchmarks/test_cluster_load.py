"""Cluster load benchmark: the CI failover drill behind one gateway.

Boots the in-process sharded cluster (3 backends, 2 replicas, 2
hospital documents on distinct primaries), drives a 4-client mixed
load through the gateway and — mid-run, once a third of the requests
have been served — abruptly kills the primary backend of the first
document.  The hard assertion is the cluster layer's whole promise:
**zero failed requests**; the gateway must absorb the loss by retrying
in-flight queries on a replica and repairing placement in the
background.  The report (per-backend throughput and p95 skew, gateway
failover/repair counters, final topology) lands in
``BENCH_cluster.json``, uploaded as a CI artifact.
"""

import json
import pathlib

from repro.server.loadgen import run_cluster_load, write_report

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

BACKENDS = 3
REPLICAS = 2
CLIENTS = 4
QUERIES = 12


def test_cluster_failover_drill_writes_report():
    report = run_cluster_load(
        backends=BACKENDS,
        replicas=REPLICAS,
        documents=2,
        clients=CLIENTS,
        queries=QUERIES,
        folders=2,
        mix=[
            ("secretary", None, 4.0),
            ("doctor0", None, 2.0),
            ("researcher", None, 1.0),
        ],
        seed=11,
        kill_one=True,
    )

    # The whole point: a backend died mid-run, no client ever saw it.
    assert report["errors"] == 0, report["error_samples"]
    assert report["requests"] == CLIENTS * QUERIES
    assert report["throughput_rps"] > 0

    info = report["cluster"]
    assert info["backends"] == BACKENDS
    assert info["replicas"] == REPLICAS
    gateway = info["gateway"]
    assert gateway["errors"] == 0
    if info["killed_backend"] is not None:
        # The drill engaged: the kill must be visible in the gateway's
        # own accounting and the dead node out of the final topology.
        assert gateway["backends_lost"] >= 1
        assert info["killed_after_queries"] < CLIENTS * QUERIES
        assert info["per_backend"][info["killed_backend"]]["alive"] is False
        for placement in info["topology"].values():
            assert info["killed_backend"] not in placement["nodes"]
            # Repair restored full replication on the survivors.
            assert len(placement["nodes"]) == REPLICAS
    # Routing spread the documents: with 2 documents on 3 backends at
    # R=2, at least two backends served traffic.
    served = [
        name
        for name, entry in info["per_backend"].items()
        if entry.get("requests")
    ]
    assert len(served) >= 2

    out = REPO_ROOT / "BENCH_cluster.json"
    write_report(report, str(out))
    loaded = json.loads(out.read_text())
    assert loaded["bench"] == "cluster_load"
    assert loaded["cluster"]["p95_skew_ms"] >= 0
