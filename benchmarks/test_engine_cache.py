"""Plan-cache microbenchmark: compilation amortization under load.

The engine's whole premise is that a :class:`~repro.engine.plans.
PolicyPlan` is compiled once at provisioning time and reused for every
document and request.  This bench serves 100 documents under one
policy both ways and asserts the cached path does >= 10x fewer
``compile_path`` calls (it actually does exactly one compilation per
rule, total).  Results land in ``BENCH_engine.json``.
"""

import json
import pathlib
import random
import time

from repro import AccessRule, Policy, authorized_view
from repro.engine import SecureStation, compile_policy
from repro.xmlkit.dom import Node
from repro.xpath import nfa
from repro.xpath import parser as xparser

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

POLICY_RULES = [
    ("+", "//folder/admin"),
    ("-", "//admin/ssn"),
    ("+", "//acts/act[doctor]"),
    ("-", "//act[result = bad]"),
    ("+", "//notes//entry"),
]

N_DOCUMENTS = 100


def make_policy() -> Policy:
    return Policy(
        [AccessRule(sign, obj) for sign, obj in POLICY_RULES], subject="bench"
    )


def make_documents(count: int = N_DOCUMENTS):
    rng = random.Random(7)
    documents = []
    for _ in range(count):
        folder = Node("folder")
        admin = Node("admin")
        admin.children.append(Node("name"))
        admin.children[-1].children.append("u%d" % rng.randint(0, 99))
        admin.children.append(Node("ssn"))
        admin.children[-1].children.append(str(rng.randint(100, 999)))
        folder.children.append(admin)
        acts = Node("acts")
        for _ in range(rng.randint(1, 4)):
            act = Node("act")
            doctor = Node("doctor")
            doctor.children.append("d%d" % rng.randint(0, 9))
            result = Node("result")
            result.children.append(rng.choice(["ok", "bad"]))
            act.children.append(doctor)
            act.children.append(result)
            acts.children.append(act)
        folder.children.append(acts)
        documents.append(folder)
    return documents


def test_engine_plan_cache_amortizes_compilation(benchmark):
    documents = make_documents()
    events = [list(document.iter_events()) for document in documents]
    policy = make_policy()

    # -- uncached: a fresh evaluator (fresh compilation) per document --
    compiles_before = nfa.compile_calls()
    parses_before = xparser.parse_calls()
    started = time.perf_counter()
    uncached_views = [authorized_view(evs, make_policy()) for evs in events]
    uncached_seconds = time.perf_counter() - started
    uncached_compiles = nfa.compile_calls() - compiles_before
    uncached_parses = xparser.parse_calls() - parses_before

    # -- cached: one PolicyPlan serves every document ------------------
    plan = compile_policy(policy)
    compiles_before = nfa.compile_calls()
    parses_before = xparser.parse_calls()

    def cached_kernel():
        return [authorized_view(evs, plan) for evs in events]

    cached_views = benchmark.pedantic(cached_kernel, rounds=1, iterations=1)
    cached_seconds = benchmark.stats.stats.mean
    cached_compiles = nfa.compile_calls() - compiles_before
    cached_parses = xparser.parse_calls() - parses_before

    assert cached_views == uncached_views  # identical semantics
    # Reusing the plan performs ZERO additional parse/NFA-compile work.
    assert cached_compiles == 0
    assert cached_parses == 0
    assert uncached_compiles >= 10 * max(1, cached_compiles + 1)
    assert uncached_compiles == N_DOCUMENTS * len(POLICY_RULES)

    # -- station plan cache: repeated requests hit the LRU -------------
    station = SecureStation()
    station.publish("bench", documents[0])
    station.grant("bench", policy)
    station.evaluate("bench", "bench")
    compiles_before = nfa.compile_calls()
    for _ in range(10):
        station.evaluate("bench", "bench")
    station_compiles = nfa.compile_calls() - compiles_before
    assert station_compiles == 0
    assert station.stats.plan_hits >= 10

    payload = {
        "bench": "engine_plan_cache",
        "documents": N_DOCUMENTS,
        "rules": len(POLICY_RULES),
        "uncached": {
            "compile_path_calls": uncached_compiles,
            "parse_xpath_calls": uncached_parses,
            "seconds": round(uncached_seconds, 4),
        },
        "cached": {
            "compile_path_calls": cached_compiles,
            "parse_xpath_calls": cached_parses,
            "seconds": round(cached_seconds, 4),
        },
        # ratio vs max(1, cached) keeps the JSON finite when cached == 0
        "compile_ratio": uncached_compiles / max(1, cached_compiles),
        "station": {
            "repeat_requests": 10,
            "compile_path_calls": station_compiles,
            "plan_hits": station.stats.plan_hits,
            "plan_misses": station.stats.plan_misses,
        },
    }
    (REPO_ROOT / "BENCH_engine.json").write_text(
        json.dumps(payload, indent=2, default=str) + "\n"
    )
    station.close()
