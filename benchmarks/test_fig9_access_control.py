"""Fig. 9 — access-control overhead: BF vs TCSBR vs LWB per profile.

Paper's findings that must reproduce:

* Brute-Force is dramatically slower (it reads and decrypts the whole
  document): 3.5x-15x the LWB depending on the profile's selectivity;
* TCSBR is close to the (unreachable) LWB;
* the Researcher pays the largest relative overhead (predicates on
  Protocol remain pending until each folder's end);
* the cost split is dominated by decryption, then communication, with
  access control at a few percent (2-15 % in the paper).
"""

from conftest import print_experiment

from repro.bench.experiments import fig9_access_control
from repro.soe.session import SecureSession


def test_fig9_access_control(workloads, benchmark):
    data = benchmark.pedantic(
        lambda: fig9_access_control(workloads), rounds=1, iterations=1
    )
    print_experiment("Figure 9 - access control overhead", data)
    rows = {row[0]: row for row in data["rows"]}

    for profile in ["secretary", "doctor", "researcher"]:
        bf, tcsbr, lwb = rows[profile][1], rows[profile][2], rows[profile][3]
        assert bf > 2.5 * tcsbr, profile  # the index pays off massively
        assert tcsbr > lwb, profile  # LWB is a true lower bound

    # Selective profiles gain the most from skipping (paper: secretary
    # BF/LWB ~ 15, doctor ~ 3.5).
    assert rows["secretary"][4] > rows["doctor"][4]
    # The researcher has the largest TCSBR/LWB overhead (pending
    # predicates force buffering and read-back).
    assert rows["researcher"][5] > rows["secretary"][5]
    assert rows["researcher"][5] > rows["doctor"][5]


def test_fig9_cost_split(workloads):
    data = fig9_access_control(workloads)
    for profile, detail in data["details"].items():
        shares = detail["tcsbr"].breakdown.shares()
        # Decryption dominates, then communication, AC a few percent.
        assert shares["decryption"] > shares["communication"], profile
        assert shares["communication"] > shares["access_control"], profile
        assert shares["access_control"] < 0.20, profile


def test_fig9_tcsbr_session_kernel(workloads, benchmark):
    """Wall-clock of one full TCSBR secretary session (not simulated)."""
    prepared = workloads.prepared("hospital", "ECB")
    policy = workloads.profile("secretary")

    def kernel():
        return SecureSession(prepared, policy).run()

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert result.events
