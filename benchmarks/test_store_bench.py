"""Persistent chunk store under a corpus far larger than its cache.

Publishes ``REPRO_STORE_BENCH_DOCS`` one-chunk documents (default
100 000, ~200 MB of chunk log) into a :class:`LogStore` whose page
cache is pinned to 8 MiB — a working set ~25x the cache — then
measures the three paths that matter operationally:

* bulk publish throughput (``sync="batch"``: fsync deferred to flush),
* cold reads (mmap fault + segment CRC verify + handle build),
* cache-hit reads (resident page, warmed handle).

Asserts the cache-hit path is at least ``MIN_HIT_SPEEDUP``x the cold
path — the ratio the page cache exists to buy — and that the recovery
replay of a six-figure manifest stays interactive.  Emits
``BENCH_store.json``, the artifact CI uploads.

Set ``REPRO_STORE_BENCH_DOCS=2000`` (or any smaller corpus) for a
quick local run; the assertions are ratio-based and hold at any size
that still exceeds the cache.
"""

import json
import os
import pathlib
import random
import time

from repro.engine import DocumentPipeline
from repro.store import LogStore

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

DOCS = int(os.environ.get("REPRO_STORE_BENCH_DOCS", "100000"))
CACHE_BYTES = 8 * 1024 * 1024
SAMPLE = 2000  # cold/hot read sample; always fits the 8 MiB cache
#: Measured locally ~40x (cold ~200us: mmap fault + CRC + scheme
#: build; hit ~5us).  5x is the contract; anything below means the
#: cache stopped doing its job.
MIN_HIT_SPEEDUP = 5.0

KEY = bytes(range(16))
#: Small enough to encode+encrypt into a single 2 KiB chunk record.
SOURCE = "<doc><name>entry</name><val>42</val></doc>"


def test_store_corpus_bench(tmp_path):
    prepared = (
        DocumentPipeline.publisher(scheme="ECB", key=KEY)
        .run(source=SOURCE)
        .prepared
    )
    record_bytes = prepared.secure.stored_size()
    sample = min(SAMPLE, DOCS)

    store = LogStore(str(tmp_path), cache_bytes=CACHE_BYTES, sync="batch")
    started = time.perf_counter()
    for index in range(DOCS):
        store.put("doc-%06d" % index, prepared, KEY, 0)
    store.flush()
    publish_seconds = time.perf_counter() - started
    description = store.describe()
    assert description["documents"] == DOCS
    # The point of the exercise: the corpus must dwarf the cache.
    assert description["log_bytes"] > 4 * CACHE_BYTES or DOCS < 20000

    rng = random.Random(7)
    sample_ids = ["doc-%06d" % i for i in rng.sample(range(DOCS), sample)]

    def read(document_id):
        return bytes(store.get(document_id).prepared.secure.stored)

    reference = bytes(prepared.secure.stored)
    started = time.perf_counter()
    for document_id in sample_ids:
        assert read(document_id) == reference
    cold_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(3):
        for document_id in sample_ids:
            read(document_id)
    hot_seconds = (time.perf_counter() - started) / 3.0

    after = store.describe()
    assert after["page_misses"] >= sample
    assert after["page_hits"] >= 3 * sample
    assert after["cache_used_bytes"] <= CACHE_BYTES
    store.close()

    # Recovery: replaying the full six-figure manifest must stay
    # interactive — this is every restart's startup cost.
    started = time.perf_counter()
    reopened = LogStore(str(tmp_path), cache_bytes=CACHE_BYTES)
    recover_seconds = time.perf_counter() - started
    assert len(reopened) == DOCS
    assert bytes(reopened.get(sample_ids[0]).prepared.secure.stored) == reference
    reopened.close()

    hit_speedup = cold_seconds / hot_seconds if hot_seconds else float("inf")
    assert hit_speedup >= MIN_HIT_SPEEDUP, (
        "page-cache hit path only %.1fx faster than cold reads "
        "(cold %.1fus, hot %.1fus)"
        % (
            hit_speedup,
            1e6 * cold_seconds / sample,
            1e6 * hot_seconds / sample,
        )
    )

    payload = {
        "bench": "store",
        "documents": DOCS,
        "record_bytes": record_bytes,
        "log_bytes": description["log_bytes"],
        "cache_bytes": CACHE_BYTES,
        "working_set_over_cache": round(
            description["log_bytes"] / CACHE_BYTES, 1
        ),
        "publish": {
            "seconds": round(publish_seconds, 3),
            "docs_per_second": round(DOCS / publish_seconds, 1),
            "mb_per_second": round(
                description["log_bytes"] / publish_seconds / 1e6, 1
            ),
        },
        "reads": {
            "sample": sample,
            "cold_us": round(1e6 * cold_seconds / sample, 2),
            "hit_us": round(1e6 * hot_seconds / sample, 2),
            "hit_speedup": round(hit_speedup, 1),
        },
        "recovery": {
            "seconds": round(recover_seconds, 3),
            "manifest_entries": DOCS,
        },
        "counters": {
            key: after[key]
            for key in (
                "page_hits",
                "page_misses",
                "bytes_read",
                "bytes_written",
                "commits",
            )
        },
    }
    (REPO_ROOT / "BENCH_store.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
