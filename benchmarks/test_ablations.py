"""Ablations of the design choices the paper motivates.

Not figures of the paper, but experiments isolating each mechanism's
contribution — the Skip-index metadata (token filtering), the subtree
bulk copy, the chunk/fragment geometry of the integrity layer and the
static policy optimizer.
"""

import pytest

from repro.accesscontrol.evaluator import StreamingEvaluator
from repro.accesscontrol.optimizer import optimize_policy
from repro.crypto.chunks import ChunkLayout
from repro.metrics import Meter
from repro.skipindex.decoder import SkipIndexNavigator
from repro.soe.session import SecureSession
from repro.accesscontrol.model import AccessRule, Policy


def run_encoded(workloads, policy, provide_meta=True, enable_skipping=True,
                enable_subtree_copy=True):
    encoded = workloads.encoded("hospital")
    meter = Meter()
    navigator = SkipIndexNavigator(
        encoded.data, encoded.dictionary, encoded.root_offset,
        meter=meter, provide_meta=provide_meta,
    )
    evaluator = StreamingEvaluator(
        policy, meter=meter, enable_skipping=enable_skipping,
        enable_subtree_copy=enable_subtree_copy,
    )
    events = evaluator.run(navigator)
    return events, meter


def test_ablation_token_filtering(workloads, benchmark):
    """Skip-index metadata lets the evaluator kill doomed tokens; with
    skipping but *no* metadata, far fewer subtrees become skippable."""
    policy = workloads.profile("researcher")

    def kernel():
        return (
            run_encoded(workloads, policy, provide_meta=True),
            run_encoded(workloads, policy, provide_meta=False),
        )

    (with_meta, meter_meta), (without_meta, meter_none) = benchmark.pedantic(
        kernel, rounds=1, iterations=1
    )
    assert with_meta == without_meta  # results must be identical
    print(
        "\nwith metadata:    events=%d skipped=%d killed=%d"
        % (meter_meta.events, meter_meta.skipped_subtrees, meter_meta.killed_tokens)
    )
    print(
        "without metadata: events=%d skipped=%d killed=%d"
        % (meter_none.events, meter_none.skipped_subtrees, meter_none.killed_tokens)
    )
    assert meter_meta.killed_tokens > 0
    assert meter_none.killed_tokens == 0
    assert meter_meta.events < meter_none.events
    assert meter_meta.skipped_subtrees > meter_none.skipped_subtrees


def test_ablation_subtree_copy(workloads, benchmark):
    """Bulk-copying authorized subtrees removes their token processing."""
    policy = workloads.profile("secretary")

    def kernel():
        return (
            run_encoded(workloads, policy, enable_subtree_copy=True),
            run_encoded(workloads, policy, enable_subtree_copy=False),
        )

    (with_copy, meter_copy), (without_copy, meter_none) = benchmark.pedantic(
        kernel, rounds=1, iterations=1
    )
    assert with_copy == without_copy
    print(
        "\nwith copy:    events=%d token_ops=%d"
        % (meter_copy.events, meter_copy.token_ops)
    )
    print(
        "without copy: events=%d token_ops=%d"
        % (meter_none.events, meter_none.token_ops)
    )
    assert meter_copy.events < meter_none.events


@pytest.mark.parametrize("chunk_size", [512, 2048, 8192])
def test_ablation_chunk_size(workloads, benchmark, chunk_size):
    """Chunk geometry trades digest overhead against read granularity.

    Small chunks: more digests to decrypt; large chunks: CBC-style
    schemes degrade, MHT keeps fragment granularity.
    """
    tree = workloads.document("hospital")
    policy = workloads.profile("secretary")
    layout = ChunkLayout(chunk_size=chunk_size, fragment_size=256)

    from repro.soe.session import prepare_document

    prepared = benchmark.pedantic(
        lambda: prepare_document(tree, scheme="ECB-MHT", layout=layout),
        rounds=1,
        iterations=1,
    )
    result = SecureSession(prepared, policy).run()
    print(
        "\nchunk=%d: time=%.3fs transferred=%d digests=%d"
        % (
            chunk_size,
            result.seconds,
            result.meter.bytes_transferred,
            result.meter.digest_decrypts,
        )
    )
    assert result.meter.digest_decrypts > 0


@pytest.mark.parametrize("fragment_size", [64, 256, 1024])
def test_ablation_fragment_size(workloads, fragment_size):
    """Fragment geometry: finer fragments transfer less data but more
    sibling hashes (Appendix A's trade-off)."""
    tree = workloads.document("hospital")
    policy = workloads.profile("secretary")
    layout = ChunkLayout(chunk_size=2048, fragment_size=fragment_size)

    from repro.soe.session import prepare_document

    prepared = prepare_document(tree, scheme="ECB-MHT", layout=layout)
    result = SecureSession(prepared, policy).run()
    print(
        "fragment=%d: time=%.3fs transferred=%d hash_nodes=%d"
        % (
            fragment_size,
            result.seconds,
            result.meter.bytes_transferred,
            result.meter.hash_nodes,
        )
    )
    assert result.events


def test_ablation_policy_optimizer(workloads, benchmark):
    """Redundant rules cost token operations; the optimizer removes
    provably-contained same-sign rules."""
    redundant = Policy(
        [
            AccessRule("+", "//Admin"),
            AccessRule("+", "//Folder/Admin"),
            AccessRule("+", "//Admin/SSN"),
            AccessRule("+", "//Admin/Age"),
            AccessRule("+", "//Hospital//Admin"),
        ]
    )
    optimized = optimize_policy(redundant)
    assert len(optimized) < len(redundant)

    def kernel():
        return (
            run_encoded(workloads, redundant),
            run_encoded(workloads, optimized),
        )

    (view_full, meter_full), (view_opt, meter_opt) = benchmark.pedantic(
        kernel, rounds=1, iterations=1
    )
    assert view_full == view_opt  # semantics preserved
    print(
        "\nredundant: rules=%d token_ops=%d; optimized: rules=%d token_ops=%d"
        % (len(redundant), meter_full.token_ops, len(optimized), meter_opt.token_ops)
    )
    assert meter_opt.token_ops <= meter_full.token_ops
