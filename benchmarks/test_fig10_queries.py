"""Fig. 10 — impact of queries: execution time vs result size.

Paper's findings that must reproduce:

* for every view, execution time decreases (linearly) as the query
  gets more selective — time is linear in the result size;
* the intercept is non-zero: even an empty result costs time, because
  parts of the document must be analyzed before being skipped;
* view selectivity orders the curves (doctor views above researcher
  views above the secretary's, in result size).
"""

from conftest import print_experiment

from repro.bench.experiments import fig10_queries, linear_fit


def test_fig10_queries(workloads, benchmark):
    data = benchmark.pedantic(
        lambda: fig10_queries(workloads), rounds=1, iterations=1
    )
    print_experiment("Figure 10 - impact of queries", data)

    for view, points in data["series"].items():
        slope, intercept, r2 = linear_fit(points)
        print(
            "%s: time = %.4f * KB + %.3f  (r2=%.3f)"
            % (view, slope, intercept, r2)
        )
        # Linearity (the paper's headline for this figure).
        assert r2 > 0.97, view
        # Time grows with result size.
        assert slope > 0, view
        # Non-zero intercept: skipping still costs analysis time.
        assert intercept > 0, view

    # More selective query -> smaller result -> lower time, per view.
    for view, points in data["series"].items():
        sizes = [p[0] for p in points]
        times = [p[1] for p in points]
        assert sizes == sorted(sizes), view
        assert times == sorted(times), view
