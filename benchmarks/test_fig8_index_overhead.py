"""Fig. 8 — Skip-index storage overhead (struct/text %) per encoding.

Paper's qualitative findings that must reproduce:

* TC drastically reduces the structure size in all datasets;
* TCS adds 50-150 % on top of TC; TCSB is even more expensive,
  especially on Treebank (250 distinct tags);
* TCSBR (the Skip index) drastically reduces the TCSB overhead and
  comes back near TC — even below it for Sigmod in the paper.
"""

from conftest import print_experiment

from repro.bench.experiments import fig8_index_overhead
from repro.skipindex.variants import size_tcsbr


def test_fig8_index_overhead(workloads, benchmark):
    data = benchmark.pedantic(
        lambda: fig8_index_overhead(workloads), rounds=1, iterations=1
    )
    print_experiment("Figure 8 - index storage overhead", data)
    measured = data["measured"]

    for document, ratios in measured.items():
        # TC drastically smaller than NC.
        assert ratios["TC"] < ratios["NC"] / 2.5, document
        # Subtree sizes cost extra on top of TC.
        assert ratios["TCS"] > ratios["TC"], document
        # Flat bitmaps cost extra on top of TCS.
        assert ratios["TCSB"] > ratios["TCS"], document
        # The recursive encoding collapses the bitmap overhead.
        assert ratios["TCSBR"] < ratios["TCSB"], document

    # Treebank's 250-tag alphabet makes TCSB explode (254 % in the
    # paper) and TCSBR recover most of it.
    assert measured["treebank"]["TCSB"] > 3 * measured["treebank"]["TCS"]
    assert measured["treebank"]["TCSBR"] < measured["treebank"]["TCSB"] / 4

    # TCSBR lands in TC's neighbourhood (the paper's headline claim).
    for document, ratios in measured.items():
        assert ratios["TCSBR"] < 2.0 * ratios["TC"], document


def test_fig8_encoder_throughput(workloads, benchmark):
    """Time the real TCSBR encoder on the Hospital document."""
    doc = workloads.document("hospital")
    stats = benchmark.pedantic(lambda: size_tcsbr(doc), rounds=1, iterations=1)
    assert stats.total_bytes > 0
