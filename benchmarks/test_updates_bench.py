"""Live-update benchmark: dirty-chunk re-encryption on the hospital doc.

The acceptance workload for the live update path: one edit of each
kind through :meth:`SecureStation.update`, asserting the paper's cost
structure — a local same-length edit re-encrypts a couple of chunks, a
worst-case edit (dictionary growth) rewrites the whole store — and
that the cross-version replay defence holds on the benchmark document.
The full report lands in ``BENCH_updates.json`` (next to
``BENCH_engine.json`` / ``BENCH_server.json``).
"""

import json
import pathlib

import pytest

from repro.bench.experiments import updates_experiment
from repro.crypto.integrity import IntegrityError
from repro.datasets.hospital import HospitalConfig, generate_hospital
from repro.engine import SecureStation
from repro.skipindex.updates import UpdateOp
from repro.xmlkit.parser import parse_document

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def test_updates_bench_writes_report():
    out = REPO_ROOT / "BENCH_updates.json"
    experiment = updates_experiment(folders=16, output=str(out))
    report = experiment["report"]

    by_op = {record["op"]: record for record in report["ops"]}
    assert set(by_op) == {
        "text/same-length",
        "insert/append",
        "delete/last",
        "text/grow-tail",
        "rename/new-tag",
    }

    # Best case: a same-length text edit dirties k of N chunks and
    # re-encrypts no more than k + O(1) — here a couple of a dozen.
    local = by_op["text/same-length"]
    assert local["total_chunks"] >= 8
    assert local["chunks_reencrypted"] <= 2
    assert local["dirtied_ratio"] <= 0.25
    assert not local["full_reencrypt"]

    # A tail append stays cheap too.
    append = by_op["insert/append"]
    assert append["chunks_reencrypted"] < append["total_chunks"]

    # Worst case (new tag -> dictionary growth) cascades to a full
    # re-encryption, per the paper's rule.
    worst = by_op["rename/new-tag"]
    assert worst["worst_case"]
    assert worst["full_reencrypt"]
    assert worst["chunks_reencrypted"] == worst["total_chunks"]

    # Every op bumped the version by one on the chained station.
    assert report["chained_version"] == 4

    loaded = json.loads(out.read_text())
    assert loaded["bench"] == "updates"
    assert len(loaded["ops"]) == 5
    assert all("latency_ms" in record for record in loaded["ops"])


def test_replay_defence_on_benchmark_document():
    config = HospitalConfig(
        folders=8, doctors=4, acts_per_folder=3, labresults_per_folder=2, seed=7
    )
    tree = generate_hospital(config)
    station = SecureStation()
    station.publish("hospital", tree)
    from repro.datasets.hospital import secretary_policy

    station.grant("hospital", secretary_policy())

    prepared_before = station.document("hospital")
    old_stored = bytes(prepared_before.secure.stored)
    result = station.update(
        "hospital", UpdateOp.insert([], parse_document("<Folder>note</Folder>"))
    )
    assert result.version == 1
    record = prepared_before.scheme.layout.stored_chunk_size()
    chunk = sorted(result.dirty_chunks)[0]
    new_prepared = station.document("hospital")
    new_prepared.secure.stored[chunk * record : (chunk + 1) * record] = old_stored[
        chunk * record : (chunk + 1) * record
    ]
    with pytest.raises(IntegrityError):
        station.evaluate("hospital", "secretary")
    station.close()
