"""Fig. 12 — throughput on real datasets (KB/s), with and without
integrity, against the LWB.

Paper's findings that must reproduce:

* the method handles very different document shapes, with a throughput
  in the tens of KB/s on the smart-card context (55-85 KB/s in the
  paper, against 16-128 KB/s xDSL links of the time);
* LWB throughput sits above TCSBR for every dataset;
* integrity checking costs a moderate, uniform slowdown.
"""

from conftest import print_experiment

from repro.bench.experiments import fig12_real_datasets


def test_fig12_real_datasets(workloads, benchmark):
    data = benchmark.pedantic(
        lambda: fig12_real_datasets(workloads), rounds=1, iterations=1
    )
    print_experiment("Figure 12 - performance on real datasets", data)
    measured = data["measured"]

    for label, entry in measured.items():
        # LWB above TCSBR, both with and without integrity.
        assert entry["lwb-noint"] >= entry["tcsbr-noint"], label
        assert entry["lwb-int"] >= entry["tcsbr-int"], label
        # Integrity costs something but does not collapse throughput.
        assert entry["tcsbr-int"] < entry["tcsbr-noint"], label
        assert entry["tcsbr-int"] > entry["tcsbr-noint"] / 4, label

    # Tens of KB/s on the smart-card context for the document-wide
    # random policies (the paper's 55-85 KB/s band, scaled workloads).
    for label in ["sigmod", "wsu"]:
        assert 20 < measured[label]["tcsbr-noint"] < 200, label
