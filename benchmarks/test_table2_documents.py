"""Table 2 — characteristics of the four benchmark documents.

Absolute sizes are scaled down (pure-Python pipeline); the shape
statistics the paper's effects depend on (depth profile, tag alphabet,
text share) must match Table 2.
"""

from conftest import print_experiment

from repro.bench.experiments import table2_documents


def test_table2_documents(workloads, benchmark):
    data = benchmark.pedantic(
        lambda: table2_documents(workloads), rounds=1, iterations=1
    )
    print_experiment("Table 2 - document characteristics", data)
    rows = {row[0]: row for row in data["rows"]}

    # Shape assertions mirroring the paper's Table 2.
    assert rows["wsu"][3] <= 4  # max depth
    assert 15 <= rows["wsu"][5] <= 25  # distinct tags
    assert rows["sigmod"][3] == 6
    assert rows["sigmod"][5] == 11
    assert rows["treebank"][3] >= 30
    assert rows["treebank"][5] >= 250
    assert rows["hospital"][3] in (6, 7, 8)


def test_wsu_is_structure_heavy(workloads):
    doc = workloads.document("wsu")
    # WSU: a large number of very small elements (Table 2: 74557
    # elements for 210 KB of text, under 3 bytes of text per element).
    assert doc.text_size() / doc.count_elements() < 6


def test_treebank_is_text_heavy(workloads):
    doc = workloads.document("treebank")
    assert doc.text_size() / doc.count_elements() > 4
