"""Fig. 11 — impact of integrity control per scheme and profile.

Paper's findings that must reproduce:

* ECB (no integrity) is the floor;
* CBC-SHA is the most expensive: every touched chunk must be fully
  transferred, decrypted and hashed;
* CBC-SHAC avoids the full-chunk decryption but not the full-chunk
  transfer: strictly between;
* ECB-MHT (the paper's proposal) is the cheapest integrity scheme —
  "the cost ascribed to integrity checking remains quite acceptable"
  (+32-38 % in the paper).
"""

from conftest import print_experiment

from repro.bench.experiments import fig11_integrity
from repro.soe.session import SecureSession


def test_fig11_integrity(workloads, benchmark):
    data = benchmark.pedantic(
        lambda: fig11_integrity(workloads), rounds=1, iterations=1
    )
    print_experiment("Figure 11 - impact of integrity control", data)
    measured = data["measured"]

    for profile, times in measured.items():
        assert times["ECB"] < times["ECB-MHT"], profile
        assert times["ECB-MHT"] < times["CBC-SHAC"], profile
        assert times["CBC-SHAC"] < times["CBC-SHA"], profile
        # ECB-MHT's overhead stays far below CBC-SHA's.
        mht_overhead = times["ECB-MHT"] / times["ECB"]
        sha_overhead = times["CBC-SHA"] / times["ECB"]
        assert mht_overhead < sha_overhead / 1.5, profile


def test_fig11_mht_session_kernel(workloads, benchmark):
    prepared = workloads.prepared("hospital", "ECB-MHT")
    policy = workloads.profile("doctor")

    def kernel():
        return SecureSession(prepared, policy).run()

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert result.meter.digest_decrypts > 0
    assert result.meter.hash_nodes > 0
