"""Structural-index benchmark: chunk-range serving vs full streaming.

The acceptance workload for the publish-time (pre, post, level) index:
one highly selective query (``//rare/val``) against a document whose
payload is hundreds of cold sibling records.  The streaming evaluator
must decrypt at least a chunk per sibling header to walk past them; the
indexed station resolves the query to a chunk-range plan before any
decryption and touches only the ranges that contribute to the view.

Guards (the reason this lives in CI):

* identical output — the indexed view is byte-equal to the streamed one;
* wall-clock speedup >= ``MIN_SPEEDUP`` on the selective query;
* chunks decrypted by the indexed path <= ``MAX_CHUNK_FRACTION`` of the
  chunks the streaming path touches (the index is doing the skipping,
  not a cache);
* an ineligible (wildcard) query falls back to streaming with no
  overhead catastrophe (sanity, not a ratio guard).

The full report lands in ``BENCH_index.json`` next to the other
``BENCH_*.json`` artifacts.
"""

import json
import pathlib
import time

from repro.engine import PublishOptions, SecureStation, StationConfig
from repro.xmlkit.dom import Node
from repro.xmlkit.serializer import serialize_events

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

RECORDS = 400
REPEATS = 5
MIN_SPEEDUP = 5.0
MAX_CHUNK_FRACTION = 0.05


def selective_document(records: int = RECORDS) -> Node:
    """A folder of ``records`` fat cold records plus one hot needle."""
    root = Node("folder")
    for index in range(records):
        record = Node("rec")
        record.add(Node("name").add("record-%04d" % index))
        record.add(Node("data").add("x" * 300))
        root.add(record)
    rare = Node("rare")
    rare.add(Node("val").add("gold"))
    root.add(rare)
    return root


def _station(index: bool) -> SecureStation:
    station = SecureStation(StationConfig(cache_views=False, prune=True))
    station.publish(
        "doc", selective_document(), PublishOptions(scheme="ECB-MHT", index=index)
    )
    station.grant("doc", _policy())
    return station


def _policy():
    from repro import AccessRule, Policy

    return Policy([AccessRule("+", "//folder")], subject="reader")


def _timed(station: SecureStation, query) -> dict:
    """Best-of-``REPEATS`` wall time plus the final request's meter."""
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        result = station.evaluate("doc", "reader", query=query)
        best = min(best, time.perf_counter() - t0)
    return {
        "seconds": best,
        "chunks": result.meter.chunks_accessed,
        "bytes_decrypted": result.meter.bytes_decrypted,
        "view": serialize_events(result.events),
        "indexed": result.indexed,
    }


def test_index_bench_writes_report():
    streamed_station = _station(index=False)
    indexed_station = _station(index=True)

    streamed = _timed(streamed_station, "//rare/val")
    indexed = _timed(indexed_station, "//rare/val")

    # Correctness before speed: byte-identical views, and the indexed
    # station really served through the index.
    assert indexed["view"] == streamed["view"]
    assert "gold" in indexed["view"]
    assert indexed["indexed"] and not streamed["indexed"]
    assert indexed_station.stats.indexed_requests == REPEATS

    speedup = streamed["seconds"] / max(indexed["seconds"], 1e-9)
    chunk_fraction = indexed["chunks"] / max(streamed["chunks"], 1)
    assert speedup >= MIN_SPEEDUP, (
        "indexed path only %.1fx faster (streamed %.3fms, indexed %.3fms)"
        % (speedup, streamed["seconds"] * 1e3, indexed["seconds"] * 1e3)
    )
    assert chunk_fraction <= MAX_CHUNK_FRACTION, (
        "indexed path decrypted %d of %d streamed chunks (%.1f%%)"
        % (indexed["chunks"], streamed["chunks"], 100 * chunk_fraction)
    )

    # Ineligible query: wildcard steps fall back to full streaming and
    # still agree with the streaming station.
    wild_streamed = _timed(streamed_station, "//rare/*")
    wild_indexed = _timed(indexed_station, "//rare/*")
    assert wild_indexed["view"] == wild_streamed["view"]
    assert not wild_indexed["indexed"]

    report = {
        "bench": "index",
        "records": RECORDS,
        "repeats": REPEATS,
        "query": "//rare/val",
        "streamed_ms": streamed["seconds"] * 1e3,
        "indexed_ms": indexed["seconds"] * 1e3,
        "speedup": speedup,
        "streamed_chunks": streamed["chunks"],
        "indexed_chunks": indexed["chunks"],
        "chunk_fraction": chunk_fraction,
        "streamed_bytes_decrypted": streamed["bytes_decrypted"],
        "indexed_bytes_decrypted": indexed["bytes_decrypted"],
        "fallback_query": "//rare/*",
        "fallback_ms": wild_indexed["seconds"] * 1e3,
        "min_speedup_guard": MIN_SPEEDUP,
        "max_chunk_fraction_guard": MAX_CHUNK_FRACTION,
    }
    (REPO_ROOT / "BENCH_index.json").write_text(json.dumps(report, indent=2))

    loaded = json.loads((REPO_ROOT / "BENCH_index.json").read_text())
    assert loaded["bench"] == "index"
    assert loaded["speedup"] >= MIN_SPEEDUP
