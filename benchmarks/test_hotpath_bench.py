"""Hot-path regression guard: view cache, skip-pruned replay, crypto.

Runs the ``repro bench hotpath`` experiment once and asserts the
*ratios* it reports (never wall-clock absolutes, which vary with the
host): the cached serving path must beat the uncached path by a wide
margin, the whole-buffer crypto must beat the block-at-a-time
reference, and the skip-pruned replay must demonstrably engage (its
deterministic counters, plus byte-identical views).  Emits
``BENCH_hotpath.json`` — the artifact CI uploads.
"""

import json
import os
import pathlib

from repro.bench.experiments import hotpath_experiment

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Generous floors under the locally measured ratios (crypto ~16x,
#: serving ~6x) so a loaded CI host does not flake the guard.
MIN_CRYPTO_SPEEDUP = 3.0
MIN_CACHED_SPEEDUP = 3.0
#: The C kernels vs the pure fast path on CBC (measured ~110x; the
#: chain dependency leaves pure Python no SWAR escape, so even a
#: heavily loaded host clears 10x).  Skipped when no compiler exists.
MIN_NATIVE_SPEEDUP = 10.0
#: Pool fan-out needs real cores to show a ratio; on the 1-2 core CI
#: fallback runners the guard only requires that the pool never errors.
MIN_POOL_SPEEDUP = 3.0
POOL_GUARD_MIN_CORES = 4


def test_hotpath_regression_guard():
    data = hotpath_experiment(output=str(REPO_ROOT / "BENCH_hotpath.json"))
    report = data["report"]
    ratios = report["ratios"]

    # -- vectorized crypto: every whole-buffer mode beats the reference
    assert ratios["crypto_speedup_min"] >= MIN_CRYPTO_SPEEDUP, report["crypto"]
    for case in report["crypto"]:
        if case["parallelizable"]:
            assert case["speedup"] >= MIN_CRYPTO_SPEEDUP, case

    # -- view cache: repeated-query serving throughput
    assert ratios["cached_speedup"] >= MIN_CACHED_SPEEDUP, report["serving"]
    assert report["serving"]["uncached"]["errors"] == 0
    assert report["serving"]["cached"]["errors"] == 0
    assert report["serving"]["uncached"]["cached_hits"] == 0
    assert report["serving"]["cached"]["cached_hits"] > 0
    assert report["serving"]["cached"]["view_hits"] > 0

    # -- skip-pruned replay engaged (deterministic counters; the
    #    wall-clock speedup is reported, not asserted)
    for entry in report["evaluator"]:
        assert entry["pruned_pruned_subtrees"] > 0, entry
        assert entry["cold_pruned_subtrees"] == 0, entry
        # Pruned subtrees never reach token filtering, so the pruned
        # run kills no more tokens than the cold run.
        assert entry["pruned_killed_tokens"] <= entry["cold_killed_tokens"], entry

    # -- compute backends: native kernels and pool fan-out
    backends = report["backends"]
    assert "pure" in backends["available"]
    assert "pool" in backends["available"]
    if ratios["native_vs_fast"] is not None:  # compiler present
        assert "native" in backends["available"]
        assert ratios["native_vs_fast"] >= MIN_NATIVE_SPEEDUP, backends["cipher"]
    assert backends["document"]["pool_fallbacks"] == 0, backends["document"]
    cores = os.cpu_count() or 1
    if cores >= POOL_GUARD_MIN_CORES:
        assert ratios["pool_vs_serial"] >= MIN_POOL_SPEEDUP, backends["document"]

    # -- mixed workload: per-class stats exist and add up
    mixed = report["mixed_workload"]
    assert mixed["errors"] == 0
    assert sum(c["requests"] for c in mixed["classes"].values()) == mixed["requests"]
    assert sum(c["cached"] for c in mixed["classes"].values()) == mixed["cached_hits"]

    # -- the artifact landed
    written = json.loads((REPO_ROOT / "BENCH_hotpath.json").read_text())
    assert written["bench"] == "hotpath"
    assert written["ratios"] == ratios
