"""Table 1 — communication and decryption costs per platform context.

The table itself is a set of model constants; the benchmark times the
cost-model conversion and sanity-checks the constants against the
paper's figures.
"""

from conftest import print_experiment

from repro.bench.experiments import table1_costs
from repro.metrics import Meter
from repro.soe.costmodel import CONTEXTS, CostModel


def test_table1_costs(benchmark):
    data = table1_costs()
    print_experiment("Table 1 - communication and decryption costs", data)

    meter = Meter()
    meter.bytes_transferred = 1_000_000
    meter.bytes_decrypted = 1_000_000
    meter.token_ops = 10_000
    model = CostModel(CONTEXTS["smartcard"])

    def kernel():
        return model.breakdown(meter).total

    total = benchmark(kernel)
    # 1 MB at 0.5 MB/s + 1 MB at 0.15 MB/s dominates: ~8.7 s simulated.
    assert 8.0 < total < 9.5


def test_contexts_match_paper():
    card = CONTEXTS["smartcard"]
    assert card.communication_bps == 0.5e6
    assert card.decryption_bps == 0.15e6
    internet = CONTEXTS["sw-internet"]
    assert internet.communication_bps == 0.1e6
    assert internet.decryption_bps == 1.2e6
    lan = CONTEXTS["sw-lan"]
    assert lan.communication_bps == 10e6
