"""Tests for document updates under the Skip index (Section 4.1)."""

import pytest

from repro.skipindex.decoder import decode_document
from repro.skipindex.encoder import encode_document
from repro.skipindex.updates import (
    UpdateError,
    delete_element,
    impact_between,
    insert_element,
    measure_update,
    reencode_after,
    rename_element,
    update_text,
)
from repro.xmlkit.dom import Node, text_node
from repro.xmlkit.parser import parse_document


def sample():
    return parse_document(
        "<db>"
        + "".join("<rec><id>%d</id><val>v%d</val></rec>" % (i, i) for i in range(20))
        + "</db>"
    )


class TestEditOperations:
    def test_insert_appends(self):
        tree = sample()
        updated = insert_element(tree, [], text_node("extra", "x"))
        assert updated.find("extra") is not None
        assert tree.find("extra") is None  # original untouched

    def test_insert_at_position(self):
        tree = parse_document("<a><b/><d/></a>")
        updated = insert_element(tree, [], Node("c"), position=1)
        assert [n.tag for n in updated.element_children()] == ["b", "c", "d"]

    def test_delete(self):
        tree = sample()
        updated = delete_element(tree, [0])
        assert updated.count_elements() == tree.count_elements() - 3

    def test_delete_root_rejected(self):
        with pytest.raises(UpdateError):
            delete_element(sample(), [])

    def test_update_text(self):
        tree = sample()
        updated = update_text(tree, [0, 1], "changed")
        assert updated.find("rec").find("val").text() == "changed"

    def test_rename(self):
        tree = sample()
        updated = rename_element(tree, [0], "record")
        assert updated.element_children().__next__().tag == "record"

    def test_bad_path(self):
        with pytest.raises(UpdateError):
            update_text(sample(), [99], "x")


class TestUpdateImpact:
    def test_new_encoding_is_decodable(self):
        tree = sample()
        updated = update_text(tree, [5, 1], "changed-value")
        encoded, impact = measure_update(tree, updated)
        assert decode_document(encoded) == updated
        assert impact.changed_bytes > 0

    def test_local_text_edit_is_best_case(self):
        tree = sample()
        updated = update_text(tree, [5, 1], "v5x")  # same length ballpark
        _encoded, impact = measure_update(tree, updated)
        assert not impact.dictionary_grew
        # A tiny local change touches few chunks.
        assert impact.chunks_to_reencrypt <= 2

    def test_rename_with_new_tag_is_worst_case(self):
        tree = sample()
        updated = rename_element(tree, [3], "brand_new_tag")
        _encoded, impact = measure_update(tree, updated)
        assert impact.dictionary_grew
        assert impact.is_worst_case

    def test_rename_to_existing_tag_keeps_dictionary(self):
        tree = parse_document("<a><b/><c/></a>")
        updated = rename_element(tree, [0], "c")
        _encoded, impact = measure_update(tree, updated)
        assert not impact.dictionary_grew

    def test_insert_grows_document(self):
        tree = sample()
        updated = insert_element(
            tree, [], parse_document("<rec><id>99</id><val>v99</val></rec>")
        )
        _encoded, impact = measure_update(tree, updated)
        assert impact.new_size > impact.old_size

    def test_big_growth_can_jump_size_width(self):
        tree = parse_document("<a><b>" + "x" * 100 + "</b></a>")
        updated = insert_element(
            tree, [], parse_document("<c>" + "y" * 5000 + "</c>")
        )
        _encoded, impact = measure_update(tree, updated)
        assert impact.size_width_jumped
        assert impact.is_worst_case

    def test_append_at_end_touches_few_leading_chunks(self):
        """Appending at the document end mostly rewrites the tail."""
        tree = sample()
        updated = insert_element(tree, [], text_node("tail", "t"))
        _encoded, impact = measure_update(tree, updated)
        # The root header (size field) changes + the tail region; the
        # untouched middle chunks must not all be rewritten.
        total_chunks = (impact.new_size // 2048) + 1
        assert impact.chunks_to_reencrypt <= total_chunks

    def test_changed_ranges_are_disjoint_and_sorted(self):
        tree = sample()
        updated = update_text(tree, [10, 1], "completely different text!")
        _encoded, impact = measure_update(tree, updated)
        previous_end = -1
        for start, end in impact.changed_ranges:
            assert start >= previous_end
            assert end > start
            previous_end = end


class TestReencodeHelpers:
    def test_reencode_after_preserves_tag_codes(self):
        tree = sample()
        encoded = encode_document(tree)
        updated = update_text(tree, [5, 1], "changed!")
        new_encoded, grew = reencode_after(encoded, updated)
        assert not grew
        assert new_encoded.dictionary.tags()[: len(encoded.dictionary.tags())] == (
            encoded.dictionary.tags()
        )
        assert decode_document(new_encoded) == updated

    def test_reencode_after_reports_dictionary_growth(self):
        tree = sample()
        encoded = encode_document(tree)
        updated = rename_element(tree, [2], "fresh_tag")
        _new_encoded, grew = reencode_after(encoded, updated)
        assert grew

    def test_identity_reencode_diffs_to_nothing(self):
        """decode -> re-encode with the same dictionary is byte-stable:
        the live update path's diff sees only the actual edit."""
        tree = sample()
        encoded = encode_document(tree)
        same, grew = reencode_after(encoded, decode_document(encoded))
        assert not grew
        assert same.data == encoded.data
        impact = impact_between(encoded, same, tree, tree)
        assert impact.changed_bytes == 0
        assert impact.chunks_to_reencrypt == 0
        assert not impact.is_worst_case

    def test_impact_between_matches_measure_update(self):
        tree = sample()
        updated = update_text(tree, [7, 1], "different length text here")
        encoded = encode_document(tree)
        new_encoded, grew = reencode_after(encoded, updated)
        direct = impact_between(
            encoded, new_encoded, tree, updated, dictionary_grew=grew
        )
        _enc, via_measure = measure_update(tree, updated)
        assert direct.changed_bytes == via_measure.changed_bytes
        assert direct.chunks_to_reencrypt == via_measure.chunks_to_reencrypt
        assert direct.is_worst_case == via_measure.is_worst_case
