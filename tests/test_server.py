"""Tests for the network layer: wire protocol, server, client, loadgen.

Covers the protocol round-trip fuzz (truncated frames, oversized
payloads, unknown types), the asyncio server end to end over localhost
(byte-identical to the in-process path), sealed-link streaming,
structured errors, per-session limits, STATS, the thread-safe meter
and a small loadgen pass.
"""

import random
import threading

import pytest

from repro.datasets.hospital import doctor_policy, secretary_policy
from repro.engine import SecureStation
from repro.metrics import Meter, ThreadSafeMeter
from repro.server import protocol
from repro.server.client import RemoteError, RemoteSession
from repro.server.loadgen import percentile, run_load, write_report
from repro.server.protocol import (
    CHUNK,
    HELLO,
    QUERY,
    Frame,
    FrameDecoder,
    ProtocolError,
    encode_frame,
    json_frame,
)
from repro.server.service import ServerThread, StationServer, hospital_station
from repro.soe.session import SecureSession
from repro.xmlkit.serializer import serialize_events


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_round_trip_single_frame(self):
        data = encode_frame(CHUNK, 7, b"payload")
        frames = FrameDecoder().feed(data)
        assert frames == [Frame(CHUNK, 7, b"payload")]

    def test_round_trip_empty_payload(self):
        frames = FrameDecoder().feed(encode_frame(protocol.BYE, 0))
        assert frames == [Frame(protocol.BYE, 0, b"")]

    def test_json_frame_round_trip(self):
        data = json_frame(HELLO, 0, {"subject": "séc"})
        (frame,) = FrameDecoder().feed(data)
        assert frame.json() == {"subject": "séc"}

    def test_incremental_byte_by_byte(self):
        data = encode_frame(QUERY, 3, b"x" * 100)
        decoder = FrameDecoder()
        collected = []
        for index in range(len(data)):
            collected += decoder.feed(data[index : index + 1])
        assert collected == [Frame(QUERY, 3, b"x" * 100)]

    def test_truncated_frame_stays_pending(self):
        data = encode_frame(CHUNK, 1, b"abcdef")
        decoder = FrameDecoder()
        assert decoder.feed(data[:-2]) == []
        assert decoder.pending_bytes > 0
        assert decoder.feed(data[-2:]) == [Frame(CHUNK, 1, b"abcdef")]
        assert decoder.pending_bytes == 0

    def test_multiple_frames_one_feed(self):
        data = encode_frame(CHUNK, 1, b"a") + encode_frame(CHUNK, 1, b"b")
        assert [f.payload for f in FrameDecoder().feed(data)] == [b"a", b"b"]

    def test_bad_magic_rejected(self):
        data = bytearray(encode_frame(CHUNK, 1, b"a"))
        data[0] ^= 0xFF
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(bytes(data))

    def test_bad_version_rejected(self):
        data = bytearray(encode_frame(CHUNK, 1, b"a"))
        data[1] = 99
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(bytes(data))

    def test_unknown_type_rejected_by_decoder(self):
        data = bytearray(encode_frame(CHUNK, 1, b"a"))
        data[2] = 0x7F
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(bytes(data))

    def test_unknown_type_rejected_by_encoder(self):
        with pytest.raises(ProtocolError):
            encode_frame(0x7F, 1, b"a")

    def test_oversized_payload_rejected_before_buffering(self):
        decoder = FrameDecoder(max_payload=64)
        header_only = encode_frame(CHUNK, 1, b"x" * 65)[: protocol.HEADER_SIZE]
        with pytest.raises(ProtocolError):
            decoder.feed(header_only)

    def test_encoder_enforces_max_payload(self):
        with pytest.raises(ProtocolError):
            encode_frame(CHUNK, 1, b"x" * 65, max_payload=64)

    def test_decoder_latches_after_error(self):
        decoder = FrameDecoder()
        bad = bytearray(encode_frame(CHUNK, 1, b"a"))
        bad[0] ^= 0xFF
        with pytest.raises(ProtocolError):
            decoder.feed(bytes(bad))
        with pytest.raises(ProtocolError):
            decoder.feed(encode_frame(CHUNK, 1, b"a"))

    def test_session_id_range_checked(self):
        with pytest.raises(ProtocolError):
            encode_frame(CHUNK, -1)
        with pytest.raises(ProtocolError):
            encode_frame(CHUNK, 1 << 32)

    def test_fuzz_round_trip_random_splits(self):
        rng = random.Random(1234)
        types = sorted(protocol.TYPE_NAMES)
        frames = [
            Frame(
                rng.choice(types),
                rng.randrange(0, 1 << 32),
                rng.randbytes(rng.randrange(0, 300)),
            )
            for _ in range(200)
        ]
        blob = b"".join(
            encode_frame(f.type, f.session, f.payload) for f in frames
        )
        decoder = FrameDecoder()
        decoded = []
        position = 0
        while position < len(blob):
            step = rng.randrange(1, 40)
            decoded += decoder.feed(blob[position : position + step])
            position += step
        assert decoded == frames
        assert decoder.pending_bytes == 0

    def test_fuzz_corrupted_headers_never_desync_silently(self):
        # Corrupting magic/version/type must either raise ProtocolError
        # or (type flipped to another *valid* type) still parse into
        # exactly one intact frame — never desynchronize the stream.
        rng = random.Random(99)
        for _ in range(100):
            data = bytearray(encode_frame(CHUNK, 5, b"hello world"))
            index = rng.randrange(0, 3)  # magic / version / type byte
            data[index] = rng.randrange(0, 256)
            decoder = FrameDecoder()
            try:
                frames = decoder.feed(bytes(data))
            except ProtocolError:
                continue
            if index == 1 and data[1] == protocol.TRACE_VERSION:
                # A version byte flipped to 2 legitimately re-frames
                # the stream: the decoder now expects the 19-byte
                # traced header, so the frame is incomplete — input
                # stays buffered, nothing is silently dropped.
                assert frames == []
                assert decoder.pending_bytes == len(data)
                continue
            assert len(frames) == 1
            assert frames[0].type == data[2]
            assert frames[0].type in protocol.TYPE_NAMES
            assert frames[0].payload == b"hello world"
            assert decoder.pending_bytes == 0

    def test_encode_frame_parts_matches_encode_frame(self):
        header, payload = protocol.encode_frame_parts(CHUNK, 9, b"abc")
        assert header + payload == encode_frame(CHUNK, 9, b"abc")
        header, payload = protocol.encode_frame_parts(protocol.BYE, 0)
        assert payload == b""
        assert header == encode_frame(protocol.BYE, 0)

    def test_encode_frame_parts_validates_like_encode_frame(self):
        with pytest.raises(ProtocolError):
            protocol.encode_frame_parts(0x7F, 1, b"a")
        with pytest.raises(ProtocolError):
            protocol.encode_frame_parts(CHUNK, 1, b"x" * 65, max_payload=64)
        with pytest.raises(ProtocolError):
            protocol.encode_frame_parts(CHUNK, -1)

    def test_single_chunk_payload_is_zero_copy_view(self):
        # A payload contained in one fed buffer comes back as a
        # memoryview over it — no join, no copy.
        data = encode_frame(CHUNK, 7, b"p" * 1000)
        (frame,) = FrameDecoder().feed(data)
        assert isinstance(frame.payload, memoryview)
        assert bytes(frame.payload) == b"p" * 1000
        assert frame == Frame(CHUNK, 7, b"p" * 1000)  # equality across types

    def test_spanning_payload_reassembles_across_feeds(self):
        payload = bytes(range(256)) * 20
        data = encode_frame(CHUNK, 2, payload)
        decoder = FrameDecoder()
        frames = []
        for cut in range(0, len(data), 333):
            frames += decoder.feed(data[cut : cut + 333])
        (frame,) = frames
        assert bytes(frame.payload) == payload
        assert decoder.pending_bytes == 0

    def test_decoder_accepts_memoryview_input(self):
        data = encode_frame(QUERY, 3, b"q" * 50)
        decoder = FrameDecoder()
        frames = decoder.feed(memoryview(data)[:20])
        frames += decoder.feed(memoryview(data)[20:])
        (frame,) = frames
        assert bytes(frame.payload) == b"q" * 50
        assert decoder.pending_bytes == 0

    def test_pending_bytes_tracks_buffered_prefix(self):
        data = encode_frame(CHUNK, 1, b"x" * 100)
        decoder = FrameDecoder()
        decoder.feed(data[:50])
        assert decoder.pending_bytes == 50
        decoder.feed(data[50:])
        assert decoder.pending_bytes == 0


# ----------------------------------------------------------------------
# End-to-end over localhost
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def hospital():
    station, subjects = hospital_station(folders=2, seed=11)
    return station, subjects


@pytest.fixture(scope="module")
def live_server(hospital):
    station, subjects = hospital
    server = StationServer(station, chunk_size=128)
    thread = ServerThread(server)
    host, port = thread.start()
    yield server, host, port, subjects
    thread.stop()


class TestEndToEnd:
    def test_remote_view_byte_identical_to_in_process(self, live_server, hospital):
        server, host, port, subjects = live_server
        station, _ = hospital
        for subject in subjects:
            with RemoteSession(host, port, subject) as session:
                remote = session.evaluate("hospital")
            local = station.evaluate("hospital", subject)
            assert remote.data == serialize_events(local.events).encode("utf-8")
            assert remote.seconds > 0
            assert remote.meter.get("bytes_transferred", 0) > 0

    def test_remote_view_matches_secure_session(self, live_server, hospital):
        """The acceptance path: RemoteSession over TCP == SecureSession."""
        server, host, port, subjects = live_server
        station, _ = hospital
        prepared = station.document("hospital")
        policies = {
            "secretary": secretary_policy(),
            "doctor0": doctor_policy("doctor0"),
        }
        for subject, policy in policies.items():
            expected = SecureSession(prepared, policy).run()
            with RemoteSession(host, port, subject) as session:
                remote = session.evaluate("hospital")
            assert remote.data == serialize_events(expected.events).encode(
                "utf-8"
            ), subject

    def test_remote_query_intersection(self, live_server, hospital):
        server, host, port, _subjects = live_server
        station, _ = hospital
        query = "//Folder/Admin"
        with RemoteSession(host, port, "secretary") as session:
            remote = session.evaluate("hospital", query=query)
        local = station.evaluate("hospital", "secretary", query=query)
        assert remote.data == serialize_events(local.events).encode("utf-8")

    def test_multiple_queries_one_session(self, live_server):
        server, host, port, _subjects = live_server
        with RemoteSession(host, port, "secretary") as session:
            first = session.evaluate("hospital")
            second = session.evaluate("hospital")
            assert first.data == second.data

    def test_chunking_respects_chunk_size(self, live_server):
        server, host, port, _subjects = live_server
        with RemoteSession(host, port, "secretary") as session:
            result = session.evaluate("hospital")
        assert result.chunks >= 2  # 128-byte chunks over a larger view
        assert result.trailer["bytes"] == result.result_bytes

    def test_unknown_document_is_structured_error(self, live_server):
        server, host, port, _subjects = live_server
        with RemoteSession(host, port, "secretary") as session:
            with pytest.raises(RemoteError) as excinfo:
                session.evaluate("no-such-document")
            assert excinfo.value.code == "unknown-document"
            # The session survives the error.
            assert session.evaluate("hospital").result_bytes > 0

    def test_no_grant_is_structured_error(self, live_server):
        server, host, port, _subjects = live_server
        with RemoteSession(host, port, "stranger") as session:
            with pytest.raises(RemoteError) as excinfo:
                session.evaluate("hospital")
            assert excinfo.value.code == "no-grant"

    def test_stats_round_trip(self, live_server):
        server, host, port, _subjects = live_server
        with RemoteSession(host, port, "secretary") as session:
            session.evaluate("hospital")
            stats = session.stats()
        assert stats["station"]["requests"] >= 1
        assert stats["server"]["connections"] >= 1
        assert stats["server"]["queries"] >= 1
        assert stats["meter"].get("bytes_decrypted", 0) > 0

    def test_concurrent_sessions(self, live_server, hospital):
        server, host, port, subjects = live_server
        station, _ = hospital
        expected = {
            subject: serialize_events(
                station.evaluate("hospital", subject).events
            ).encode("utf-8")
            for subject in subjects
        }
        failures = []

        def worker(subject):
            try:
                with RemoteSession(host, port, subject) as session:
                    for _ in range(3):
                        result = session.evaluate("hospital")
                        assert result.data == expected[subject]
            except Exception as exc:  # noqa: BLE001 - collected for assert
                failures.append((subject, exc))

        threads = [
            threading.Thread(target=worker, args=(subject,))
            for subject in subjects * 2
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures


class TestSealedLink:
    def test_sealed_chunks_round_trip(self, hospital):
        station, _subjects = hospital
        server = StationServer(station, chunk_size=256, seal=True)
        with ServerThread(server) as (host, port):
            with RemoteSession(host, port, "secretary") as session:
                assert session.sealed
                remote = session.evaluate("hospital")
        local = station.evaluate("hospital", "secretary")
        assert remote.data == serialize_events(local.events).encode("utf-8")

    def test_sealed_payload_differs_on_wire(self, hospital):
        # The raw CHUNK payloads must not contain the plaintext view.

        station, _subjects = hospital
        session = station.connect("secretary")
        stream = session.stream_view("hospital", chunk_size=1 << 20, seal=True)
        chunks = list(stream.chunks())
        assert len(chunks) == 1
        assert stream.payload not in chunks[0]
        from repro.engine.station import open_sealed

        assert open_sealed(session.session_key, chunks[0]) == stream.payload


class TestSessionLimits:
    def test_query_limit_enforced(self, hospital):
        station, _subjects = hospital
        server = StationServer(station, max_queries_per_session=2)
        with ServerThread(server) as (host, port):
            with RemoteSession(host, port, "secretary") as session:
                session.evaluate("hospital")
                session.evaluate("hospital")
                with pytest.raises(RemoteError) as excinfo:
                    session.evaluate("hospital")
                assert excinfo.value.code == "limit"

    def test_query_before_hello_rejected(self, live_server):
        import socket

        server, host, port, _subjects = live_server
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(json_frame(QUERY, 0, {"document": "hospital"}))
            decoder = FrameDecoder()
            frames = []
            while not frames:
                data = sock.recv(65536)
                if not data:
                    break
                frames = decoder.feed(data)
        assert frames and frames[0].type == protocol.ERROR
        assert frames[0].json()["code"] == "protocol"

    def test_chunk_size_must_fit_frame_limit(self, hospital):
        station, _subjects = hospital
        with pytest.raises(ValueError):
            StationServer(station, chunk_size=2_000_000)  # > 1 MiB default
        with pytest.raises(ValueError):
            # Sealing inflates chunks past the limit.
            StationServer(station, chunk_size=1 << 20, seal=True)
        StationServer(station, chunk_size=1 << 20)  # exact fit is fine

    def test_client_disconnect_mid_stream_does_not_hang_shutdown(self, hospital):
        """A client that vanishes mid-stream must not leave the
        producer thread parked on the backpressure gate (shutdown
        would then hang)."""
        import socket
        import time

        station, _subjects = hospital
        server = StationServer(station, chunk_size=4, queue_depth=1)
        thread = ServerThread(server)
        host, port = thread.start()
        try:
            sock = socket.create_connection((host, port), timeout=10)
            sock.sendall(json_frame(HELLO, 0, {"subject": "secretary"}))
            sock.recv(4096)  # WELCOME
            sock.sendall(json_frame(QUERY, 1, {"document": "hospital"}))
            sock.recv(64)  # a sliver of the stream, then vanish
            sock.close()
            deadline = time.monotonic() + 5
            while server.server_stats["active"] and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            thread.stop(timeout=5)
        assert server.server_stats["active"] == 0

    def test_garbage_bytes_get_bad_frame_error(self, live_server):
        import socket

        server, host, port, _subjects = live_server
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"\x00" * 32)
            decoder = FrameDecoder()
            frames = []
            while not frames:
                data = sock.recv(65536)
                if not data:
                    break
                frames = decoder.feed(data)
        assert frames and frames[0].json()["code"] == "bad-frame"


# ----------------------------------------------------------------------
# Thread-safe meter
# ----------------------------------------------------------------------
class TestThreadSafeMeter:
    def test_concurrent_merge_is_exact(self):
        total = ThreadSafeMeter()
        per_thread = 200

        def worker():
            for _ in range(per_thread):
                local = Meter()
                local.events = 3
                local.bytes_decrypted = 7
                total.merge(local)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert total.events == 8 * per_thread * 3
        assert total.bytes_decrypted == 8 * per_thread * 7

    def test_snapshot_is_plain_meter(self):
        total = ThreadSafeMeter()
        local = Meter()
        local.token_ops = 5
        total.merge(local)
        snap = total.snapshot()
        assert type(snap) is Meter
        assert snap.token_ops == 5
        snap.token_ops = 99
        assert total.token_ops == 5  # a copy, not a view

    def test_merged_helper(self):
        meters = []
        for value in (1, 2, 3):
            meter = Meter()
            meter.events = value
            meters.append(meter)
        assert Meter.merged(meters).events == 6


# ----------------------------------------------------------------------
# Load generator
# ----------------------------------------------------------------------
class TestLoadgen:
    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == 2.0  # ceil(0.5 * 4) = rank 2
        assert percentile(values, 51) == 3.0
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 95) == 7.0

    def test_percentile_small_samples_do_not_understate_tail(self):
        # With n < 100 the old interpolation reported a p99 below the
        # worst observed request; nearest-rank must return the max.
        for n in (1, 2, 3, 5, 10, 50, 99):
            values = [float(i) for i in range(1, n + 1)]
            assert percentile(values, 99) == float(n), n
            assert percentile(values, 95) >= percentile(values, 50)
        # Sanity at n = 100: p99 is the 99th sample, not the 100th.
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 99) == 99.0
        assert percentile(values, 50) == 50.0

    def test_percentile_unsorted_input_and_bounds(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)
        with pytest.raises(ValueError):
            percentile([], 150)  # bounds beat the empty-input shortcut

    def test_two_client_smoke(self, live_server, tmp_path):
        server, host, port, subjects = live_server
        report = run_load(
            host, port, clients=2, queries=2, subjects=subjects
        )
        assert report["requests"] == 4
        assert report["errors"] == 0
        assert report["throughput_rps"] > 0
        assert report["latency_ms"]["p50"] > 0
        assert report["latency_ms"]["p95"] >= report["latency_ms"]["p50"]
        out = tmp_path / "BENCH_server.json"
        write_report(report, str(out))
        import json

        loaded = json.loads(out.read_text())
        assert loaded["bench"] == "server_load"

    def test_parse_mix_spec(self):
        from repro.server.loadgen import parse_mix_spec

        assert parse_mix_spec("secretary") == ("secretary", None, 1.0)
        assert parse_mix_spec("doctor0:3") == ("doctor0", None, 3.0)
        assert parse_mix_spec("researcher:2://Folder[//Age > 60]") == (
            "researcher",
            "//Folder[//Age > 60]",
            2.0,
        )
        # Colons inside the query survive (only the first two split).
        assert parse_mix_spec("s:1:a:b:c") == ("s", "a:b:c", 1.0)
        import argparse

        for bad in ("", ":2", "s:zero", "s:-1"):
            with pytest.raises(argparse.ArgumentTypeError):
                parse_mix_spec(bad)

    def test_mixed_workload_reports_per_class(self, live_server):
        server, host, port, subjects = live_server
        mix = [
            (subjects[0], None, 3.0),
            (subjects[1], "//Folder", 1.0),
        ]
        report = run_load(
            host, port, clients=2, queries=6, subjects=subjects, mix=mix, seed=5
        )
        assert report["requests"] == 12
        assert report["errors"] == 0
        classes = report["classes"]
        assert sum(entry["requests"] for entry in classes.values()) == 12
        # Weighted draw with seed 5 over 12 requests must exercise both
        # classes, and repeats within a class hit the view cache.
        assert len(classes) == 2
        assert report["cached_hits"] == sum(
            entry["cached"] for entry in classes.values()
        )
        assert report["cached_hits"] >= 12 - 2 * len(classes)

    def test_mixed_workload_is_seed_reproducible(self, live_server):
        server, host, port, subjects = live_server
        mix = [(subjects[0], None, 1.0), (subjects[2], None, 1.0)]
        first = run_load(
            host, port, clients=2, queries=5, subjects=subjects, mix=mix, seed=9
        )
        second = run_load(
            host, port, clients=2, queries=5, subjects=subjects, mix=mix, seed=9
        )
        assert {k: v["requests"] for k, v in first["classes"].items()} == {
            k: v["requests"] for k, v in second["classes"].items()
        }


# ----------------------------------------------------------------------
# CLI subcommands
# ----------------------------------------------------------------------
class TestCli:
    def test_remote_view_command(self, live_server, capsys):
        from repro.cli import main

        server, host, port, _subjects = live_server
        assert (
            main(
                [
                    "remote-view",
                    "%s:%d" % (host, port),
                    "hospital",
                    "--subject",
                    "secretary",
                    "--costs",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "<Hospital>" in captured.out
        assert "simulated" in captured.err

    def test_loadgen_command(self, live_server, tmp_path, capsys):
        import json

        from repro.cli import main

        server, host, port, subjects = live_server
        out = tmp_path / "BENCH_server.json"
        argv = [
            "loadgen",
            "%s:%d" % (host, port),
            "--clients",
            "2",
            "--queries",
            "2",
            "--output",
            str(out),
        ]
        for subject in subjects:
            argv += ["--subject", subject]
        assert main(argv) == 0
        report = json.loads(out.read_text())
        assert report["requests"] == 4
        assert report["errors"] == 0
        assert "req/s" in capsys.readouterr().out

    def test_serve_parser_accepts_options(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--hospital", "2", "--seal"]
        )
        assert args.port == 0
        assert args.hospital == 2
        assert args.seal
        assert args.func.__name__ == "cmd_serve"

    def test_serve_command_over_a_store_file(self, tmp_path):
        """`repro serve --store` end to end: protect a file, serve it
        from a background thread, read it back with remote-view."""
        from repro.cli import main

        xml = tmp_path / "doc.xml"
        xml.write_text(
            "<shop><item><name>x</name></item><secret>k</secret></shop>"
        )
        store = tmp_path / "doc.store"
        key = "00112233445566778899aabbccddeeff"
        assert main(["protect", str(xml), str(store), "--key", key]) == 0

        from repro.cli import _load_store, _parse_key, _parse_rules
        from repro.accesscontrol.model import Policy
        from repro.engine import SecureStation

        station = SecureStation()
        station.publish("store", _load_store(str(store), _parse_key(key)))
        policy = Policy(_parse_rules(["+://shop/item"]), subject="bob")
        station.grant("store", policy, subject="bob")
        server = StationServer(station)
        with ServerThread(server) as (host, port):
            with RemoteSession(host, port, "bob") as session:
                result = session.evaluate("store")
        assert "<name>x</name>" in result.text
        assert "secret" not in result.text
