"""Consistent-hash ring unit tests: determinism, balance, movement."""

import pytest

from repro.cluster.ring import HashRing, stable_hash

KEYS = ["doc%d" % index for index in range(1000)]


class TestStableHash:
    def test_deterministic_across_instances(self):
        assert stable_hash("hospital") == stable_hash("hospital")
        ring_a = HashRing(["a", "b", "c"])
        ring_b = HashRing(["a", "b", "c"])
        for key in KEYS[:50]:
            assert ring_a.preference(key, 2) == ring_b.preference(key, 2)

    def test_member_order_does_not_matter(self):
        ring_a = HashRing(["a", "b", "c"])
        ring_b = HashRing(["c", "a", "b"])
        for key in KEYS[:50]:
            assert ring_a.preference(key, 2) == ring_b.preference(key, 2)


class TestMembership:
    def test_add_remove_and_contains(self):
        ring = HashRing(vnodes=8)
        assert len(ring) == 0
        ring.add("a")
        ring.add("a")  # idempotent
        assert len(ring) == 1 and "a" in ring
        ring.add("b")
        ring.remove("a")
        ring.remove("a")  # idempotent
        assert ring.members == ["b"]

    def test_empty_ring(self):
        ring = HashRing()
        assert ring.preference("key", 3) == []
        with pytest.raises(LookupError):
            ring.primary("key")

    def test_vnodes_validated(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)


class TestPreference:
    def test_distinct_members_in_order(self):
        ring = HashRing(["a", "b", "c", "d"])
        for key in KEYS[:100]:
            preference = ring.preference(key, 3)
            assert len(preference) == 3
            assert len(set(preference)) == 3
            assert preference[0] == ring.primary(key)

    def test_capped_at_member_count(self):
        ring = HashRing(["a", "b"])
        assert sorted(ring.preference("k", 5)) == ["a", "b"]

    def test_assignments_helper(self):
        ring = HashRing(["a", "b", "c"])
        table = ring.assignments(KEYS[:10], n=2)
        assert set(table) == set(KEYS[:10])
        for key, preference in table.items():
            assert preference == ring.preference(key, 2)


class TestBalance:
    def test_virtual_nodes_spread_load(self):
        ring = HashRing(["a", "b", "c", "d"], vnodes=64)
        counts = {name: 0 for name in "abcd"}
        for key in KEYS:
            counts[ring.primary(key)] += 1
        # Perfect balance is 250 each; vnodes keep every member within
        # a loose band (the no-vnode extreme can be near 0 or near N).
        for name, count in counts.items():
            assert 100 <= count <= 450, counts


class TestMinimalMovement:
    def test_join_moves_about_one_nth(self):
        ring = HashRing(["a", "b", "c"], vnodes=64)
        before = {key: ring.primary(key) for key in KEYS}
        ring.add("d")
        moved = 0
        for key in KEYS:
            after = ring.primary(key)
            if after != before[key]:
                # Every moved key moves TO the joiner, never between
                # old members.
                assert after == "d"
                moved += 1
        # ~1/4 of the keys should move; allow a generous band.
        assert 100 <= moved <= 450, moved

    def test_leave_moves_only_the_lost_keys(self):
        ring = HashRing(["a", "b", "c"], vnodes=64)
        before = {key: ring.primary(key) for key in KEYS}
        ring.remove("c")
        for key in KEYS:
            if before[key] != "c":
                assert ring.primary(key) == before[key]

    def test_failover_promotes_the_replica(self):
        """Removing a member makes its keys' first replica the new
        primary — the property gateway failover relies on."""
        ring = HashRing(["a", "b", "c", "d"], vnodes=64)
        for key in KEYS[:200]:
            primary, replica = ring.preference(key, 2)
            ring.remove(primary)
            assert ring.primary(key) == replica
            ring.add(primary)
