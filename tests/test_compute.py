"""Compute-backend tests: kernel parity, selection, degradation, fuzz.

The pure-Python SWAR paths are the oracle; the native C kernels and
the process-pool backend must be byte-identical to them on every
scheme, and every failure mode (no compiler, crashed worker) must
degrade to the pure path without failing a request.
"""

import os
import random

import pytest

from repro import Policy, make_policy
from repro.compute import (
    BackendUnavailable,
    NativeBackend,
    PoolBackend,
    PureBackend,
    auto_backend,
    available_backends,
    native_available,
    reset_native_cache,
    resolve_backend,
)
from repro.compute.backends import ComputeBackend
from repro.compute.native import NO_NATIVE_ENV
from repro.compute.worker import POOL_CRASH_ENV
from repro.crypto import modes
from repro.crypto.des import Des, TripleDes
from repro.crypto.integrity import SCHEMES, make_scheme
from repro.crypto.xtea import Xtea
from repro.metrics import Meter

needs_native = pytest.mark.skipif(
    not native_available(), reason="native kernels unavailable"
)


def random_bytes(rng: random.Random, length: int) -> bytes:
    return bytes(rng.randrange(256) for _ in range(length))


# ---------------------------------------------------------------------------
# Native kernels vs the pure oracle
# ---------------------------------------------------------------------------


@needs_native
@pytest.mark.parametrize("kind", ["xtea", "des", "3des"])
def test_native_kernels_match_pure_oracle(kind):
    from repro.compute.native import NativeDes, NativeTripleDes, NativeXtea

    rng = random.Random(1234)
    pure, native = {
        "xtea": lambda: (Xtea(bytes(range(16))), NativeXtea(bytes(range(16)))),
        "des": lambda: (Des(bytes(range(8))), NativeDes(bytes(range(8)))),
        "3des": lambda: (
            TripleDes(bytes(range(24))),
            NativeTripleDes(bytes(range(24))),
        ),
    }[kind]()
    for length in (0, 8, 64, 2048, 4096 + 8):
        data = random_bytes(rng, length)
        sealed = modes.encrypt_ecb(native, data)
        assert sealed == modes.encrypt_ecb_reference(pure, data)
        assert modes.decrypt_ecb(native, sealed) == data
        assert modes.decrypt_ecb(pure, sealed) == data


@needs_native
@pytest.mark.parametrize("kind", ["xtea", "des", "3des"])
def test_native_positioned_matches_reference(kind):
    """The positioned C kernel vs both the SWAR fast path and the
    block-at-a-time reference, including versioned and wrap-adjacent
    start positions."""
    from repro.compute.native import NativeDes, NativeTripleDes, NativeXtea

    rng = random.Random(99)
    pure, native = {
        "xtea": lambda: (Xtea(bytes(range(16))), NativeXtea(bytes(range(16)))),
        "des": lambda: (Des(bytes(range(8))), NativeDes(bytes(range(8)))),
        "3des": lambda: (
            TripleDes(bytes(range(24))),
            NativeTripleDes(bytes(range(24))),
        ),
    }[kind]()
    positions = [0, 8, 2048, (1 << 63) - 8, (123 << 40) | 4096, (1 << 64) - 16]
    for length in (0, 8, 2048):
        data = random_bytes(rng, length)
        for position in positions:
            reference = modes.encrypt_positioned_reference(pure, data, position)
            assert modes.encrypt_positioned(pure, data, position) == reference
            assert modes.encrypt_positioned(native, data, position) == reference
            assert modes.decrypt_positioned(native, reference, position) == data
            assert modes.decrypt_positioned(pure, reference, position) == data


@needs_native
def test_native_cbc_matches_pure_chain():
    from repro.compute.native import NativeXtea

    rng = random.Random(7)
    pure = Xtea(bytes(range(16)))
    native = NativeXtea(bytes(range(16)))
    for length in (8, 2048, 2048 * 3):
        data = random_bytes(rng, length)
        iv = modes.make_iv(rng.randrange(1 << 32))
        sealed = modes.encrypt_cbc(native, data, iv)
        assert sealed == modes.encrypt_cbc_reference(pure, data, iv)
        assert modes.decrypt_cbc(native, sealed, iv) == data
        assert modes.decrypt_cbc(pure, sealed, iv) == data


def test_chunked_cbc_matches_reference():
    """Lockstep chunked CBC (the parallelizable form) is byte-identical
    to encrypting each chunk independently."""
    rng = random.Random(21)
    cipher = Xtea(bytes(range(16)))
    chunks = [random_bytes(rng, 2048) for _ in range(5)]
    ivs = [modes.make_iv(i) for i in range(5)]
    fast = modes.encrypt_cbc_chunked(cipher, chunks, ivs)
    reference = modes.encrypt_cbc_chunked_reference(cipher, chunks, ivs)
    assert fast == reference
    assert fast == [modes.encrypt_cbc(cipher, c, iv) for c, iv in zip(chunks, ivs)]


def test_position_mask_cache_is_bounded():
    info = modes.position_mask_cache_info()
    assert info["size"] <= info["maxsize"]
    baseline_misses = info["misses"]
    # Far more distinct (position, count) keys than the cap can hold.
    for position in range(0, info["maxsize"] * 16 * 8, 8):
        modes.encrypt_positioned(Xtea(bytes(range(16))), b"\x00" * 8, position)
    info = modes.position_mask_cache_info()
    assert info["size"] <= info["maxsize"]
    assert info["misses"] > baseline_misses
    # A repeated key is served from the memo.
    before = modes.position_mask_cache_info()["hits"]
    cipher = Xtea(bytes(range(16)))
    modes.encrypt_positioned(cipher, b"\x00" * 16, 0)
    modes.encrypt_positioned(cipher, b"\x00" * 16, 0)
    assert modes.position_mask_cache_info()["hits"] > before


# ---------------------------------------------------------------------------
# Backend selection and degradation
# ---------------------------------------------------------------------------


def test_resolve_backend_names_and_passthrough():
    assert isinstance(resolve_backend("pure"), PureBackend)
    pool = resolve_backend("pool")
    assert isinstance(pool, PoolBackend)
    pool.close()
    instance = PureBackend()
    assert resolve_backend(instance) is instance
    with pytest.raises(ValueError):
        resolve_backend("simd")


def test_auto_prefers_native_when_available():
    backend = auto_backend()
    if native_available():
        assert isinstance(backend, NativeBackend)
    else:
        assert isinstance(backend, PureBackend)
    assert resolve_backend(None).name == backend.name
    assert resolve_backend("auto").name == backend.name


def test_no_native_env_forces_pure(monkeypatch):
    """With REPRO_NO_NATIVE set (the no-compiler CI leg), auto resolves
    to pure and an explicit native request is a loud error."""
    monkeypatch.setenv(NO_NATIVE_ENV, "1")
    reset_native_cache()
    try:
        assert not native_available()
        assert "native" not in available_backends()
        assert isinstance(auto_backend(), PureBackend)
        assert isinstance(resolve_backend("auto"), PureBackend)
        with pytest.raises(BackendUnavailable):
            NativeBackend()
    finally:
        monkeypatch.delenv(NO_NATIVE_ENV)
        reset_native_cache()


def test_base_backend_declines_document_hooks():
    backend = ComputeBackend()
    scheme = make_scheme("CBC-SHAC")
    assert backend.protect_document(scheme, b"x" * 4096, 0) is None
    assert backend.decrypt_document(scheme, object(), Meter()) is None
    assert backend.describe()["name"] == "base"


# ---------------------------------------------------------------------------
# Pool backend: parity, thresholds, crash fallback
# ---------------------------------------------------------------------------


@pytest.fixture
def pool():
    backend = PoolBackend(workers=2)
    yield backend
    backend.close()


def test_pool_protect_and_decrypt_match_serial(pool):
    rng = random.Random(5)
    plaintext = random_bytes(rng, 50_000)  # ~25 chunks: crosses min_chunks
    scheme = make_scheme("CBC-SHAC", backend=pool)
    serial = make_scheme("CBC-SHAC")

    document = pool.protect_document(scheme, plaintext, 0)
    assert document is not None, "pool declined a fan-out-sized document"
    assert document.stored == serial.protect(plaintext).stored

    meter = Meter()
    plain = pool.decrypt_document(scheme, document, meter)
    assert plain == plaintext
    assert meter.bytes_decrypted > 0  # worker meters folded into ours
    assert pool.stats["batches"] == 2
    assert pool.stats["fallbacks"] == 0


def test_pool_declines_small_documents(pool):
    scheme = make_scheme("CBC-SHAC", backend=pool)
    assert pool.protect_document(scheme, b"tiny" * 100, 0) is None
    assert pool.stats["batches"] == 0


def test_pool_declines_unpicklable_scheme(pool):
    """CBC-SHA-DOC chains the whole document, so it has no picklable
    spec and must stay on the serial path."""
    scheme = make_scheme("CBC-SHA-DOC", backend=pool)
    assert scheme.spec() is None
    assert pool.protect_document(scheme, b"x" * 50_000, 0) is None


def test_pool_crash_falls_back_and_recovers(pool, monkeypatch):
    rng = random.Random(6)
    plaintext = random_bytes(rng, 50_000)
    scheme = make_scheme("CBC-SHAC", backend=pool)

    monkeypatch.setenv(POOL_CRASH_ENV, "1")
    assert pool.protect_document(scheme, plaintext, 0) is None
    assert pool.stats["fallbacks"] == 1

    # Clearing the crash switch, the (lazily re-forked) pool serves again.
    monkeypatch.delenv(POOL_CRASH_ENV)
    document = pool.protect_document(scheme, plaintext, 0)
    assert document is not None
    assert document.stored == make_scheme("CBC-SHAC").protect(plaintext).stored


def test_station_survives_pool_crash(monkeypatch):
    """A pool crash mid-batch must not fail the request: the station's
    ``evaluate_many`` falls back to the serial reader and serves the
    identical views with zero failed subjects."""
    from repro.engine import SecureStation
    from repro.soe.session import prepare_document
    from repro.xmlkit.parser import parse_document
    from repro.xmlkit.serializer import serialize_events

    # ~6 encoded bytes per folder: 4000 folders crosses the pool's
    # 8-chunk fan-out threshold with margin.
    document = "<clinic>" + "<folder><id>1</id></folder>" * 4000 + "</clinic>"
    tree = parse_document(document)
    policies = [
        make_policy([("+", "//folder")], subject="alice"),
        make_policy([("+", "//folder"), ("-", "//id")], subject="bob"),
    ]
    prepared = prepare_document(tree, scheme="CBC-SHAC")

    oracle = SecureStation(cache_views=False, backend="pure")
    oracle.publish("doc", prepared)
    expected = oracle.evaluate_many("doc", policies)

    station = SecureStation(cache_views=False, backend=PoolBackend(workers=2))
    station.publish("doc", prepared)
    healthy = station.evaluate_many("doc", policies)
    assert station.backend.stats["batches"] >= 1  # the pool decoded it

    # The crash switch is read per task inside the workers, which
    # inherit the environment at fork time — recycle the pool so the
    # next batch forks workers that see it.
    station.backend.close()
    monkeypatch.setenv(POOL_CRASH_ENV, "1")
    try:
        crashed = station.evaluate_many("doc", policies)
    finally:
        monkeypatch.delenv(POOL_CRASH_ENV)
    assert station.backend.stats["fallbacks"] >= 1

    for batch in (healthy, crashed):
        assert not batch.failures
        for policy in policies:
            assert serialize_events(
                batch[policy.subject].events
            ) == serialize_events(expected[policy.subject].events)
    station.close()


# ---------------------------------------------------------------------------
# Differential fuzz: pure == native == pool, every scheme
# ---------------------------------------------------------------------------


def _backends_under_test():
    backends = [PureBackend()]
    if native_available():
        backends.append(NativeBackend())
    backends.append(PoolBackend(workers=2))
    return backends


@pytest.mark.parametrize("name", sorted(SCHEMES))
def test_fuzz_backends_byte_identical(name):
    """Random plaintexts through protect + full read-back on every
    backend: stored bytes and recovered plaintext must match the pure
    oracle exactly (the acceptance bar for the whole backend layer)."""
    rng = random.Random(hash(name) & 0xFFFF)
    backends = _backends_under_test()
    try:
        for _ in range(3):
            plaintext = random_bytes(rng, rng.choice([0, 37, 4096, 30_000]))
            version = rng.randrange(4)
            oracle = make_scheme(name)
            expected = oracle.protect(plaintext, version=version)
            for backend in backends:
                scheme = make_scheme(name, backend=backend)
                document = None
                if isinstance(backend, PoolBackend):
                    document = backend.protect_document(
                        scheme, plaintext, version
                    )
                if document is None:
                    document = scheme.protect(plaintext, version=version)
                assert document.stored == expected.stored, (name, backend.name)
                recovered = None
                if isinstance(backend, PoolBackend):
                    recovered = backend.decrypt_document(
                        scheme, document, Meter()
                    )
                if recovered is None:
                    recovered = scheme.reader(document, Meter()).read(
                        0, len(plaintext)
                    )
                assert recovered == plaintext, (name, backend.name)
    finally:
        for backend in backends:
            backend.close()


@pytest.mark.parametrize("name", ["ECB", "CBC-SHAC"])
def test_fuzz_station_views_identical_across_backends(name):
    from repro.engine import SecureStation
    from repro.soe.session import prepare_document
    from repro.xmlkit.parser import parse_document
    from repro.xmlkit.serializer import serialize, serialize_events

    from test_differential import random_policy, random_tree

    rng = random.Random(hash(name) & 0xFFFF)
    for _ in range(3):
        tree = parse_document(serialize(random_tree(rng, max_nodes=25)))
        policy = Policy(random_policy(rng).rules, subject="fuzz")
        prepared = prepare_document(tree, scheme=name)
        views = {}
        for backend in _backends_under_test():
            station = SecureStation(cache_views=False, backend=backend)
            station.publish("doc", prepared)
            views[backend.name] = serialize_events(
                station.evaluate("doc", policy).events
            )
            station.close()
        reference = views.pop("pure")
        for backend_name, view in views.items():
            assert view == reference, backend_name
