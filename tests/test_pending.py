"""Unit tests for the ResultBuilder (pending buffering + reassembly)."""

import pytest

from repro.accesscontrol.conditions import ALWAYS, NEVER, PredicateInstance
from repro.accesscontrol.pending import ResultBuilder
from repro.xmlkit.events import CLOSE, OPEN, TEXT, Event
from repro.xmlkit.serializer import serialize_events


def pending_condition():
    return PredicateInstance("R", 0, 1)


class TestBasicAssembly:
    def test_permit_node_with_text(self):
        builder = ResultBuilder()
        builder.open("a", ALWAYS)
        builder.text("hello")
        builder.close()
        assert serialize_events(builder.finalize()) == "<a>hello</a>"

    def test_denied_node_disappears(self):
        builder = ResultBuilder()
        builder.open("a", NEVER)
        builder.text("secret")
        builder.close()
        assert builder.finalize() == []

    def test_structural_rule(self):
        builder = ResultBuilder()
        builder.open("a", NEVER)
        builder.text("secret")
        builder.open("b", ALWAYS)
        builder.text("public")
        builder.close()
        builder.close()
        assert serialize_events(builder.finalize()) == "<a><b>public</b></a>"

    def test_structural_dummy_tag(self):
        builder = ResultBuilder(dummy_tag="anon")
        builder.open("a", NEVER)
        builder.open("b", ALWAYS)
        builder.close()
        builder.close()
        assert serialize_events(builder.finalize()) == "<anon><b/></anon>"

    def test_finalize_requires_closed_tree(self):
        builder = ResultBuilder()
        builder.open("a", ALWAYS)
        with pytest.raises(ValueError):
            builder.finalize()

    def test_close_without_open(self):
        builder = ResultBuilder()
        with pytest.raises(IndexError):
            builder.close()


class TestPendingResolution:
    def test_pending_true_delivers(self):
        cond = pending_condition()
        builder = ResultBuilder()
        builder.open("a", cond)
        builder.text("maybe")
        builder.close()
        cond.mark_satisfied()
        assert serialize_events(builder.finalize()) == "<a>maybe</a>"

    def test_pending_false_drops(self):
        cond = pending_condition()
        builder = ResultBuilder()
        builder.open("a", cond)
        builder.text("maybe")
        builder.close()
        cond.close_window()
        assert builder.finalize() == []

    def test_undecided_finalize_raises(self):
        cond = pending_condition()
        builder = ResultBuilder()
        builder.open("a", cond)
        builder.close()
        with pytest.raises(ValueError):
            builder.finalize()

    def test_deferred_subtree_delivery(self):
        cond = pending_condition()
        events = [Event(OPEN, "x"), Event(TEXT, "v"), Event(CLOSE, "x")]
        builder = ResultBuilder()
        builder.open("a", ALWAYS)
        builder.add_deferred(cond, lambda: events)
        builder.close()
        cond.mark_satisfied()
        assert serialize_events(builder.finalize()) == "<a><x>v</x></a>"

    def test_deferred_subtree_dropped(self):
        cond = pending_condition()
        builder = ResultBuilder()
        builder.open("a", ALWAYS)
        builder.add_deferred(cond, lambda: [Event(OPEN, "x"), Event(CLOSE, "x")])
        builder.close()
        cond.close_window()
        assert serialize_events(builder.finalize()) == "<a/>"

    def test_deferred_triggers_structural_delivery(self):
        cond = pending_condition()
        builder = ResultBuilder()
        builder.open("a", NEVER)
        builder.add_deferred(cond, lambda: [Event(OPEN, "x"), Event(CLOSE, "x")])
        builder.close()
        cond.mark_satisfied()
        assert serialize_events(builder.finalize()) == "<a><x/></a>"

    def test_deferred_position_preserved(self):
        cond = pending_condition()
        builder = ResultBuilder()
        builder.open("a", ALWAYS)
        builder.open("before", ALWAYS)
        builder.close()
        builder.add_deferred(cond, lambda: [Event(OPEN, "mid"), Event(CLOSE, "mid")])
        builder.open("after", ALWAYS)
        builder.close()
        builder.close()
        cond.mark_satisfied()
        assert serialize_events(builder.finalize()) == (
            "<a><before/><mid/><after/></a>"
        )

    def test_already_false_deferred_not_registered(self):
        builder = ResultBuilder()
        builder.open("a", ALWAYS)
        assert builder.add_deferred(NEVER, lambda: []) is None
        builder.close()
        assert serialize_events(builder.finalize()) == "<a/>"


class TestDrainReady:
    def test_drain_streams_decided_prefix(self):
        builder = ResultBuilder()
        builder.open("root", ALWAYS)
        drained = builder.drain_ready()
        assert drained == [Event(OPEN, "root")]
        builder.open("a", ALWAYS)
        builder.text("1")
        builder.close()
        drained = builder.drain_ready()
        assert serialize_events(drained) == "<a>1</a>"
        builder.close()
        tail = builder.finalize()
        assert tail == [Event(CLOSE, "root")]

    def test_drain_blocks_on_pending(self):
        cond = pending_condition()
        builder = ResultBuilder()
        builder.open("root", ALWAYS)
        builder.drain_ready()
        builder.open("a", cond)
        builder.close()
        builder.open("b", ALWAYS)
        builder.close()
        # 'a' undecided: nothing (not even 'b') may stream yet.
        assert builder.drain_ready() == []
        cond.mark_satisfied()
        drained = builder.drain_ready()
        assert serialize_events(drained) == "<a/><b/>"
        builder.close()
        assert builder.finalize() == [Event(CLOSE, "root")]

    def test_drain_then_finalize_no_duplicates(self):
        builder = ResultBuilder()
        builder.open("root", ALWAYS)
        builder.open("a", ALWAYS)
        builder.text("x")
        builder.close()
        first = builder.drain_ready()
        builder.open("a", ALWAYS)
        builder.text("y")
        builder.close()
        builder.close()
        rest = builder.finalize()
        combined = serialize_events(first + rest)
        assert combined == "<root><a>x</a><a>y</a></root>"

    def test_current_condition(self):
        builder = ResultBuilder()
        assert builder.current_condition() is ALWAYS
        cond = pending_condition()
        builder.open("a", cond)
        assert builder.current_condition() is cond
