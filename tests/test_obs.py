"""Observability layer: registry, tracing, exposition, dashboards.

Covers the ``repro.obs`` package in isolation (instrument semantics,
histogram bucket math, merge associativity, Prometheus text format,
tracer retention and adoption) and end-to-end: trace ids stamped by a
client ride the frame header through gateway and backend and come back
as one combined span tree in the RESULT trailer — including across a
mid-run failover retry.
"""

from __future__ import annotations

import random
import threading
import urllib.request

import pytest

from repro.obs.dashboard import flatten_stats, render_stats, render_top
from repro.obs.http import MetricsServer
from repro.obs.registry import (
    BYTE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    Tracer,
    format_span_tree,
    format_trace_id,
    new_trace_id,
)
from repro.server import protocol
from repro.server.client import RemoteSession
from repro.server.service import ServerThread, StationServer, hospital_station


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
class TestCounter:
    def test_concurrent_increments_never_lose_updates(self):
        counter = Counter()
        threads = [
            threading.Thread(
                target=lambda: [counter.inc() for _ in range(5000)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8 * 5000

    def test_counters_only_go_up(self):
        counter = Counter()
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_merge_sums(self):
        a, b = Counter(), Counter()
        a.inc(3)
        b.inc(4)
        a.merge(b)
        assert a.value == 7


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_concurrent_incs(self):
        gauge = Gauge()
        threads = [
            threading.Thread(
                target=lambda: [gauge.inc() for _ in range(5000)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert gauge.value == 8 * 5000


class TestHistogram:
    def test_bucket_edges_are_inclusive(self):
        # A value exactly on a bound lands in that bound's bucket
        # (Prometheus ``le`` semantics).
        histogram = Histogram(buckets=(1.0, 5.0, 10.0))
        histogram.observe(1.0)
        histogram.observe(5.0)
        histogram.observe(5.0001)
        histogram.observe(10.0)
        histogram.observe(11.0)  # +Inf bucket
        assert histogram.bucket_counts == (1, 1, 2, 1)

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(5.0, 5.0))
        with pytest.raises(ValueError):
            Histogram(buckets=())

    def test_percentile_interpolates_within_bucket(self):
        histogram = Histogram(buckets=(10.0, 20.0))
        for _ in range(10):
            histogram.observe(15.0)
        # All mass in the (10, 20] bucket: any percentile lies inside it.
        assert 10.0 < histogram.percentile(50) <= 20.0
        assert histogram.percentile(0) == 0.0 or histogram.percentile(0) <= 20.0

    def test_percentile_of_empty_is_zero(self):
        assert Histogram().percentile(99) == 0.0

    def test_overflow_reports_last_finite_bound(self):
        histogram = Histogram(buckets=(1.0, 2.0))
        histogram.observe(1000.0)
        assert histogram.percentile(99) == 2.0

    def test_merge_is_associative_and_equals_raw_feed(self):
        rng = random.Random(7)
        samples = [[rng.uniform(0, 50) for _ in range(40)] for _ in range(3)]
        parts = []
        for chunk in samples:
            histogram = Histogram(buckets=(1.0, 5.0, 10.0, 25.0, 50.0))
            for value in chunk:
                histogram.observe(value)
            parts.append(histogram)
        a, b, c = parts
        left = Histogram.merged([Histogram.merged([a, b]), c])
        right = Histogram.merged([a, Histogram.merged([b, c])])
        assert left.bucket_counts == right.bucket_counts
        assert left.sum == pytest.approx(right.sum)
        # ... and both equal one histogram fed every raw sample.
        raw = Histogram(buckets=(1.0, 5.0, 10.0, 25.0, 50.0))
        for chunk in samples:
            for value in chunk:
                raw.observe(value)
        assert left.bucket_counts == raw.bucket_counts
        assert left.percentile(95) == raw.percentile(95)

    def test_merge_rejects_different_bounds(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0,)).merge(Histogram(buckets=(2.0,)))

    def test_dict_round_trip(self):
        histogram = Histogram(buckets=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(3.0)
        clone = Histogram.from_dict(histogram.as_dict())
        assert clone.bucket_counts == histogram.bucket_counts
        assert clone.sum == histogram.sum


# ----------------------------------------------------------------------
# Registry + exposition
# ----------------------------------------------------------------------
class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help")
        again = registry.counter("x_total")
        assert first is again

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_label_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("x_total", labelnames=("b",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("ok_total", labelnames=("bad-label",))

    def test_labelled_children_are_distinct(self):
        registry = MetricsRegistry()
        family = registry.counter("req_total", labelnames=("type",))
        family.labels(type="QUERY").inc(2)
        family.labels(type="UPDATE").inc()
        assert family.labels(type="QUERY").value == 2
        assert family.labels(type="UPDATE").value == 1
        with pytest.raises(ValueError):
            family.labels(wrong="x")

    def test_render_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "Requests.", labelnames=("type",)).labels(
            type="QUERY"
        ).inc(3)
        registry.gauge("alive", "Liveness.").set(1)
        histogram = registry.histogram("lat_ms", "Latency.", buckets=(1.0, 5.0))
        histogram.observe(0.5)
        histogram.observe(3.0)
        histogram.observe(100.0)
        text = registry.render()
        assert "# HELP req_total Requests." in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{type="QUERY"} 3' in text
        assert "alive 1" in text
        # Histogram buckets are cumulative and end with +Inf.
        assert 'lat_ms_bucket{le="1"} 1' in text
        assert 'lat_ms_bucket{le="5"} 2' in text
        assert 'lat_ms_bucket{le="+Inf"} 3' in text
        assert "lat_ms_count 3" in text
        assert text.endswith("\n")

    def test_collectors_run_at_scrape_time(self):
        registry = MetricsRegistry()
        state = {"value": 0}
        registry.register_collector(
            lambda reg: reg.gauge("live_value").set(state["value"])
        )
        state["value"] = 42
        assert "live_value 42" in registry.render()
        state["value"] = 43
        assert registry.snapshot()["live_value"]["samples"][0]["value"] == 43

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("esc_total", labelnames=("q",)).labels(
            q='a"b\\c\nd'
        ).inc()
        text = registry.render()
        assert 'q="a\\"b\\\\c\\nd"' in text


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_trace_ids_are_nonzero_and_seeded_runs_reproduce(self):
        rng_a, rng_b = random.Random(42), random.Random(42)
        ids_a = [new_trace_id(rng_a) for _ in range(10)]
        ids_b = [new_trace_id(rng_b) for _ in range(10)]
        assert ids_a == ids_b
        assert all(0 < t <= protocol.MAX_TRACE_ID for t in ids_a)
        assert len(format_trace_id(ids_a[0])) == 16

    def test_span_tree_and_record(self):
        tracer = Tracer()
        trace = new_trace_id()
        root = tracer.start(trace, "request")
        child = tracer.start(trace, "stage", parent=root.id)
        tracer.finish(child, bytes=10)
        tracer.finish(root)
        record = tracer.end_trace(trace)
        assert record is not None
        assert record.root_name == "request"
        names = [span["name"] for span in record.spans]
        assert names == ["request", "stage"]
        tree = format_span_tree(record.as_dict())
        assert "request" in tree and "  stage" in tree.splitlines()[2]

    def test_ring_is_bounded(self):
        tracer = Tracer(capacity=4)
        for _ in range(10):
            trace = new_trace_id()
            tracer.finish(tracer.start(trace, "r"))
            tracer.end_trace(trace)
        assert len(tracer.records) == 4
        assert tracer.finished == 10

    def test_slow_log_threshold(self):
        seen = []
        tracer = Tracer(slow_ms=10_000.0, slow_sink=seen.append)
        trace = new_trace_id()
        tracer.finish(tracer.start(trace, "fast"))
        tracer.end_trace(trace)
        assert not tracer.slow_log and not seen
        tracer.slow_ms = 0.0
        trace = new_trace_id()
        tracer.finish(tracer.start(trace, "slow"))
        record = tracer.end_trace(trace)
        assert record.slow
        assert list(tracer.slow_log) == [record] == seen
        assert tracer.slow_records()[-1]["root"] == "slow"

    def test_adopt_remaps_and_reparents(self):
        remote = Tracer()
        trace = new_trace_id()
        remote_root = remote.start(trace, "backend.query")
        remote.finish(remote.start(trace, "stage", parent=remote_root.id))
        remote.finish(remote_root)
        serialized = remote.end_trace(trace).spans

        local = Tracer()
        root = local.start(trace, "gateway")
        adopted = local.adopt(trace, serialized, parent=root.id)
        local.finish(root)
        record = local.end_trace(trace)
        assert adopted == 2
        by_name = {span["name"]: span for span in record.spans}
        assert by_name["backend.query"]["parent"] == by_name["gateway"]["id"]
        assert by_name["stage"]["parent"] == by_name["backend.query"]["id"]
        # Remapped ids must not collide with local ones.
        assert len({span["id"] for span in record.spans}) == 3

    def test_discard_and_active_cap(self):
        tracer = Tracer()
        trace = new_trace_id()
        tracer.start(trace, "r")
        tracer.discard(trace)
        assert tracer.end_trace(trace) is None
        assert tracer.stats()["finished"] == 0


# ----------------------------------------------------------------------
# Protocol v2 (trace header)
# ----------------------------------------------------------------------
class TestTraceFraming:
    def test_untraced_frames_are_byte_identical_to_v1(self):
        assert protocol.encode_frame(
            protocol.PING, 7, b"x", trace=0
        ) == protocol.encode_frame(protocol.PING, 7, b"x")
        data = protocol.encode_frame(protocol.PING, 7, b"x")
        assert data[1] == protocol.VERSION
        assert len(data) == protocol.HEADER_SIZE + 1

    def test_traced_frame_round_trip(self):
        trace = new_trace_id()
        data = protocol.encode_frame(protocol.QUERY, 3, b"payload", trace=trace)
        assert data[1] == protocol.TRACE_VERSION
        decoder = protocol.FrameDecoder()
        frames = decoder.feed(data)
        assert len(frames) == 1
        assert frames[0].trace == trace
        assert bytes(frames[0].payload) == b"payload"

    def test_mixed_version_stream_decodes_in_order(self):
        trace = new_trace_id()
        stream = (
            protocol.encode_frame(protocol.PING, 1, b"a")
            + protocol.encode_frame(protocol.QUERY, 2, b"b", trace=trace)
            + protocol.encode_frame(protocol.PING, 3, b"c")
        )
        decoder = protocol.FrameDecoder()
        # Byte-at-a-time: header boundaries must not confuse the decoder.
        frames = []
        for index in range(len(stream)):
            frames.extend(decoder.feed(stream[index : index + 1]))
        assert [frame.trace for frame in frames] == [0, trace, 0]

    def test_out_of_range_trace_rejected(self):
        with pytest.raises(ValueError):
            protocol.encode_frame(protocol.PING, 1, b"", trace=-1)
        with pytest.raises(ValueError):
            protocol.encode_frame(
                protocol.PING, 1, b"", trace=protocol.MAX_TRACE_ID + 1
            )


# ----------------------------------------------------------------------
# End-to-end: single server
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced_server():
    station, subjects = hospital_station(folders=2, seed=11)
    server = StationServer(station, chunk_size=256, slow_ms=0.0)
    thread = ServerThread(server)
    host, port = thread.start()
    yield server, host, port, subjects
    thread.stop()
    station.close()


class TestServerTracing:
    def test_trace_id_rides_query_and_comes_back_with_spans(self, traced_server):
        server, host, port, subjects = traced_server
        trace = new_trace_id()
        with RemoteSession(host, port, subjects[0]) as session:
            result = session.evaluate("hospital", trace=trace)
        assert result.trace_id == format_trace_id(trace)
        spans = result.spans
        names = [span["name"] for span in spans]
        assert "backend.query" in names
        assert "queue" in names and "stream" in names
        assert any(name.startswith("stage:") for name in names)
        # Every non-root span nests under the backend root.
        root = next(span for span in spans if span["name"] == "backend.query")
        assert root["parent"] == 0
        ids = {span["id"] for span in spans}
        assert all(
            span["parent"] in ids for span in spans if span is not root
        )

    def test_untraced_requests_carry_no_span_payload(self, traced_server):
        server, host, port, subjects = traced_server
        with RemoteSession(host, port, subjects[0]) as session:
            result = session.evaluate("hospital")
        assert result.trace_id == ""
        assert result.spans == []

    def test_session_level_tracing_mints_ids(self, traced_server):
        server, host, port, subjects = traced_server
        with RemoteSession(host, port, subjects[0], trace=True) as session:
            first = session.evaluate("hospital")
            second = session.evaluate("hospital")
        assert first.trace_id and second.trace_id
        assert first.trace_id != second.trace_id
        assert second.trailer.get("cached") is True
        assert [span["name"] for span in second.spans].count("view-cache") == 1

    def test_slow_log_retains_full_tree(self, traced_server):
        server, host, port, subjects = traced_server
        with RemoteSession(host, port, subjects[0], trace=True) as session:
            session.evaluate("hospital")
        records = server.tracer.slow_records()
        assert records, "slow_ms=0 must flag every traced request"
        tree = format_span_tree(records[-1])
        assert "backend.query" in tree

    def test_fast_path_ships_id_only_without_slow_threshold(self):
        # Without a slow threshold a direct traced response carries the
        # trace id but no span payload — the tree still lands in the
        # server's ring buffer, it just never rides the hot path.
        station, subjects = hospital_station(folders=2, seed=11)
        server = StationServer(station, chunk_size=256)
        thread = ServerThread(server)
        host, port = thread.start()
        try:
            trace = new_trace_id()
            with RemoteSession(host, port, subjects[0]) as session:
                result = session.evaluate("hospital", trace=trace)
            assert result.trace_id == format_trace_id(trace)
            assert result.spans == []
            assert "spans" not in result.trailer
            assert server.tracer.stats()["finished"] == 1
        finally:
            thread.stop()
            station.close()

    def test_stats_body_reports_observability_and_backend(self, traced_server):
        server, host, port, subjects = traced_server
        with RemoteSession(host, port, subjects[0]) as session:
            body = session.stats()
        assert "native_kernels" in body["backend"]
        assert body["observability"]["finished"] >= 0
        assert "slow_log" in body["observability"]


# ----------------------------------------------------------------------
# End-to-end: cluster (gateway adoption + failover)
# ----------------------------------------------------------------------
class TestClusterTracing:
    def test_gateway_grafts_backend_spans_into_one_tree(self):
        from repro.cluster.topology import hospital_cluster

        cluster, docs, subjects = hospital_cluster(
            backends=3, replicas=2, documents=1, folders=2, slow_ms=0.0
        )
        try:
            host, port = cluster.gateway_address
            trace = new_trace_id()
            with RemoteSession(host, port, subjects[0]) as session:
                result = session.evaluate(docs[0], trace=trace)
            assert result.trace_id == format_trace_id(trace)
            names = [span["name"] for span in result.spans]
            assert names[0] == "gateway.request"
            assert any(name.startswith("forward:") for name in names)
            assert "backend.query" in names
            assert any(name.startswith("stage:") for name in names)
            by_id = {span["id"]: span for span in result.spans}
            backend_root = next(
                span for span in result.spans if span["name"] == "backend.query"
            )
            forward = by_id[backend_root["parent"]]
            assert forward["name"].startswith("forward:")
            assert by_id[forward["parent"]]["name"] == "gateway.request"
            # The gateway's slow log holds the same cross-process tree.
            record = cluster.gateway.tracer.slow_records()[-1]
            assert "gateway.request" in format_span_tree(record)
        finally:
            cluster.stop()

    def test_trace_survives_mid_run_failover_retry(self):
        from repro.cluster.topology import hospital_cluster

        cluster, docs, subjects = hospital_cluster(
            backends=3, replicas=2, documents=1, folders=2, slow_ms=0.0
        )
        try:
            host, port = cluster.gateway_address
            document = docs[0]
            with RemoteSession(host, port, subjects[0]) as session:
                warm = session.evaluate(document)
                # Kill the backend that served the query; the gateway
                # still believes it is alive, so the next forward hits
                # the dead socket and must fail over — same trace.
                cluster.kill_backend(warm.trailer["backend"])
                trace = new_trace_id()
                result = session.evaluate(document, trace=trace)
            assert result.trace_id == format_trace_id(trace)
            assert result.trailer["failover"] == 1
            assert result.data == warm.data
            forwards = [
                span
                for span in result.spans
                if span["name"].startswith("forward:")
            ]
            assert len(forwards) == 2
            failed = next(s for s in forwards if "error" in s["attrs"])
            survived = next(s for s in forwards if "error" not in s["attrs"])
            assert failed["name"] != survived["name"]
            assert any(
                span["name"] == "backend.query" for span in result.spans
            )
        finally:
            cluster.stop()

    def test_cluster_stats_aggregates_from_pooled_samples(self):
        from repro.cluster.topology import hospital_cluster
        from repro.metrics import percentile

        cluster, docs, subjects = hospital_cluster(
            backends=3, replicas=2, documents=2, folders=2
        )
        try:
            host, port = cluster.gateway_address
            with RemoteSession(host, port, subjects[0]) as session:
                for document in docs * 3:
                    session.evaluate(document)
                body = session.stats()
            assert body["ring"] == {"alive": 3, "total": 3}
            samples = [
                sample
                for backend in cluster.gateway.backends.values()
                for sample in backend.latencies
            ]
            expected = round(percentile(samples, 95) * 1000, 3)
            assert body["latency_ms"]["p95"] == expected
            # The pooled aggregate is NOT the average of per-backend
            # percentiles (that would dilute a skewed node's tail).
            per_backend_p95 = [
                entry["latency_ms"]["p95"]
                for entry in body["per_backend"].values()
                if entry["requests"]
            ]
            assert min(per_backend_p95) <= body["latency_ms"]["p95"]
            assert body["latency_ms"]["p95"] <= max(per_backend_p95)
            for entry in body["per_backend"].values():
                assert "p99" in entry["latency_ms"]
                if entry["alive"]:
                    assert "native_kernels" in (entry.get("backend") or {})
            assert body["compute"]["native_backends"] in range(0, 4)
        finally:
            cluster.stop()


# ----------------------------------------------------------------------
# Metrics endpoint
# ----------------------------------------------------------------------
class TestMetricsEndpoint:
    def test_scrape_and_health(self, traced_server):
        server, host, port, subjects = traced_server
        metrics = MetricsServer(server.registry, 0).start()
        try:
            with RemoteSession(host, port, subjects[0]) as session:
                session.evaluate("hospital")
            base = "http://%s" % metrics.address
            body = urllib.request.urlopen(base + "/metrics", timeout=10)
            text = body.read().decode("utf-8")
            assert body.headers["Content-Type"].startswith("text/plain")
            for family in (
                "repro_requests_total",
                "repro_request_ms_bucket",
                "repro_view_bytes_bucket",
                "repro_station_",
                "repro_server_",
                "repro_native_kernels",
                "repro_traces_finished",
            ):
                assert family in text, family
            health = urllib.request.urlopen(base + "/healthz", timeout=10)
            assert health.read() == b"ok\n"
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(base + "/nope", timeout=10)
        finally:
            metrics.stop()


# ----------------------------------------------------------------------
# Dashboard rendering (pure formatting)
# ----------------------------------------------------------------------
GATEWAY_BODY = {
    "role": "gateway",
    "replicas": 2,
    "ring": {"alive": 2, "total": 3},
    "gateway": {"queries": 10, "updates": 2, "failovers": 1, "repairs": 1},
    "latency_ms": {"p50": 4.0, "p95": 9.0, "p99": 12.0},
    "observability": {"slow_queries": 3},
    "per_backend": {
        "node0": {
            "alive": True,
            "requests": 6,
            "latency_ms": {"p50": 4.0, "p95": 8.0, "p99": 9.0},
            "station": {"view_hits": 3, "view_misses": 1},
            "backend": {"fallbacks": 0, "native_kernels": True},
        },
        "node1": {
            "alive": False,
            "requests": 4,
            "latency_ms": {"p50": 5.0, "p95": 9.0, "p99": 12.0},
            "station": {"view_hits": 0, "view_misses": 4},
            "backend": {"fallbacks": 2, "native_kernels": False},
        },
    },
}


class TestDashboard:
    def test_flatten_sorts_dotted_paths(self):
        rows = flatten_stats({"b": {"y": 1, "x": 2}, "a": 3})
        assert rows == [("a", 3), ("b.x", 2), ("b.y", 1)]

    def test_render_stats_formats(self):
        import json as jsonlib

        body = {"server": {"queries": 5}, "list": [1, 2]}
        parsed = jsonlib.loads(render_stats(body, "json"))
        assert parsed == body
        csv = render_stats(body, "csv")
        assert csv.splitlines()[0] == "key,value"
        assert 'list,"[1, 2]"' in csv
        table = render_stats(body, "table")
        assert "server.queries" in table
        with pytest.raises(ValueError):
            render_stats(body, "xml")

    def test_render_stats_table_truncates_bulky_values(self):
        body = {"observability": {"slow_log": [{"x": "y" * 200}]}}
        table = render_stats(body, "table")
        assert max(len(line) for line in table.splitlines()) < 120

    def test_render_top_gateway_frame(self):
        prev = {
            "per_backend": {
                "node0": {"requests": 2},
                "node1": {"requests": 4},
            }
        }
        frame = render_top(GATEWAY_BODY, prev, interval=2.0, address="gw:1")
        assert "backends 2/3 alive" in frame
        assert "queries=10" in frame
        assert "slow=3" in frame
        lines = frame.splitlines()
        node0 = next(line for line in lines if line.startswith("node0"))
        assert "2.0" in node0  # (6 - 2) / 2s
        assert "75%" in node0
        node1 = next(line for line in lines if line.startswith("node1"))
        assert "DOWN" in node1
        assert "no" in node1

    def test_render_top_station_frame(self):
        body = {
            "role": "station",
            "server": {"queries": 8, "updates": 1},
            "station": {"view_hits": 6, "view_misses": 2},
            "cached_views": 2,
            "backend": {"fallbacks": 0, "native_kernels": True},
            "observability": {"slow_queries": 0},
        }
        frame = render_top(body, None, None, address="st:1")
        assert "station st:1" in frame
        assert "8" in frame and "75%" in frame and "yes" in frame
