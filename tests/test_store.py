"""The persistent chunk store (``repro.store``).

Three families of guarantees:

* **Parity** — a station on a :class:`LogStore` serves byte-identical
  views to one on the default :class:`MemoryStore`, before and after a
  restart, for every scheme (the differential fuzz at the bottom
  hammers this across random documents and update sequences).
* **Crash recovery** — a torn log tail, a half-written manifest line
  or a kill between the log append and the manifest commit must all
  recover to the last committed state; a manifest whose version chain
  rolls backwards must refuse to load (replay protection).
* **Resource discipline** — the page cache respects its byte budget,
  ``compact`` reclaims superseded records, ``close`` is idempotent and
  releases the directory lock.
"""

import os
import random

import pytest

from repro.accesscontrol.model import AccessRule, Policy
from repro.crypto.integrity import SCHEMES, IntegrityError
from repro.engine import DocumentPipeline, SecureStation
from repro.skipindex.updates import UpdateOp
from repro.store import LogStore, MemoryStore, StoreError, open_store
from repro.xmlkit.serializer import serialize_events

KEY = bytes(range(16))

DOC = "<library>%s</library>" % "".join(
    "<book><title>t%d</title><price>%d</price><internal>x%d</internal></book>"
    % (i, (i * 7) % 50, i)
    for i in range(14)
)

POLICY = Policy(
    [AccessRule("+", "//book"), AccessRule("-", "//internal")],
    subject="alice",
)


def view_of(station, document_id="doc"):
    result = station.evaluate(document_id, POLICY)
    return serialize_events(result.events)


def publish(station, document_id="doc", scheme="ECB-MHT", source=DOC):
    station.publish(document_id, source, scheme=scheme, key=KEY)


# ----------------------------------------------------------------------
# Parity: MemoryStore vs LogStore vs restarted LogStore
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_log_store_parity_all_schemes(tmp_path, scheme):
    with SecureStation(store=MemoryStore()) as memory_station:
        publish(memory_station, scheme=scheme)
        expected = view_of(memory_station)

    with SecureStation(store=LogStore(str(tmp_path))) as log_station:
        publish(log_station, scheme=scheme)
        assert view_of(log_station) == expected

    # Byte-identical after a clean restart.
    with SecureStation(store=LogStore(str(tmp_path))) as restarted:
        assert view_of(restarted) == expected


def test_stored_bytes_identical_across_restart(tmp_path):
    prepared = (
        DocumentPipeline.publisher(scheme="ECB-MHT", key=KEY)
        .run(source=DOC)
        .prepared
    )
    reference = bytes(prepared.secure.stored)

    store = LogStore(str(tmp_path))
    served = store.put("doc", prepared, KEY, 0).secure
    assert bytes(served.stored) == reference
    store.close()

    store = LogStore(str(tmp_path))
    entry = store.get("doc")
    assert bytes(entry.prepared.secure.stored) == reference
    assert entry.version == 0
    store.close()


def test_updates_survive_restart(tmp_path):
    store = LogStore(str(tmp_path))
    with SecureStation(store=store) as station:
        publish(station)
        station.update("doc", UpdateOp.set_text((0, 0), "changed"))
        station.update("doc", UpdateOp.set_text((2, 1), "99"))
        expected = view_of(station)
        assert station.document_version("doc") == 2

    with SecureStation(store=LogStore(str(tmp_path))) as restarted:
        assert restarted.document_version("doc") == 2
        assert view_of(restarted) == expected
        # The chain keeps going where it left off.
        restarted.update("doc", UpdateOp.set_text((1, 0), "later"))
        assert restarted.document_version("doc") == 3


def test_open_store_dispatch(tmp_path):
    assert isinstance(open_store(None), MemoryStore)
    store = open_store(str(tmp_path / "data"), cache_bytes=1 << 20)
    try:
        assert isinstance(store, LogStore)
        assert store.persistent
        assert store.cache_bytes == 1 << 20
    finally:
        store.close()


# ----------------------------------------------------------------------
# Crash recovery
# ----------------------------------------------------------------------
def _files(directory):
    return (
        os.path.join(directory, "chunks-000000.log"),
        os.path.join(directory, "manifest-000000.log"),
    )


def _populate(directory, documents=("doc",)):
    """Publish ``documents`` and return their serialized views."""
    views = {}
    with SecureStation(store=LogStore(directory)) as station:
        for document_id in documents:
            publish(station, document_id)
        for document_id in documents:
            views[document_id] = view_of(station, document_id)
    return views


def test_torn_log_tail_is_truncated(tmp_path):
    directory = str(tmp_path)
    views = _populate(directory)
    chunk_path, _ = _files(directory)
    committed = os.path.getsize(chunk_path)
    # A crash mid-append leaves a partial segment: a valid-looking
    # header whose body never finished, then garbage.
    with open(chunk_path, "ab") as handle:
        handle.write(b"RPCL" + (9999).to_bytes(4, "big") + b"\x00" * 40)

    store = LogStore(directory)
    try:
        assert store.describe()["torn_bytes_dropped"] == 48
        assert os.path.getsize(chunk_path) == committed
    finally:
        store.close()
    with SecureStation(store=LogStore(directory)) as station:
        assert view_of(station) == views["doc"]


def test_kill_between_log_append_and_manifest_commit(tmp_path):
    directory = str(tmp_path)
    views = _populate(directory)
    chunk_path, manifest_path = _files(directory)
    log_size = os.path.getsize(chunk_path)
    manifest_size = os.path.getsize(manifest_path)

    # Second publish fully lands in the chunk log...
    with SecureStation(store=LogStore(directory)) as station:
        publish(station, "late")
    # ...but the crash ate the manifest line (simulated by rollback).
    with open(manifest_path, "ab") as handle:
        pass
    os.truncate(manifest_path, manifest_size)

    store = LogStore(directory)
    try:
        description = store.describe()
        # The orphaned records past the committed tail are dropped
        # whole — they were never durable as far as readers knew.
        assert description["orphan_records_dropped"] > 0
        assert description["documents"] == 1
        assert "late" not in store
        assert os.path.getsize(chunk_path) == log_size
    finally:
        store.close()
    with SecureStation(store=LogStore(directory)) as station:
        assert view_of(station) == views["doc"]


def test_partial_manifest_line_is_dropped(tmp_path):
    directory = str(tmp_path)
    views = _populate(directory)
    _, manifest_path = _files(directory)
    committed = os.path.getsize(manifest_path)
    with open(manifest_path, "ab") as handle:
        handle.write(b'00000000 {"id":"half-written')  # no newline, bad crc

    with SecureStation(store=LogStore(directory)) as station:
        assert view_of(station) == views["doc"]
    assert os.path.getsize(manifest_path) == committed


def test_corrupt_manifest_crc_drops_line_and_successors(tmp_path):
    directory = str(tmp_path)
    _populate(directory, documents=("a", "b"))
    _, manifest_path = _files(directory)
    with open(manifest_path, "rb") as handle:
        lines = handle.readlines()
    assert len(lines) == 2
    # Flip one byte inside the first entry's JSON: its crc fails, and
    # everything after it is dropped too (the torn line could have
    # been mid-rewrite; nothing later is trustworthy).
    damaged = bytearray(lines[0])
    damaged[12] ^= 0xFF
    with open(manifest_path, "wb") as handle:
        handle.write(bytes(damaged))
        handle.write(lines[1])

    store = LogStore(directory)
    try:
        assert len(store) == 0
        assert os.path.getsize(manifest_path) == 0
    finally:
        store.close()


def test_version_rollback_raises_integrity_error(tmp_path):
    directory = str(tmp_path)
    with SecureStation(store=LogStore(directory)) as station:
        publish(station)
        station.update("doc", UpdateOp.set_text((0, 0), "v1"))
    _, manifest_path = _files(directory)
    with open(manifest_path, "rb") as handle:
        lines = handle.readlines()
    # Replay the *first* (older-version) entry after the newest one —
    # exactly what splicing an old manifest capture would do.
    with open(manifest_path, "ab") as handle:
        handle.write(lines[0])

    with pytest.raises(IntegrityError, match="rollback"):
        LogStore(directory)


def test_tampered_chunk_record_fails_verification(tmp_path):
    directory = str(tmp_path)
    _populate(directory)
    chunk_path, _ = _files(directory)
    with open(chunk_path, "r+b") as handle:
        handle.seek(os.path.getsize(chunk_path) // 2)
        byte = handle.read(1)
        handle.seek(-1, os.SEEK_CUR)
        handle.write(bytes([byte[0] ^ 0xFF]))

    # The segment CRC catches the flip on the first cold read.
    with SecureStation(store=LogStore(directory)) as station:
        with pytest.raises(Exception):
            view_of(station)


# ----------------------------------------------------------------------
# Page cache, compaction, lifecycle
# ----------------------------------------------------------------------
def test_page_cache_hits_and_eviction(tmp_path):
    store = LogStore(str(tmp_path), cache_bytes=4096)
    try:
        with SecureStation(store=store) as station:
            publish(station, "a")
            publish(station, "b")
            view_of(station, "a")
            view_of(station, "b")
            description = store.describe()
            assert description["page_misses"] > 0
            assert description["cache_used_bytes"] <= max(
                4096, description["cache_used_bytes"] - 0
            )
            # The budget admits at most one resident segment here, so
            # eviction must have run while both documents were read.
            assert description["cache_entries"] <= 2
            before_hits = description["page_hits"]
            station.evaluate("a", POLICY, query="//title")
            assert store.describe()["page_hits"] >= before_hits
    finally:
        store.close()


def test_page_cache_serves_hits_within_budget(tmp_path):
    store = LogStore(str(tmp_path))  # default 64 MiB: everything fits
    try:
        with SecureStation(store=store) as station:
            publish(station)
            view_of(station)
            misses = store.describe()["page_misses"]
            station.evaluate("doc", POLICY, query="//price")
            after = store.describe()
            assert after["page_misses"] == misses  # warm reads: no I/O
    finally:
        store.close()


def test_compact_reclaims_and_preserves_views(tmp_path):
    directory = str(tmp_path)
    store = LogStore(directory)
    with SecureStation(store=store) as station:
        publish(station)
        for index in range(4):
            station.update(
                "doc", UpdateOp.set_text((0, 0), "pass %d" % index)
            )
        expected = view_of(station)
        before = store.describe()
        stats = store.compact()
        assert stats["log_bytes_after"] <= stats["log_bytes_before"]
        assert stats["generation"] == before["generation"] + 1
        assert view_of(station) == expected
        # The old generation's files are gone; CURRENT points at the new.
        assert not os.path.exists(os.path.join(directory, "chunks-000000.log"))
        with open(os.path.join(directory, "CURRENT")) as handle:
            assert int(handle.read().strip()) == stats["generation"]

    with SecureStation(store=LogStore(directory)) as restarted:
        assert view_of(restarted) == expected


def test_close_is_idempotent_and_releases_lock(tmp_path):
    store = LogStore(str(tmp_path))
    store.close()
    store.close()
    assert store.closed
    with pytest.raises(StoreError):
        store.get("doc")

    second = LogStore(str(tmp_path))  # the flock is free again
    second.close()


def test_second_opener_is_locked_out(tmp_path):
    store = LogStore(str(tmp_path))
    try:
        with pytest.raises(StoreError, match="locked"):
            LogStore(str(tmp_path))
    finally:
        store.close()


def test_station_close_idempotent_and_context_manager(tmp_path):
    station = SecureStation(store=LogStore(str(tmp_path)))
    publish(station)
    station.close()
    station.close()
    assert station.closed

    with SecureStation() as station:
        publish(station)
        assert not station.closed
    assert station.closed


def test_memory_store_rejects_after_close():
    store = MemoryStore()
    store.close()
    store.close()
    with pytest.raises(StoreError):
        store.put("doc", None, KEY, 0)


# ----------------------------------------------------------------------
# Differential fuzz: memory == log == restarted log
# ----------------------------------------------------------------------
TAGS = ["r", "s", "t", "u"]


def _random_source(rng):
    parts = []
    for i in range(rng.randint(3, 8)):
        tag = rng.choice(TAGS)
        parts.append(
            "<%s><name>n%d</name><val>%d</val></%s>"
            % (tag, i, rng.randint(0, 99), tag)
        )
    return "<root>%s</root>" % "".join(parts)


@pytest.mark.parametrize("seed", range(4))
def test_differential_memory_vs_log_with_updates(tmp_path, seed):
    rng = random.Random(seed)
    scheme = rng.choice(sorted(SCHEMES))
    source = _random_source(rng)
    policy = Policy([AccessRule("+", "//name"), AccessRule("+", "//val")],
                    subject="fuzz")

    directory = str(tmp_path)
    memory_station = SecureStation(store=MemoryStore())
    log_station = SecureStation(store=LogStore(directory))
    try:
        for station in (memory_station, log_station):
            station.publish("doc", source, scheme=scheme, key=KEY)
        for step in range(rng.randint(1, 4)):
            child = rng.randrange(3)
            op = UpdateOp.set_text((child, 1), str(rng.randint(100, 999)))
            memory_station.update("doc", op)
            log_station.update("doc", op)
        expected = serialize_events(
            memory_station.evaluate("doc", policy).events
        )
        assert (
            serialize_events(log_station.evaluate("doc", policy).events)
            == expected
        )
        log_version = log_station.document_version("doc")
        assert log_version == memory_station.document_version("doc")
    finally:
        memory_station.close()
        log_station.close()

    with SecureStation(store=LogStore(directory)) as restarted:
        assert (
            serialize_events(restarted.evaluate("doc", policy).events)
            == expected
        )
        assert restarted.document_version("doc") == log_version
