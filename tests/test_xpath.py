"""Unit tests for the XPath fragment: parser, AST, NFA compilation."""

import pytest

from repro.xpath import (
    AXIS_CHILD,
    AXIS_DESCENDANT,
    Comparison,
    XPathSyntaxError,
    compile_path,
    parse_xpath,
)
from repro.xpath.ast import USER_VARIABLE


class TestParser:
    def test_simple_child_path(self):
        path = parse_xpath("/a/b/c")
        assert [s.test for s in path.steps] == ["a", "b", "c"]
        assert all(s.axis == AXIS_CHILD for s in path.steps)

    def test_descendant_axis(self):
        path = parse_xpath("//a//b")
        assert [s.axis for s in path.steps] == [AXIS_DESCENDANT, AXIS_DESCENDANT]

    def test_mixed_axes(self):
        path = parse_xpath("/a//b/c")
        assert [s.axis for s in path.steps] == [
            AXIS_CHILD,
            AXIS_DESCENDANT,
            AXIS_CHILD,
        ]

    def test_leading_slash_optional(self):
        assert parse_xpath("a/b") == parse_xpath("/a/b")

    def test_wildcard(self):
        path = parse_xpath("//*/b")
        assert path.steps[0].is_wildcard()

    def test_existence_predicate(self):
        path = parse_xpath("//a[b]")
        predicate = path.steps[0].predicates[0]
        assert predicate.is_existence()
        assert predicate.path.steps[0].test == "b"

    def test_comparison_predicate_number(self):
        path = parse_xpath("//a[b > 250]")
        cmp_ = path.steps[0].predicates[0].comparison
        assert cmp_.operator == ">"
        assert cmp_.literal == 250

    def test_comparison_predicate_string(self):
        path = parse_xpath('//a[b = "G3"]')
        assert path.steps[0].predicates[0].comparison.literal == "G3"

    def test_bareword_literal(self):
        path = parse_xpath("//a[b = G3]")
        assert path.steps[0].predicates[0].comparison.literal == "G3"

    def test_user_variable(self):
        path = parse_xpath("//MedActs[//RPhys = USER]")
        assert path.steps[0].predicates[0].comparison.literal == USER_VARIABLE

    def test_predicate_with_descendant_path(self):
        path = parse_xpath("//a[//b = 3]")
        predicate = path.steps[0].predicates[0]
        assert predicate.path.steps[0].axis == AXIS_DESCENDANT

    def test_predicate_nested_path(self):
        path = parse_xpath("//Folder[Protocol/Type = G3]")
        predicate = path.steps[0].predicates[0]
        assert [s.test for s in predicate.path.steps] == ["Protocol", "Type"]

    def test_multiple_predicates(self):
        path = parse_xpath("//a[b][c = 1]")
        assert len(path.steps[0].predicates) == 2

    def test_nested_predicates(self):
        path = parse_xpath("//a[b[c]/d]")
        outer = path.steps[0].predicates[0]
        inner = outer.path.steps[0].predicates[0]
        assert inner.path.steps[0].test == "c"

    def test_self_comparison_predicate(self):
        path = parse_xpath("//a[. = 5]")
        predicate = path.steps[0].predicates[0]
        assert predicate.path.steps[0].is_self()
        assert predicate.comparison.literal == 5

    def test_paper_rules_parse(self):
        for expression in [
            "//Folder/Admin",
            "//MedActs[//RPhys = USER]",
            "//Act[RPhys != USER]/Details",
            "//Folder[MedActs//RPhys = USER]/Analysis",
            "//Folder[Protocol]//Age",
            "//Folder[Protocol/Type=G3]//LabResults//G3",
            "//G3[Cholesterol > 250]",
            "//Admin",
            "//Folder[//Age>25]",
        ]:
            parse_xpath(expression)

    @pytest.mark.parametrize(
        "bad",
        ["", "/", "//", "a[", "a]", "a[]", "a[=3]", "a[b=]", "a/[b]", "a[b!]",
         "a['x]", "a[.]"],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(XPathSyntaxError):
            parse_xpath(bad)

    def test_round_trip_rendering(self):
        for expression in ["/a/b", "//a//b", "//a[b > 1]/c", "//x[y/z = 2]"]:
            path = parse_xpath(expression)
            assert parse_xpath(str(path)) == path


class TestComparison:
    def test_numeric_semantics(self):
        assert Comparison(">", 250).matches("300")
        assert not Comparison(">", 250).matches("200")
        assert Comparison("=", 5).matches(" 5 ")
        assert Comparison("!=", 5).matches("6")
        assert Comparison("<=", 5).matches("5")
        assert Comparison(">=", 5.5).matches("5.5")

    def test_non_numeric_text_vs_number(self):
        assert not Comparison("=", 5).matches("abc")
        assert Comparison("!=", 5).matches("abc")

    def test_string_semantics(self):
        assert Comparison("=", "G3").matches("G3")
        assert not Comparison("=", "G3").matches("G4")
        assert Comparison("<", "b").matches("a")

    def test_numeric_coercion_of_string_literal(self):
        # "250" vs 250.0 should compare numerically.
        assert Comparison("=", "250").matches("250.0")

    def test_user_binding(self):
        cmp_ = Comparison("=", USER_VARIABLE)
        bound = cmp_.bind_user("alice")
        assert bound.literal == "alice"
        with pytest.raises(ValueError):
            cmp_.matches("alice")

    def test_invalid_operator(self):
        with pytest.raises(ValueError):
            Comparison("~", 1)


class TestPathHelpers:
    def test_required_labels(self):
        path = parse_xpath("//a[b/c]/d/*")
        assert path.required_labels() == {"a", "b", "c", "d"}

    def test_has_predicates(self):
        assert parse_xpath("//a[b]").has_predicates()
        assert not parse_xpath("//a/b").has_predicates()
        assert parse_xpath("//a[b[c]]").has_predicates()

    def test_has_descendant_axis(self):
        assert parse_xpath("//a").has_descendant_axis()
        assert not parse_xpath("/a/b").has_descendant_axis()
        assert parse_xpath("/a[//b]").has_descendant_axis()

    def test_bind_user_deep(self):
        path = parse_xpath("//a[b = USER]")
        bound = path.bind_user("bob")
        assert bound.steps[0].predicates[0].comparison.literal == "bob"


class TestNfa:
    def test_child_chain(self):
        automaton = compile_path(parse_xpath("/a/b"))
        s0 = automaton.states[automaton.initial]
        assert not s0.self_loop
        (s1,) = s0.targets("a")
        assert automaton.states[s1].targets("b") == [automaton.nav_final]
        assert automaton.states[automaton.nav_final].is_final

    def test_descendant_self_loop(self):
        automaton = compile_path(parse_xpath("//a"))
        s0 = automaton.states[automaton.initial]
        assert s0.self_loop
        assert s0.targets("a") == [automaton.nav_final]
        assert s0.targets("zzz") == []

    def test_wildcard_matches_everything(self):
        automaton = compile_path(parse_xpath("/*"))
        s0 = automaton.states[automaton.initial]
        assert s0.targets("anything") == [automaton.nav_final]

    def test_predicate_chain_anchored(self):
        automaton = compile_path(parse_xpath("//b[c]/d"))
        (spec,) = automaton.predicate_specs
        # The anchor is the state reached on 'b'.
        s0 = automaton.states[automaton.initial]
        (b_state_id,) = s0.targets("b")
        b_state = automaton.states[b_state_id]
        assert b_state.anchors == [spec]
        assert automaton.states[spec.final].is_final
        assert automaton.states[spec.final].comparison is None

    def test_comparison_on_pred_final(self):
        automaton = compile_path(parse_xpath("//a[b = 3]"))
        (spec,) = automaton.predicate_specs
        assert spec.comparison is not None
        assert automaton.states[spec.final].comparison == spec.comparison

    def test_self_predicate_start_is_final(self):
        automaton = compile_path(parse_xpath("//a[. = 5]"))
        (spec,) = automaton.predicate_specs
        assert spec.start == spec.final

    def test_remaining_labels_nav(self):
        automaton = compile_path(parse_xpath("/a/b/c"))
        s0 = automaton.states[automaton.initial]
        assert s0.remaining_labels == {"a", "b", "c"}
        (s1,) = s0.targets("a")
        assert automaton.states[s1].remaining_labels == {"b", "c"}
        assert automaton.states[automaton.nav_final].remaining_labels == frozenset()

    def test_remaining_labels_include_future_predicates(self):
        automaton = compile_path(parse_xpath("/a/b[x]/c"))
        s0 = automaton.states[automaton.initial]
        assert s0.remaining_labels == {"a", "b", "c", "x"}
        (s1,) = s0.targets("a")
        # From 'a', the predicate on 'b' is still ahead.
        assert automaton.states[s1].remaining_labels == {"b", "c", "x"}

    def test_remaining_labels_ignore_wildcards(self):
        automaton = compile_path(parse_xpath("//*/b"))
        s0 = automaton.states[automaton.initial]
        assert s0.remaining_labels == {"b"}

    def test_describe_smoke(self):
        automaton = compile_path(parse_xpath("//a[b]/c"))
        text = automaton.describe()
        assert "FINAL" in text and "anchors" in text

    def test_nested_predicate_specs(self):
        automaton = compile_path(parse_xpath("//a[b[c]]"))
        assert len(automaton.predicate_specs) == 2
