"""Tests for the engine layer: plans, pipeline, SecureStation."""

import pytest

from repro import (
    AccessRule,
    Policy,
    authorized_view,
    compile_policy,
    reference_authorized_view,
)
from repro.accesscontrol.evaluator import StreamingEvaluator
from repro.engine import (
    DocumentPipeline,
    PipelineError,
    QueryPlan,
    SecureStation,
    StationError,
    compile_query,
    policy_digest,
)
from repro.xmlkit.events import events_to_tree
from repro.xmlkit.parser import parse_document
from repro.xpath import nfa
from repro.xpath import parser as xparser

DOC = (
    "<folder><admin><name>ann</name><ssn>123</ssn></admin>"
    "<acts><act><doctor>ann</doctor><result>ok</result></act>"
    "<act><doctor>bob</doctor><result>bad</result></act></acts></folder>"
)

DOC2 = "<folder><admin><name>zoe</name></admin><notes>private</notes></folder>"


def make_docs():
    return parse_document(DOC), parse_document(DOC2)


def secretary():
    return Policy(
        [AccessRule("+", "//admin"), AccessRule("-", "//ssn")], subject="sec"
    )


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------
class TestPolicyPlan:
    def test_plan_matches_policy_path(self):
        tree, _ = make_docs()
        policy = secretary()
        plan = compile_policy(policy)
        assert authorized_view(tree, plan) == authorized_view(tree, policy)

    def test_plan_is_reused_without_recompilation(self):
        tree, tree2 = make_docs()
        plan = compile_policy(secretary())
        compiles = nfa.compile_calls()
        parses = xparser.parse_calls()
        for document in (tree, tree2, tree, tree2):
            authorized_view(document, plan)
        assert nfa.compile_calls() == compiles
        assert xparser.parse_calls() == parses

    def test_plan_accepts_rule_pairs(self):
        tree, _ = make_docs()
        plan = compile_policy([("+", "//admin"), ("-", "//ssn")])
        reference = reference_authorized_view(
            tree, Policy([AccessRule("+", "//admin"), AccessRule("-", "//ssn")])
        )
        assert authorized_view(tree, plan) == reference

    def test_compile_policy_passthrough(self):
        plan = compile_policy(secretary())
        assert compile_policy(plan) is plan

    def test_digest_stability(self):
        assert policy_digest(secretary()) == policy_digest(secretary())
        other = Policy([AccessRule("+", "//admin")], subject="sec")
        assert policy_digest(secretary()) != policy_digest(other)
        resubjected = Policy(secretary().rules, subject="other")
        assert policy_digest(secretary()) != policy_digest(resubjected)

    def test_digest_resists_field_collisions(self):
        # Crafted rule text must not collapse two different rule lists
        # onto one digest (the plan cache would serve the wrong rules).
        split = Policy(
            [AccessRule("+", "//a", name="x"), AccessRule("+", "//b", name="y")],
            subject="s",
        )
        joined = Policy(
            [AccessRule("+", "//a", name="x|+|//b|y")], subject="s"
        )
        assert policy_digest(split) != policy_digest(joined)

    def test_query_memo_is_bounded(self):
        plan = compile_policy(secretary())
        for index in range(plan.QUERY_CACHE_SIZE + 20):
            plan.query_plan("//admin[name = u%d]" % index)
        assert plan.cached_queries() == plan.QUERY_CACHE_SIZE
        # Most-recent entries survive the LRU.
        last = "//admin[name = u%d]" % (plan.QUERY_CACHE_SIZE + 19)
        assert plan.query_plan(last) is plan.query_plan(last)

    def test_label_sets(self):
        plan = compile_policy(secretary())
        assert frozenset(["admin"]) in plan.label_sets
        assert "ssn" in plan.required_labels()

    def test_query_plan_memoized(self):
        tree, _ = make_docs()
        plan = compile_policy(secretary())
        first = plan.query_plan("//admin[name]")
        again = plan.query_plan("//admin[name]")
        assert first is again
        assert isinstance(first, QueryPlan)
        assert plan.cached_queries() == 1
        view = StreamingEvaluator(plan, query="//admin[name]").run_events(
            list(tree.iter_events()), with_index=True
        )
        reference = reference_authorized_view(
            tree, secretary(), query="//admin[name]"
        )
        assert view == reference

    def test_compile_query_binds_user(self):
        query = compile_query("//act[doctor = USER]", subject="ann")
        assert "ann" in str(query.path)


# ----------------------------------------------------------------------
# Pipeline
# ----------------------------------------------------------------------
class TestDocumentPipeline:
    def test_end_to_end_matches_reference(self):
        plan = compile_policy(secretary())
        pipeline = DocumentPipeline.end_to_end(plan, serialize=True)
        ctx = pipeline.run(source=DOC)
        reference = reference_authorized_view(parse_document(DOC), secretary())
        assert ctx.view == reference
        assert ctx.serialized.startswith("<folder>")
        assert set(ctx.stage_seconds) == {
            "parse", "encode", "encrypt", "stream-decrypt", "evaluate",
            "serialize",
        }

    def test_publisher_then_consumer_reusable(self):
        plan = compile_policy(secretary())
        prepared = DocumentPipeline.publisher().run(source=DOC).prepared
        consumer = DocumentPipeline.consumer(plan)
        first = consumer.run(prepared=prepared)
        second = consumer.run(prepared=prepared)
        assert first.view == second.view
        assert first.meter is not second.meter  # fresh context per run

    def test_breakdown_and_meter_populated(self):
        plan = compile_policy(secretary())
        ctx = DocumentPipeline.end_to_end(plan).run(source=DOC)
        assert ctx.breakdown.total > 0
        assert ctx.meter.bytes_transferred > 0
        assert ctx.meter.bytes_delivered > 0

    def test_integrity_audit_ok(self):
        plan = compile_policy(secretary())
        pipeline = DocumentPipeline.publisher(scheme="ECB-MHT") + (
            DocumentPipeline.consumer(plan, integrity_audit=True)
        )
        ctx = pipeline.run(source=DOC)
        assert ctx.integrity_report["ok"] is True
        assert ctx.integrity_report["verifies"] is True
        assert ctx.integrity_report["bytes_checked"] > 0

    def test_integrity_audit_detects_tampering(self):
        plan = compile_policy(secretary())
        prepared = DocumentPipeline.publisher(scheme="ECB-MHT").run(source=DOC).prepared
        stored = bytearray(prepared.secure.stored)
        stored[len(stored) // 2] ^= 0xFF
        prepared.secure.stored = bytes(stored)
        ctx = DocumentPipeline(
            [stage for stage in DocumentPipeline.consumer(
                plan, integrity_audit=True
            ).stages if stage.name == "integrity-check"]
        ).run(prepared=prepared)
        assert ctx.integrity_report["ok"] is False

    def test_missing_input_raises(self):
        plan = compile_policy(secretary())
        with pytest.raises(PipelineError):
            DocumentPipeline.consumer(plan).run(source=DOC)  # no prepared


# ----------------------------------------------------------------------
# SecureStation
# ----------------------------------------------------------------------
class TestSecureStation:
    def subjects(self):
        return {
            "sec": secretary(),
            "ann": Policy(
                [AccessRule("+", "//act[doctor = USER]")], subject="ann"
            ),
            "aud": Policy(
                [AccessRule("+", "//acts"), AccessRule("-", "//result")],
                subject="aud",
            ),
        }

    def build_station(self, **kwargs):
        station = SecureStation(**kwargs)
        station.publish("folder", DOC)
        for subject, policy in self.subjects().items():
            station.grant("folder", policy, subject=subject)
        return station

    def test_evaluate_matches_reference(self):
        station = self.build_station()
        tree = parse_document(DOC)
        for subject, policy in self.subjects().items():
            result = station.evaluate("folder", subject)
            assert result.events == reference_authorized_view(tree, policy), subject
            assert result.seconds > 0

    def test_evaluate_many_three_subjects_match_reference(self):
        station = self.build_station()
        tree = parse_document(DOC)
        batch = station.evaluate_many("folder", ["sec", "ann", "aud"])
        assert len(batch) == 3
        for subject, policy in self.subjects().items():
            assert batch[subject].events == reference_authorized_view(
                tree, policy
            ), subject
        # The single pass decrypts the store exactly once.
        assert batch.shared_meter.bytes_decrypted > 0
        for _subject, result in batch:
            assert result.meter.bytes_decrypted == 0
        assert batch.seconds > 0

    def test_evaluate_many_rejects_duplicate_subjects(self):
        station = self.build_station()
        with pytest.raises(ValueError):
            station.evaluate_many("folder", ["sec", "sec"])

    def test_evaluate_many_surfaces_per_subject_failures(self):
        from repro.engine import SubjectFailure

        station = self.build_station()
        tree = parse_document(DOC)
        batch = station.evaluate_many("folder", ["sec", "stranger", "aud"])
        assert len(batch) == 3
        # The bad subject becomes a structured failure ...
        failure = batch["stranger"]
        assert isinstance(failure, SubjectFailure)
        assert failure.kind == "no-grant"
        assert "stranger" in failure.message
        assert failure.as_dict()["subject"] == "stranger"
        assert list(batch.failures) == ["stranger"]
        assert station.stats.batch_failures == 1
        # ... while the healthy subjects are still served correctly.
        assert list(batch.ok) == ["sec", "aud"]
        for subject in ("sec", "aud"):
            assert batch[subject].events == reference_authorized_view(
                tree, self.subjects()[subject]
            ), subject
        assert batch.seconds > 0  # failures do not break cost accounting

    def test_evaluate_many_all_failures_still_returns(self):
        station = self.build_station()
        batch = station.evaluate_many("folder", ["ghost1", "ghost2"])
        assert len(batch.failures) == 2
        assert not batch.ok
        assert batch.seconds > 0  # the shared decode pass still ran

    def test_evaluate_many_unknown_document_still_raises(self):
        station = self.build_station()
        with pytest.raises(StationError):
            station.evaluate_many("nope", ["sec"])

    def test_plan_cache_hits(self):
        station = self.build_station()
        station.evaluate("folder", "sec")
        compiles = nfa.compile_calls()
        station.evaluate("folder", "sec")
        station.evaluate("folder", "sec")
        assert nfa.compile_calls() == compiles
        assert station.stats.plan_hits >= 2
        assert station.stats.plan_misses >= 1

    def test_plan_cache_lru_eviction(self):
        station = self.build_station(plan_cache_size=2)
        station.evaluate("folder", "sec")
        station.evaluate("folder", "ann")
        station.evaluate("folder", "aud")  # evicts sec
        assert station.cached_plans() == 2
        assert station.stats.plan_evictions == 1

    def test_sessions_and_sealed_views(self):
        station = self.build_station()
        session = station.connect("sec")
        other = station.connect("sec")
        assert session.session_key != other.session_key
        blob = session.sealed_view("folder")
        payload = session.open(blob).decode("utf-8")
        assert payload.startswith("<folder>")
        with pytest.raises(ValueError):
            other.open(blob)  # wrong session key

    def test_unknown_document_and_grant(self):
        station = self.build_station()
        with pytest.raises(StationError):
            station.evaluate("nope", "sec")
        with pytest.raises(StationError):
            station.evaluate("folder", "stranger")
        station.revoke("folder", "sec")
        with pytest.raises(StationError):
            station.evaluate("folder", "sec")

    def test_queries_through_station(self):
        station = self.build_station()
        tree = parse_document(DOC)
        result = station.evaluate("folder", "aud", query="//act[doctor]")
        reference = reference_authorized_view(
            tree, self.subjects()["aud"], query="//act[doctor]"
        )
        assert result.events == reference

    def test_brute_force_station_agrees(self):
        station = self.build_station(use_skip_index=False)
        tree = parse_document(DOC)
        batch = station.evaluate_many("folder", ["sec", "ann", "aud"])
        for subject, policy in self.subjects().items():
            assert batch[subject].events == reference_authorized_view(
                tree, policy
            ), subject

    def test_view_roundtrips_to_tree(self):
        station = self.build_station()
        result = station.evaluate("folder", "sec")
        tree = events_to_tree(result.events)
        assert tree.tag == "folder"
