"""Unit tests for three-valued conditions and predicate instances."""

from hypothesis import given, settings, strategies as st

from repro.accesscontrol.conditions import (
    ALWAYS,
    FALSE,
    NEVER,
    TRUE,
    UNKNOWN,
    AndCondition,
    ConstCondition,
    OrCondition,
    PredicateInstance,
    RuleInstance,
    and_condition,
    or_condition,
)
from repro.accesscontrol.model import AccessRule


def instance(depth=1):
    return PredicateInstance("R", 0, depth)


class TestPredicateInstance:
    def test_initially_unknown(self):
        assert instance().state() == UNKNOWN

    def test_satisfied_is_true(self):
        inst = instance()
        inst.mark_satisfied()
        assert inst.state() == TRUE
        assert inst.settled_true()

    def test_closed_without_witness_is_false(self):
        inst = instance()
        inst.close_window()
        assert inst.state() == FALSE

    def test_satisfaction_survives_window_close(self):
        inst = instance()
        inst.mark_satisfied()
        inst.close_window()
        assert inst.state() == TRUE

    def test_conditional_witness_unknown(self):
        inst = instance()
        sub = instance()
        inst.add_witness(sub)
        assert inst.state() == UNKNOWN
        inst.close_window()
        # Window closed but a witness is still undecided.
        assert inst.state() == UNKNOWN
        sub.mark_satisfied()
        assert inst.state() == TRUE

    def test_conditional_witness_false(self):
        inst = instance()
        sub = instance()
        inst.add_witness(sub)
        inst.close_window()
        sub.close_window()
        assert inst.state() == FALSE

    def test_true_witness_satisfies_immediately(self):
        inst = instance()
        inst.add_witness(ALWAYS)
        assert inst.settled_true()

    def test_false_witness_ignored(self):
        inst = instance()
        inst.add_witness(NEVER)
        inst.close_window()
        assert inst.state() == FALSE

    def test_any_of_many_witnesses(self):
        inst = instance()
        subs = [instance() for _ in range(3)]
        for sub in subs:
            inst.add_witness(sub)
        subs[2].mark_satisfied()
        assert inst.state() == TRUE


class TestCombinators:
    def test_and_truth_table(self):
        unknown = instance()
        assert AndCondition([ALWAYS, ALWAYS]).state() == TRUE
        assert AndCondition([ALWAYS, NEVER]).state() == FALSE
        assert AndCondition([ALWAYS, unknown]).state() == UNKNOWN
        assert AndCondition([NEVER, unknown]).state() == FALSE
        assert AndCondition([]).state() == TRUE

    def test_or_truth_table(self):
        unknown = instance()
        assert OrCondition([NEVER, NEVER]).state() == FALSE
        assert OrCondition([NEVER, ALWAYS]).state() == TRUE
        assert OrCondition([NEVER, unknown]).state() == UNKNOWN
        assert OrCondition([ALWAYS, unknown]).state() == TRUE
        assert OrCondition([]).state() == FALSE

    def test_and_condition_collapses_constants(self):
        assert and_condition([ALWAYS, ALWAYS]) is ALWAYS
        assert and_condition([ALWAYS, NEVER]) is NEVER
        unknown = instance()
        assert and_condition([ALWAYS, unknown]) is unknown

    def test_or_condition_collapses_constants(self):
        assert or_condition([NEVER]) is NEVER
        assert or_condition([NEVER, ALWAYS]) is ALWAYS
        unknown = instance()
        assert or_condition([unknown, NEVER]) is unknown

    def test_nested_composition(self):
        a, b = instance(), instance()
        cond = and_condition([or_condition([a, b]), ALWAYS])
        assert cond.state() == UNKNOWN
        a.mark_satisfied()
        assert cond.state() == TRUE

    @given(st.lists(st.sampled_from([TRUE, FALSE, UNKNOWN]), max_size=6))
    @settings(max_examples=80, deadline=None)
    def test_property_kleene_semantics(self, states):
        parts = [ConstCondition(s) for s in states]
        and_state = AndCondition(parts).state()
        or_state = OrCondition(parts).state()
        if FALSE in states:
            assert and_state == FALSE
        elif UNKNOWN in states:
            assert and_state == UNKNOWN
        else:
            assert and_state == TRUE
        if TRUE in states:
            assert or_state == TRUE
        elif UNKNOWN in states:
            assert or_state == UNKNOWN
        else:
            assert or_state == FALSE


class TestRuleInstance:
    def test_no_predicates_is_active(self):
        rule = AccessRule("+", "//a")
        assert RuleInstance(rule, (), 1).state() == TRUE

    def test_all_predicates_must_hold(self):
        rule = AccessRule("+", "//a[b][c]")
        p1, p2 = instance(), instance()
        inst = RuleInstance(rule, (p1, p2), 1)
        assert inst.state() == UNKNOWN
        p1.mark_satisfied()
        assert inst.state() == UNKNOWN
        p2.mark_satisfied()
        assert inst.state() == TRUE

    def test_one_failed_predicate_kills_instance(self):
        rule = AccessRule("-", "//a[b]")
        p1 = instance()
        inst = RuleInstance(rule, (p1,), 1)
        p1.close_window()
        assert inst.state() == FALSE
