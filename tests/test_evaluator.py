"""Semantic tests of the streaming evaluator on hand-crafted cases.

Every test also checks agreement with the DOM reference oracle, so these
double as pinned specifications of the access-control model.
"""


from repro import (
    AccessRule,
    Policy,
    authorized_view,
    make_policy,
    reference_authorized_view,
)
from repro.accesscontrol.evaluator import StreamingEvaluator
from repro.metrics import Meter
from repro.xmlkit import parse_document, serialize_events


def view_text(xml, rules, subject="", query=None, with_index=True, dummy=None):
    """Streaming authorized view as compact XML text ('' when empty)."""
    doc = parse_document(xml)
    policy = Policy([AccessRule(s, o) for s, o in rules], subject=subject,
                    dummy_tag=dummy)
    events = authorized_view(doc, policy, query=query, with_index=with_index)
    reference = reference_authorized_view(doc, policy, query=query)
    assert events == reference, (
        "streaming/reference divergence:\n  streaming=%s\n  reference=%s"
        % (serialize_events(events), serialize_events(reference))
    )
    return serialize_events(events)


class TestClosedPolicy:
    def test_no_rules_denies_everything(self):
        assert view_text("<a><b>x</b></a>", []) == ""

    def test_negative_only_denies(self):
        assert view_text("<a><b>x</b></a>", [("-", "//b")]) == ""


class TestBasicRules:
    def test_positive_rule_grants_subtree(self):
        assert view_text("<a><b>x<c>y</c></b><d>z</d></a>", [("+", "//b")]) == (
            "<a><b>x<c>y</c></b></a>"
        )

    def test_structural_rule_keeps_path(self):
        assert view_text("<a><b><c>x</c></b></a>", [("+", "//c")]) == (
            "<a><b><c>x</c></b></a>"
        )

    def test_structural_rule_drops_path_text(self):
        # 'b' is only on the path: its own text must not leak.
        assert view_text("<a><b>secret<c>x</c></b></a>", [("+", "//c")]) == (
            "<a><b><c>x</c></b></a>"
        )

    def test_dummy_tag_renaming(self):
        assert view_text(
            "<a><b><c>x</c></b></a>", [("+", "//c")], dummy="_"
        ) == "<_><_><c>x</c></_></_>"

    def test_child_vs_descendant(self):
        xml = "<a><b><a><b>deep</b></a></b></a>"
        assert view_text(xml, [("+", "/a/b")]) == xml
        assert view_text(xml, [("+", "/b")]) == ""

    def test_wildcard_step(self):
        assert view_text("<a><b><c>x</c></b></a>", [("+", "/a/*/c")]) == (
            "<a><b><c>x</c></b></a>"
        )

    def test_root_rule(self):
        xml = "<a><b>x</b></a>"
        assert view_text(xml, [("+", "/a")]) == xml


class TestConflictResolution:
    def test_denial_takes_precedence_same_object(self):
        assert view_text("<a><b>x</b></a>", [("+", "//b"), ("-", "//b")]) == ""

    def test_most_specific_wins_negative_inside_positive(self):
        assert view_text(
            "<a><b>x<c>y</c></b></a>", [("+", "//b"), ("-", "//c")]
        ) == "<a><b>x</b></a>"

    def test_most_specific_wins_positive_inside_negative(self):
        assert view_text(
            "<a><b>x<c>y</c></b></a>", [("-", "//b"), ("+", "//c")]
        ) == "<a><b><c>y</c></b></a>"

    def test_alternating_nesting(self):
        xml = "<a><b><c><b><c>deep</c></b></c></b></a>"
        # deny b, allow c: the innermost decision at each node wins.
        assert view_text(xml, [("-", "//b"), ("+", "//c")]) == (
            "<a><b><c><b><c>deep</c></b></c></b></a>"
        )

    def test_same_level_conflict_on_distinct_rules(self):
        # Both rules select the same node: denial wins.
        assert view_text(
            "<a><b>x</b></a>", [("+", "/a/b"), ("-", "//b")]
        ) == ""

    def test_inherited_deny_vs_no_rule(self):
        assert view_text(
            "<a><b><c>x</c></b></a>", [("+", "/a"), ("-", "//b")]
        ) == "<a/>"


class TestPredicates:
    def test_existence_predicate_true(self):
        assert view_text(
            "<a><b><c/>keep</b></a>", [("+", "//b[c]")]
        ) == "<a><b><c/>keep</b></a>"

    def test_existence_predicate_false(self):
        assert view_text("<a><b>drop</b></a>", [("+", "//b[c]")]) == ""

    def test_comparison_predicate(self):
        xml = "<r><g><v>300</v>hi</g><g><v>100</v>lo</g></r>"
        assert view_text(xml, [("+", "//g[v > 250]")]) == (
            "<r><g><v>300</v>hi</g></r>"
        )

    def test_pending_predicate_after_subtree(self):
        # The predicate witness (d=4) arrives *after* the granted c.
        xml = "<a><c>keep</c><d>4</d></a>"
        assert view_text(xml, [("+", "/a[d = 4]/c")]) == "<a><c>keep</c></a>"

    def test_pending_predicate_resolves_false(self):
        xml = "<a><c>drop</c><d>5</d></a>"
        assert view_text(xml, [("+", "/a[d = 4]/c")]) == ""

    def test_multiple_instances_of_predicate(self):
        # First d does not match, a later one does: existential.
        xml = "<a><c>keep</c><d>9</d><d>4</d></a>"
        assert view_text(xml, [("+", "/a[d = 4]/c")]) == "<a><c>keep</c></a>"

    def test_rule_instances_at_different_depths(self):
        # //b[c]/d — the paper's running example (Fig. 3): two nested b's,
        # only some instances have a c witness.
        xml = "<a><b><d>d1</d><c/></b><b><d>d2</d><c/><b><d>d3</d><c/></b></b></a>"
        assert view_text(xml, [("+", "//b[c]/d")]) == (
            "<a><b><d>d1</d></b><b><d>d2</d><b><d>d3</d></b></b></a>"
        )

    def test_instance_separation_no_cross_witness(self):
        # Inner b has no c child: its d must not borrow the outer witness.
        xml = "<a><b><c/><b><d>x</d></b></b></a>"
        assert view_text(xml, [("+", "//b[c]/d")]) == ""

    def test_descendant_predicate_path(self):
        xml = "<a><b><x><y>3</y></x>keep</b><b>drop</b></a>"
        assert view_text(xml, [("+", "//b[//y = 3]")]) == (
            "<a><b><x><y>3</y></x>keep</b></a>"
        )

    def test_predicate_on_user(self):
        xml = "<f><act><who>alice</who><d>1</d></act><act><who>bob</who><d>2</d></act></f>"
        assert view_text(
            xml, [("+", "//act[who = USER]")], subject="alice"
        ) == "<f><act><who>alice</who><d>1</d></act></f>"

    def test_not_equal_user(self):
        xml = "<f><act><who>alice</who><det>x</det></act></f>"
        assert view_text(
            xml, [("+", "//act"), ("-", "//act[who != USER]/det")], subject="alice"
        ) == "<f><act><who>alice</who><det>x</det></act></f>"

    def test_negative_pending_rule(self):
        # The negative rule's predicate resolves after the subtree.
        xml = "<a><b><c>x</c><flag>1</flag></b></a>"
        assert view_text(
            xml, [("+", "//b"), ("-", "//b[flag = 1]/c")]
        ) == "<a><b><flag>1</flag></b></a>"

    def test_negative_pending_rule_false(self):
        xml = "<a><b><c>x</c><flag>0</flag></b></a>"
        assert view_text(
            xml, [("+", "//b"), ("-", "//b[flag = 1]/c")]
        ) == "<a><b><c>x</c><flag>0</flag></b></a>"

    def test_nested_predicates(self):
        xml = "<r><a><b><c/></b>keep</a><a><b/>drop</a></r>"
        assert view_text(xml, [("+", "//a[b[c]]")]) == (
            "<r><a><b><c/></b>keep</a></r>"
        )

    def test_self_comparison(self):
        xml = "<r><m>3</m><m>4</m></r>"
        assert view_text(xml, [("+", "//m[. = 3]")]) == "<r><m>3</m></r>"

    def test_multi_predicate_conjunction(self):
        xml = "<r><p><x/><y/>keep</p><p><x/>drop</p></r>"
        assert view_text(xml, [("+", "//p[x][y]")]) == (
            "<r><p><x/><y/>keep</p></r>"
        )

    def test_predicate_two_steps_deep(self):
        xml = "<r><f><p><t>G3</t></p><lab>v</lab></f><f><p><t>G2</t></p><lab>w</lab></f></r>"
        assert view_text(xml, [("+", "//f[p/t = G3]/lab")]) == (
            "<r><f><lab>v</lab></f></r>"
        )


class TestQueries:
    def test_query_selects_subset_of_view(self):
        xml = "<r><a><v>1</v></a><b><v>2</v></b></r>"
        assert view_text(xml, [("+", "/r")], query="//a") == (
            "<r><a><v>1</v></a></r>"
        )

    def test_query_on_denied_data_returns_nothing(self):
        xml = "<r><a><v>1</v></a></r>"
        assert view_text(xml, [("-", "//a"), ("+", "//b")], query="//a") == ""

    def test_query_with_predicate(self):
        xml = "<r><f><age>30</age>x</f><f><age>10</age>y</f></r>"
        assert view_text(xml, [("+", "/r")], query="//f[age > 25]") == (
            "<r><f><age>30</age>x</f></r>"
        )

    def test_query_predicate_needs_authorized_witness(self):
        # age is denied: the query predicate cannot use it as a witness.
        xml = "<r><f><age>30</age><v>x</v></f></r>"
        assert view_text(
            xml, [("+", "/r"), ("-", "//age")], query="//f[age > 25]"
        ) == ""

    def test_query_structural_path(self):
        xml = "<r><mid><leaf>x</leaf></mid></r>"
        assert view_text(xml, [("+", "/r")], query="//leaf") == (
            "<r><mid><leaf>x</leaf></mid></r>"
        )


class TestStreamingMachinery:
    def test_brute_force_equals_indexed(self):
        xml = "<r><a><b>x</b></a><c><d>y</d></c></r>"
        rules = [("+", "//b"), ("-", "//d")]
        assert view_text(xml, rules, with_index=False) == view_text(
            xml, rules, with_index=True
        )

    def test_skipping_statistics(self):
        doc = parse_document(
            "<r>" + "".join("<x><y>%d</y></x>" % i for i in range(20)) + "<z>t</z></r>"
        )
        meter = Meter()
        policy = make_policy([("+", "//z")])
        evaluator = StreamingEvaluator(policy, meter=meter)
        events = evaluator.run_events(list(doc.iter_events()), with_index=True)
        assert serialize_events(events) == "<r><z>t</z></r>"
        assert meter.skipped_subtrees > 0
        # With skipping, far fewer events than the full document.
        assert meter.events < 20 * 4

    def test_drain_ready_streams_prefix(self):
        doc = parse_document("<r><a>1</a><b>2</b><c>3</c></r>")
        policy = make_policy([("+", "/r")])
        evaluator = StreamingEvaluator(policy)
        navigator_events = list(doc.iter_events())
        from repro.accesscontrol.navigation import SimpleEventNavigator

        navigator = SimpleEventNavigator(navigator_events)
        evaluator._reset(navigator)
        drained = []
        while True:
            item = navigator.next()
            if item is None:
                break
            kind, value, meta = item
            if kind == 0:
                evaluator._on_open(value, meta)
            elif kind == 1:
                evaluator._on_text(value)
            else:
                evaluator._on_close()
            drained.extend(evaluator.result.drain_ready())
        drained.extend(evaluator.result.finalize())
        assert serialize_events(drained) == "<r><a>1</a><b>2</b><c>3</c></r>"

    def test_deep_recursion_document(self):
        depth = 200
        xml = "<n>" * depth + "x" + "</n>" * depth
        assert view_text(xml, [("+", "//n")]) == xml

    def test_evaluator_reusable_across_runs(self):
        doc = parse_document("<a><b>x</b></a>")
        policy = make_policy([("+", "//b")])
        evaluator = StreamingEvaluator(policy)
        first = evaluator.run_events(list(doc.iter_events()))
        second = evaluator.run_events(list(doc.iter_events()))
        assert first == second


class TestPaperExample:
    """The abstract document and rules of the paper's Figure 7."""

    XML = (
        "<a>"
        "<b><m/><o/><p/></b>"
        "<c>"
        "<e><m>3</m><t/><p/></e>"
        "<f><m/><p/></f>"
        "<g/>"
        "<h><m/><k>2</k></h>"
        "<i>3</i>"
        "</c>"
        "<d>4</d>"
        "</a>"
    )

    RULES = [
        ("+", "/a[d = 4]/c"),
        ("-", "//c/e[m = 3]"),
        ("+", "//c[//i = 3]//f"),
        ("-", "//h[k = 2]"),
    ]

    def test_figure7_view(self):
        # R grants c (pending until d=4 at the end); S denies e (m=3);
        # T re-grants f below c (i=3 witness); U denies h (k=2).
        result = view_text(self.XML, self.RULES)
        assert "<e>" not in result
        assert "<h>" not in result
        assert "<f>" in result
        assert "<g/>" in result  # granted via R on c
        assert result.startswith("<a><c>")
