"""Live document updates with version-bound integrity (the station's
update path) plus station thread-safety regressions.

The headline properties under test:

* an update that dirties k of N chunks re-encrypts <= k + O(1) chunks,
  never the whole store (best case), and cascades to a full
  re-encryption only in the paper's worst case;
* replaying any pre-update chunk record into the updated store raises
  ``IntegrityError`` (cross-version replay detection — the bugfix);
* in-flight readers finish against the pre-update snapshot
  (copy-on-write), never a mix of versions;
* concurrent connects mint unique session ids/keys and the plan LRU
  survives concurrent hammering (the station lock);
* a subject failing mid-evaluation in ``evaluate_many`` keeps its
  partial meter out of every served total.
"""

import threading

import pytest

from repro.accesscontrol.model import AccessRule, Policy
from repro.crypto.chunks import ChunkLayout
from repro.crypto.integrity import IntegrityError, make_scheme
from repro.crypto.modes import versioned_position
from repro.engine import SecureStation, StationError
from repro.metrics import Meter
from repro.skipindex.updates import UpdateError, UpdateOp
from repro.xmlkit.parser import parse_document
from repro.xmlkit.serializer import serialize_events

#: Fixed-width records so a same-length text edit keeps every other
#: byte of the encoding in place (the paper's best case).
DOC = (
    "<db>"
    + "".join(
        "<rec><id>%04d</id><val>value%04d</val></rec>" % (i, i)
        for i in range(200)
    )
    + "</db>"
)

#: Small chunks so the document spans many of them.
LAYOUT = ChunkLayout(chunk_size=256, fragment_size=64)


def build_station(scheme="ECB-MHT", **kwargs):
    station = SecureStation(**kwargs)
    station.publish("db", DOC, scheme=scheme, layout=LAYOUT)
    station.grant("db", Policy([AccessRule("+", "//db")], subject="alice"))
    return station


def view_text(station, document="db", subject="alice"):
    return serialize_events(station.evaluate(document, subject).events)


# ----------------------------------------------------------------------
# UpdateOp (the serializable edit unit)
# ----------------------------------------------------------------------
class TestUpdateOp:
    def test_dict_round_trip_all_kinds(self):
        ops = [
            UpdateOp.set_text([1, 2], "new text"),
            UpdateOp.rename([0], "newtag"),
            UpdateOp.delete([3]),
            UpdateOp.insert([0], parse_document("<x><y>z</y></x>"), position=1),
        ]
        for op in ops:
            clone = UpdateOp.from_dict(op.as_dict())
            assert clone.kind == op.kind
            assert clone.path == op.path
            assert clone.text == op.text
            assert clone.tag == op.tag
            assert clone.position == op.position
            if op.node is not None:
                assert clone.node == op.node

    def test_apply_matches_pure_functions(self):
        tree = parse_document("<a><b>x</b><c/></a>")
        updated = UpdateOp.set_text([0], "y").apply(tree)
        assert updated.find("b").text() == "y"
        assert tree.find("b").text() == "x"  # input untouched

    def test_validation(self):
        with pytest.raises(UpdateError):
            UpdateOp("no_such_kind", [])
        with pytest.raises(UpdateError):
            UpdateOp("update_text", [0])  # text missing
        with pytest.raises(UpdateError):
            UpdateOp("rename_element", [0])  # tag missing
        with pytest.raises(UpdateError):
            UpdateOp("insert_element", [])  # node missing
        with pytest.raises(UpdateError):
            UpdateOp.from_dict({"kind": "update_text", "path": ["a"], "text": "x"})
        with pytest.raises(UpdateError):
            UpdateOp.from_dict({"kind": "insert_element", "path": [], "xml": "<<<"})


# ----------------------------------------------------------------------
# The update path
# ----------------------------------------------------------------------
class TestStationUpdate:
    def test_local_edit_reencrypts_k_plus_constant_chunks(self):
        station = build_station()
        result = station.update("db", UpdateOp.set_text([50, 1], "CHANGED50"))
        assert result.version == 1
        assert result.total_chunks >= 10
        # The dirty set is exactly the chunks the diff touched; the
        # acceptance bound: k dirtied chunks cost <= k + O(1) rewrites.
        k = result.impact.chunks_to_reencrypt
        assert result.chunks_reencrypted <= k + 1
        # And a local same-length edit stays local.
        assert result.chunks_reencrypted <= 2
        assert not result.full_reencrypt
        assert result.reencrypted_bytes < result.total_chunks * LAYOUT.stored_chunk_size()

    def test_update_changes_the_served_view(self):
        station = build_station()
        assert "value0050" in view_text(station)
        station.update("db", UpdateOp.set_text([50, 1], "CHANGED50"))
        after = view_text(station)
        assert "CHANGED50" in after
        assert "value0050" not in after
        # Every other record is intact.
        assert "value0049" in after and "value0051" in after

    def test_version_counter_and_stats(self):
        station = build_station()
        assert station.document_version("db") == 0
        for n in range(1, 4):
            result = station.update(
                "db", UpdateOp.set_text([n, 1], "EDITED%03d" % n)
            )
            assert result.version == n
            assert station.document_version("db") == n
        assert station.stats.updates == 3
        assert station.stats.chunks_reencrypted >= 3

    def test_worst_case_dictionary_growth_cascades_to_full(self):
        station = build_station()
        result = station.update("db", UpdateOp.rename([3], "brand_new_tag"))
        assert result.impact.dictionary_grew
        assert result.full_reencrypt
        assert result.chunks_reencrypted == result.total_chunks
        assert "brand_new_tag" in view_text(station)

    def test_insert_and_delete_round_trip(self):
        station = build_station()
        station.update(
            "db",
            UpdateOp.insert([], parse_document("<rec><id>9999</id><val>tail</val></rec>")),
        )
        assert "9999" in view_text(station)
        station.update("db", UpdateOp.delete([200]))
        assert "9999" not in view_text(station)
        assert station.document_version("db") == 2

    def test_update_unknown_document_raises(self):
        station = build_station()
        with pytest.raises(StationError):
            station.update("nope", UpdateOp.set_text([0], "x"))

    def test_update_bad_path_raises_and_leaves_document_intact(self):
        station = build_station()
        before = view_text(station)
        with pytest.raises(UpdateError):
            station.update("db", UpdateOp.set_text([999, 0], "x"))
        assert station.document_version("db") == 0
        assert view_text(station) == before

    def test_plan_cache_invalidated_for_granted_subjects(self):
        station = build_station()
        station.evaluate("db", "alice")
        assert station.cached_plans() == 1
        station.update("db", UpdateOp.set_text([0, 1], "EDIT0000"))
        assert station.cached_plans() == 0
        # The next request recompiles and re-caches.
        station.evaluate("db", "alice")
        assert station.cached_plans() == 1

    def test_listeners_notified_with_new_version(self):
        station = build_station()
        seen = []
        station.subscribe(lambda doc, version: seen.append((doc, version)))
        station.update("db", UpdateOp.set_text([1, 1], "EDIT0001"))
        station.update("db", UpdateOp.set_text([2, 1], "EDIT0002"))
        assert seen == [("db", 1), ("db", 2)]
        station.unsubscribe(station._listeners[0])
        station.update("db", UpdateOp.set_text([3, 1], "EDIT0003"))
        assert len(seen) == 2


# ----------------------------------------------------------------------
# Version-bound integrity: the replay attack
# ----------------------------------------------------------------------
class TestVersionSplicing:
    @pytest.mark.parametrize("scheme", ["CBC-SHA", "CBC-SHAC", "ECB-MHT"])
    def test_replaying_pre_update_chunk_raises(self, scheme):
        station = build_station(scheme=scheme)
        old_prepared = station.document("db")
        old_stored = bytes(old_prepared.secure.stored)
        result = station.update("db", UpdateOp.set_text([50, 1], "CHANGED50"))
        assert result.dirty_chunks, "the edit must dirty at least one chunk"
        new_prepared = station.document("db")
        record = LAYOUT.stored_chunk_size()
        for chunk in sorted(result.dirty_chunks):
            # Splice the captured pre-update record over the rewritten
            # one — byte-identical to what the terminal stored before
            # the update, so only the version binding can reject it.
            start = chunk * record
            saved = bytes(new_prepared.secure.stored[start : start + record])
            assert saved != old_stored[start : start + record]
            new_prepared.secure.stored[start : start + record] = old_stored[
                start : start + record
            ]
            with pytest.raises(IntegrityError):
                station.evaluate("db", "alice")
            new_prepared.secure.stored[start : start + record] = saved
        # Restored store verifies again.
        station.evaluate("db", "alice")

    def test_republished_store_rejects_previous_generation_chunks(self):
        """Re-publishing continues the version chain: a chunk record
        captured from ANY earlier generation (including the original
        version-0 store) must not verify in the new one, even though
        the deterministic document key is unchanged."""
        station = build_station()
        gen0_stored = bytes(station.document("db").secure.stored)
        station.update("db", UpdateOp.set_text([50, 1], "CHANGED50"))
        # Republish corrected content under the same id (same key).
        station.publish("db", DOC, layout=LAYOUT)
        assert station.document_version("db") == 2
        new_prepared = station.document("db")
        assert all(v == 2 for v in new_prepared.secure.chunk_versions)
        record = LAYOUT.stored_chunk_size()
        # Splice a generation-0 record (same plaintext region!) back in.
        new_prepared.secure.stored[0:record] = gen0_stored[0:record]
        with pytest.raises(IntegrityError):
            station.evaluate("db", "alice")

    def test_republish_notifies_listeners(self):
        station = build_station()
        seen = []
        station.subscribe(lambda doc, version: seen.append((doc, version)))
        station.publish("db", DOC, layout=LAYOUT)  # re-publish
        assert seen == [("db", 1)]
        station.publish("other", "<a/>")  # first publish: no broadcast
        assert seen == [("db", 1)]
        # Updates keep counting from the republished version.
        station.update("db", UpdateOp.set_text([1, 1], "EDIT0001"))
        assert seen == [("db", 1), ("db", 2)]

    def test_whole_store_rollback_detected(self):
        """Replacing the entire stored document with its pre-update
        form (a rollback, not a splice) is also caught: the trusted
        version vector says the dirty chunks are at version 1."""
        station = build_station()
        old_stored = bytes(station.document("db").secure.stored)
        station.update("db", UpdateOp.set_text([50, 1], "CHANGED50"))
        new_prepared = station.document("db")
        new_prepared.secure.stored[:] = old_stored
        with pytest.raises(IntegrityError):
            station.evaluate("db", "alice")

    def test_versioned_position_is_identity_at_zero(self):
        assert versioned_position(12345, 0) == 12345
        assert versioned_position(12345, 3) != 12345
        with pytest.raises(ValueError):
            versioned_position(0, -1)

    def test_scheme_reencrypt_shares_clean_records(self):
        scheme = make_scheme("ECB-MHT", key=b"k" * 16, layout=LAYOUT)
        data = bytes(range(256)) * 8  # 8 chunks
        doc = scheme.protect(data)
        new = bytearray(data)
        new[600:608] = b"ZZZZZZZZ"
        updated, count = scheme.reencrypt(doc, bytes(new), {2}, 1)
        assert count == 1
        record = LAYOUT.stored_chunk_size()
        for chunk in range(8):
            same = (
                bytes(updated.stored[chunk * record : (chunk + 1) * record])
                == bytes(doc.stored[chunk * record : (chunk + 1) * record])
            )
            assert same == (chunk != 2)
        assert updated.chunk_versions == [0, 0, 1, 0, 0, 0, 0, 0]
        assert scheme.reader(updated, Meter()).read(0, len(new)) == bytes(new)


# ----------------------------------------------------------------------
# Snapshot isolation (copy-on-write)
# ----------------------------------------------------------------------
class TestSnapshotIsolation:
    def test_in_flight_reader_finishes_on_pre_update_snapshot(self):
        station = build_station()
        prepared = station.document("db")
        size = prepared.secure.plaintext_size
        reader = prepared.scheme.reader(prepared.secure, Meter())
        first_half = reader.read(0, size // 2)

        station.update("db", UpdateOp.set_text([50, 1], "CHANGED50"))

        # The reader keeps reading the old snapshot — and the combined
        # bytes are exactly the pre-update encoding, never a mix.
        second_half = reader.read(size // 2, size - size // 2)
        assert first_half + second_half == prepared.encoded.data

        # A fresh evaluation sees the post-update document.
        assert "CHANGED50" in view_text(station)

    def test_update_swaps_the_prepared_document(self):
        station = build_station()
        before = station.document("db")
        station.update("db", UpdateOp.set_text([10, 1], "EDITED010"))
        after = station.document("db")
        assert after is not before
        assert before.encoded.data != after.encoded.data
        # The old store was never mutated in place.
        reader = before.scheme.reader(before.secure, Meter())
        assert reader.read(0, before.secure.plaintext_size) == before.encoded.data

    def test_concurrent_readers_during_updates_never_see_a_mix(self):
        station = build_station()
        errors = []
        stop = threading.Event()

        def read_loop():
            while not stop.is_set():
                try:
                    text = view_text(station)
                except IntegrityError as exc:  # must never happen
                    errors.append(repr(exc))
                    return
                # A view is either fully pre- or fully post-edit for
                # each record: "CHANGEDnn" and "valuennnn" for the same
                # nn never coexist.
                for n in range(200):
                    if "CHANGED%02d" % n in text and "value%04d" % n in text:
                        errors.append("mixed view at record %d" % n)
                        return

        threads = [threading.Thread(target=read_loop) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for n in range(20, 30):
                station.update(
                    "db", UpdateOp.set_text([n, 1], "CHANGED%02d" % n)
                )
        finally:
            stop.set()
            for thread in threads:
                thread.join(10)
        assert not errors, errors


# ----------------------------------------------------------------------
# Station thread-safety (the satellite bugfixes)
# ----------------------------------------------------------------------
class TestStationThreadSafety:
    def test_concurrent_connects_mint_unique_sessions_and_keys(self):
        station = SecureStation()
        per_thread = 50
        threads = 16
        sessions = [[] for _ in range(threads)]
        barrier = threading.Barrier(threads)

        def connect_loop(bucket):
            barrier.wait()
            for _ in range(per_thread):
                bucket.append(station.connect("subject"))

        workers = [
            threading.Thread(target=connect_loop, args=(sessions[i],))
            for i in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(30)
        ids = [s.session_id for bucket in sessions for s in bucket]
        keys = {s.session_key for bucket in sessions for s in bucket}
        assert len(ids) == threads * per_thread
        # No duplicate session ids => no duplicate derived link keys.
        assert len(set(ids)) == len(ids)
        assert len(keys) == len(ids)
        assert station.stats.sessions_opened == len(ids)

    def test_concurrent_plan_cache_hammering_stays_consistent(self):
        station = SecureStation(plan_cache_size=4)
        policies = [
            Policy([AccessRule("+", "//t%d" % n)], subject="s%d" % (n % 6))
            for n in range(24)
        ]
        errors = []
        barrier = threading.Barrier(8)

        def hammer(seed):
            barrier.wait()
            try:
                for n in range(120):
                    station.plan_for(policies[(seed * 7 + n) % len(policies)])
            except Exception as exc:  # noqa: BLE001 - the regression
                errors.append(repr(exc))

        workers = [
            threading.Thread(target=hammer, args=(i,)) for i in range(8)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(30)
        assert not errors, errors
        assert station.cached_plans() <= 4
        stats = station.stats
        assert stats.plan_hits + stats.plan_misses == 8 * 120

    def test_concurrent_updates_produce_a_linear_version_chain(self):
        station = build_station()
        barrier = threading.Barrier(4)
        versions = []
        lock = threading.Lock()

        def update_loop(offset):
            barrier.wait()
            for n in range(5):
                result = station.update(
                    "db",
                    UpdateOp.set_text(
                        [offset * 10 + n, 1], "T%d-%d####" % (offset, n)
                    ),
                )
                with lock:
                    versions.append(result.version)

        workers = [
            threading.Thread(target=update_loop, args=(i,)) for i in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(60)
        assert sorted(versions) == list(range(1, 21))
        assert station.document_version("db") == 20
        # The final store is consistent and carries every edit.
        text = view_text(station)
        for offset in range(4):
            for n in range(5):
                assert "T%d-%d####" % (offset, n) in text


# ----------------------------------------------------------------------
# evaluate_many: failed subjects accounted separately
# ----------------------------------------------------------------------
class TestBatchFailureAccounting:
    def build_batch_station(self):
        station = SecureStation()
        station.publish("db", DOC, layout=LAYOUT)
        for subject in ("alice", "boom", "carol"):
            station.grant(
                "db", Policy([AccessRule("+", "//db")], subject=subject)
            )
        return station

    def test_mid_evaluation_failure_keeps_partial_meter_separate(
        self, monkeypatch
    ):
        import repro.engine.station as station_module

        station = self.build_batch_station()
        real_evaluator = station_module.StreamingEvaluator

        class ExplodingEvaluator:
            def __init__(self, plan, **kwargs):
                self._inner = real_evaluator(plan, **kwargs)
                self._meter = kwargs.get("meter")
                self._boom = plan.subject == "boom"

            def run(self, navigator):
                if self._boom:
                    # Simulate work done before the crash: the partial
                    # counts land on this subject's meter.
                    self._meter.events += 1000
                    self._meter.bytes_delivered += 4096
                    raise RuntimeError("predicate exploded mid-stream")
                return self._inner.run(navigator)

        monkeypatch.setattr(
            station_module, "StreamingEvaluator", ExplodingEvaluator
        )
        batch = station.evaluate_many("db", ["alice", "boom", "carol"])

        failures = batch.failures
        assert list(failures) == ["boom"]
        failure = failures["boom"]
        assert failure.kind == "evaluate"
        # The partial work is visible on the failure itself...
        assert failure.meter.events == 1000
        assert failure.meter.bytes_delivered == 4096
        assert batch.failure_meter().events == 1000
        # ...and in none of the served totals.
        for result in batch.ok.values():
            assert result.meter.bytes_delivered != 4096
        served = Meter.merged(
            [batch.shared_meter] + [r.meter for r in batch.ok.values()]
        )
        assert served.events < 1000 * 10  # sanity: no 1000-event spike
        assert station.stats.failed_requests == 1
        assert station.stats.batch_failures == 1
        assert station.stats.requests == 2  # alice + carol only

    def test_no_grant_failure_has_empty_meter(self):
        station = self.build_batch_station()
        batch = station.evaluate_many("db", ["alice", "nobody"])
        failure = batch.failures["nobody"]
        assert failure.kind == "no-grant"
        assert failure.meter.as_dict() == Meter().as_dict()
        assert station.stats.failed_requests == 0  # never started
