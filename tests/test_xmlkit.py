"""Unit tests for the XML substrate (events, parser, DOM, serializer)."""

import pytest

from repro.xmlkit import (
    Node,
    TagDictionary,
    events_to_tree,
    iter_events,
    parse_document,
    serialize,
    serialize_events,
    text_node,
)
from repro.xmlkit.events import (
    CLOSE,
    OPEN,
    TEXT,
    Event,
    StreamError,
    validate_stream,
    with_depth,
)
from repro.xmlkit.parser import XmlSyntaxError, unescape


class TestEvents:
    def test_event_accessors(self):
        event = Event(OPEN, "tag")
        assert event.kind == OPEN
        assert event.value == "tag"
        assert event.is_open and not event.is_close and not event.is_text

    def test_events_are_tuples(self):
        assert Event(TEXT, "x") == (TEXT, "x")
        assert hash(Event(TEXT, "x")) == hash((TEXT, "x"))

    def test_validate_accepts_well_formed(self):
        validate_stream(
            [Event(OPEN, "a"), Event(TEXT, "t"), Event(CLOSE, "a")]
        )

    def test_validate_rejects_mismatched_close(self):
        with pytest.raises(StreamError):
            validate_stream([Event(OPEN, "a"), Event(CLOSE, "b")])

    def test_validate_rejects_unclosed(self):
        with pytest.raises(StreamError):
            validate_stream([Event(OPEN, "a")])

    def test_validate_rejects_multiple_roots(self):
        with pytest.raises(StreamError):
            validate_stream(
                [Event(OPEN, "a"), Event(CLOSE, "a"), Event(OPEN, "b"), Event(CLOSE, "b")]
            )

    def test_validate_rejects_text_outside_root(self):
        with pytest.raises(StreamError):
            validate_stream([Event(TEXT, "boom")])

    def test_validate_rejects_empty(self):
        with pytest.raises(StreamError):
            validate_stream([])

    def test_with_depth_convention(self):
        events = [
            Event(OPEN, "a"),
            Event(OPEN, "b"),
            Event(TEXT, "x"),
            Event(CLOSE, "b"),
            Event(CLOSE, "a"),
        ]
        depths = [depth for _event, depth in with_depth(events)]
        assert depths == [1, 2, 2, 2, 1]


class TestDom:
    def build(self):
        root = Node("a")
        b = root.element("b", "x")
        root.element("c")
        b.element("d", "y")
        return root

    def test_iter_events_round_trip(self):
        root = self.build()
        rebuilt = events_to_tree(root.iter_events())
        assert rebuilt == root

    def test_text_and_find(self):
        root = self.build()
        b = root.find("b")
        assert b is not None
        assert b.text() == "x"
        assert root.find("missing") is None
        assert [c.tag for c in root.element_children()] == ["b", "c"]

    def test_statistics(self):
        root = self.build()
        assert root.count_elements() == 4
        assert root.count_text_nodes() == 2
        assert root.text_size() == 2
        assert root.max_depth() == 3
        assert root.distinct_tags() == {"a", "b", "c", "d"}
        assert 1.0 < root.average_depth() < 3.0

    def test_find_all(self):
        root = Node("r")
        root.element("x", "1")
        root.element("x", "2")
        assert [n.text() for n in root.find_all("x")] == ["1", "2"]

    def test_text_node_helper(self):
        leaf = text_node("t", "v")
        assert leaf.tag == "t" and leaf.text() == "v"

    def test_equality_is_structural(self):
        assert self.build() == self.build()
        other = self.build()
        other.element("extra")
        assert self.build() != other


class TestParser:
    def test_simple_document(self):
        doc = parse_document("<a><b>x</b><c/></a>")
        assert doc.tag == "a"
        assert doc.find("b").text() == "x"
        assert doc.find("c") is not None

    def test_whitespace_between_elements_dropped(self):
        doc = parse_document("<a>\n  <b>x</b>\n</a>")
        assert doc.children == [doc.find("b")]

    def test_mixed_content_preserved(self):
        doc = parse_document("<a>pre<b/>post</a>")
        kinds = [c if isinstance(c, str) else c.tag for c in doc.children]
        assert kinds == ["pre", "b", "post"]

    def test_attributes_become_elements(self):
        doc = parse_document('<a id="7"><b name="n"/></a>')
        assert doc.find("@id").text() == "7"
        assert doc.find("b").find("@name").text() == "n"

    def test_attributes_can_be_ignored(self):
        doc = parse_document('<a id="7"/>', attributes="ignore")
        assert doc.children == []

    def test_entities(self):
        doc = parse_document("<a>&lt;&amp;&gt;&quot;&apos;&#65;&#x42;</a>")
        assert doc.text() == "<&>\"'AB"

    def test_unescape_rejects_unknown_entity(self):
        with pytest.raises(XmlSyntaxError):
            unescape("&nosuch;")

    def test_comments_and_pi_skipped(self):
        doc = parse_document("<?xml version='1.0'?><!-- hi --><a><!--x-->t</a>")
        assert doc.text() == "t"

    def test_cdata(self):
        doc = parse_document("<a><![CDATA[<raw&>]]></a>")
        assert doc.text() == "<raw&>"

    def test_doctype_skipped(self):
        doc = parse_document("<!DOCTYPE a [<!ELEMENT a ANY>]><a>t</a>")
        assert doc.text() == "t"

    def test_mismatched_close_raises(self):
        with pytest.raises(XmlSyntaxError):
            parse_document("<a><b></a></b>")

    def test_unclosed_raises(self):
        with pytest.raises(XmlSyntaxError):
            parse_document("<a><b>")

    def test_multiple_roots_raise(self):
        with pytest.raises(XmlSyntaxError):
            parse_document("<a/><b/>")

    def test_text_outside_root_raises(self):
        with pytest.raises(XmlSyntaxError):
            parse_document("<a/>junk")

    def test_iter_events_streaming(self):
        events = list(iter_events("<a><b>x</b></a>"))
        assert events == [
            Event(OPEN, "a"),
            Event(OPEN, "b"),
            Event(TEXT, "x"),
            Event(CLOSE, "b"),
            Event(CLOSE, "a"),
        ]


class TestSerializer:
    def test_round_trip_compact(self):
        text = "<a><b>x</b><c>y&amp;z</c></a>"
        assert serialize(parse_document(text)) == text

    def test_round_trip_attributes(self):
        text = '<a id="1"><b/></a>'
        doc = parse_document(text)
        assert serialize(doc) == text

    def test_pretty_print_contains_newlines(self):
        doc = parse_document("<a><b>x</b></a>")
        pretty = serialize(doc, indent=2)
        assert "\n" in pretty
        assert parse_document(pretty) == doc

    def test_serialize_events(self):
        doc = parse_document("<a><b>x</b><c/></a>", attributes="ignore")
        text = serialize_events(doc.iter_events())
        assert parse_document(text, attributes="ignore") == doc

    def test_escaping(self):
        doc = Node("a", ["<&>"])
        assert serialize(doc) == "<a>&lt;&amp;&gt;</a>"


class TestTagDictionary:
    def test_codes_are_dense_and_stable(self):
        dictionary = TagDictionary(["a", "b", "a", "c"])
        assert len(dictionary) == 3
        assert dictionary.code("a") == 0
        assert dictionary.code("c") == 2
        assert dictionary.tag(1) == "b"

    def test_from_tree(self):
        doc = parse_document("<a><b/><c><b/></c></a>")
        dictionary = TagDictionary.from_tree(doc)
        assert set(dictionary.tags()) == {"a", "b", "c"}

    def test_membership_and_iteration(self):
        dictionary = TagDictionary(["x", "y"])
        assert "x" in dictionary and "z" not in dictionary
        assert list(dictionary) == ["x", "y"]

    def test_serialized_size(self):
        dictionary = TagDictionary(["ab", "c"])
        assert dictionary.serialized_size() == (1 + 2) + (1 + 1)
