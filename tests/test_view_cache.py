"""The station's version-keyed materialized-view cache.

Covers the tentpole guarantees: repeat requests hit the cache without
changing a byte of the view *or* a microsecond of the simulated cost;
updates invalidate (a stale view is never served and the INVALIDATED
broadcast still fires); the LRU bound holds under churn; and the three
serving strategies — cold, skip-pruned, cache-hit — are byte-identical
across every protection scheme and subject.
"""

import threading

import pytest

from repro.datasets.hospital import (
    GROUPS,
    HospitalConfig,
    doctor_policy,
    generate_hospital,
    researcher_policy,
    secretary_policy,
)
from repro.engine import SecureStation, compile_policy
from repro.skipindex.updates import UpdateOp
from repro.soe.session import SecureSession, prepare_document
from repro.xmlkit.serializer import serialize_events

CONFIG = HospitalConfig(
    folders=2, doctors=3, acts_per_folder=2, labresults_per_folder=1, seed=11
)


def hospital_tree():
    return generate_hospital(CONFIG)


def profiles():
    return [
        secretary_policy(),
        doctor_policy(CONFIG.doctor_names()[0]),
        researcher_policy(GROUPS[:2]),
    ]


def make_station(**kwargs):
    station = SecureStation(**kwargs)
    station.publish("hospital", hospital_tree())
    for policy in profiles():
        station.grant("hospital", policy)
    return station


# ----------------------------------------------------------------------
# Hit/miss behaviour
# ----------------------------------------------------------------------
def test_repeat_request_hits_and_is_identical():
    station = make_station()
    first = station.evaluate("hospital", "secretary")
    assert not first.cache_hit
    assert station.stats.view_misses == 1
    second = station.evaluate("hospital", "secretary")
    assert second.cache_hit
    assert station.stats.view_hits == 1
    assert second.events == first.events
    # The cost model keeps charging the original simulated Table-1
    # costs: a hit reports the exact same simulated seconds and meter.
    assert second.seconds == first.seconds
    assert second.meter.as_dict() == first.meter.as_dict()
    assert second.document_version == first.document_version


def test_distinct_queries_and_subjects_get_distinct_entries():
    station = make_station()
    station.evaluate("hospital", "secretary")
    station.evaluate("hospital", "secretary", query="//Folder")
    station.evaluate("hospital", "researcher")
    assert station.stats.view_misses == 3
    assert station.stats.view_hits == 0
    assert station.cached_views() == 3
    station.evaluate("hospital", "secretary", query="//Folder")
    assert station.stats.view_hits == 1


def test_cache_disabled_always_runs_cold():
    station = make_station(cache_views=False)
    for _ in range(3):
        result = station.evaluate("hospital", "secretary")
        assert not result.cache_hit
    assert station.stats.view_hits == 0
    assert station.stats.view_misses == 0
    assert station.cached_views() == 0


def test_stream_reuses_serialized_payload():
    station = make_station()
    first = station.stream("hospital", "secretary")
    second = station.stream("hospital", "secretary")
    assert second.result.cache_hit
    assert second.payload == first.payload
    # Memoized on the entry: the exact same bytes object is reused.
    assert second.payload is first.payload


# ----------------------------------------------------------------------
# Cold vs pruned vs cached: byte-identical across schemes and subjects
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", ["ECB", "CBC-SHA", "CBC-SHAC", "ECB-MHT"])
def test_cold_pruned_cached_views_identical(scheme):
    tree = hospital_tree()
    prepared = prepare_document(tree, scheme=scheme)
    for policy in profiles():
        plan = compile_policy(policy)
        # The fig-bench path: SecureSession, cold (no pruning, no cache).
        cold = SecureSession(prepared, plan).run()

        pruned_station = SecureStation(cache_views=False, prune=True)
        pruned_station.publish("hospital", prepared)
        pruned = pruned_station.evaluate("hospital", plan)

        cached_station = SecureStation(cache_views=True, prune=True)
        cached_station.publish("hospital", prepared)
        cached_station.evaluate("hospital", plan)  # warm
        hit = cached_station.evaluate("hospital", plan)

        assert hit.cache_hit
        cold_bytes = serialize_events(cold.events).encode("utf-8")
        assert serialize_events(pruned.events).encode("utf-8") == cold_bytes
        assert serialize_events(hit.events).encode("utf-8") == cold_bytes


def test_fig_bench_cold_path_unaffected_by_station_features():
    """The paper-figure benches run SecureSession — enabling the view
    cache and pruning on a station serving the same prepared document
    must not move a single simulated-cost counter on that path."""
    prepared = prepare_document(hospital_tree(), scheme="ECB")
    plan = compile_policy(secretary_policy())
    before = SecureSession(prepared, plan).run()
    station = make_station()  # cache + pruning on, same document content
    station.evaluate("hospital", "secretary")
    station.evaluate("hospital", "secretary")
    after = SecureSession(prepared, plan).run()
    assert after.meter.as_dict() == before.meter.as_dict()
    assert after.seconds == before.seconds
    assert after.meter.pruned_subtrees == 0  # SecureSession never prunes


# ----------------------------------------------------------------------
# Invalidation
# ----------------------------------------------------------------------
def test_update_invalidates_and_still_notifies():
    station = make_station()
    notifications = []
    station.subscribe(lambda doc, version: notifications.append((doc, version)))
    stale = station.evaluate("hospital", "secretary")
    assert station.cached_views() == 1

    station.update("hospital", UpdateOp.delete([0]))
    assert notifications == [("hospital", 1)]
    assert station.cached_views() == 0  # proactively dropped
    assert station.stats.view_invalidations == 1

    fresh = station.evaluate("hospital", "secretary")
    assert not fresh.cache_hit  # the post-update request re-evaluates
    assert fresh.document_version == 1
    assert fresh.events != stale.events  # a folder disappeared
    # And the re-evaluated view is cacheable again under the new version.
    assert station.evaluate("hospital", "secretary").cache_hit


def test_republish_invalidates():
    station = make_station()
    station.evaluate("hospital", "secretary")
    assert station.cached_views() == 1
    station.publish("hospital", hospital_tree())
    for policy in profiles():
        station.grant("hospital", policy)
    assert station.cached_views() == 0
    result = station.evaluate("hospital", "secretary")
    assert not result.cache_hit
    assert result.document_version == 1


def test_stale_version_never_served_even_without_sweep():
    """The version in the key alone keeps stale entries unreachable —
    simulate a racing insert of an old-version entry."""
    station = make_station()
    station.evaluate("hospital", "secretary")
    # Grab the pre-update entry and force it back in after the update
    # (models a slow evaluation finishing after a concurrent update).
    stale_key, stale_entry = next(iter(station._views.items()))
    station.update("hospital", UpdateOp.delete([0]))
    with station._lock:
        station._views[stale_key] = stale_entry
    result = station.evaluate("hospital", "secretary")
    assert not result.cache_hit  # key carries version 0, lookup uses 1
    assert result.document_version == 1


# ----------------------------------------------------------------------
# LRU bound
# ----------------------------------------------------------------------
def test_lru_bound_respected_under_churn():
    station = make_station(view_cache_size=4)
    for index in range(12):
        station.evaluate("hospital", "secretary", query="//Folder[//Age > %d]" % index)
        assert station.cached_views() <= 4
    assert station.cached_views() == 4
    assert station.stats.view_evictions == 8
    # Oldest entries are gone; the most recent four still hit.
    for index in range(8, 12):
        result = station.evaluate(
            "hospital", "secretary", query="//Folder[//Age > %d]" % index
        )
        assert result.cache_hit, index


def test_lru_churn_is_thread_safe():
    station = make_station(view_cache_size=3)
    errors = []

    def worker(offset):
        try:
            for index in range(20):
                station.evaluate(
                    "hospital",
                    "secretary",
                    query="//Folder[//Age > %d]" % ((offset * 20 + index) % 7),
                )
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert station.cached_views() <= 3


# ----------------------------------------------------------------------
# Remote path: trailer flag, STATS counters, wire invalidation
# ----------------------------------------------------------------------
def test_remote_cached_flag_stats_and_invalidation():
    from repro.server.client import RemoteSession
    from repro.server.service import ServerThread, StationServer, hospital_station

    station, subjects = hospital_station(folders=2)
    thread = ServerThread(StationServer(station))
    host, port = thread.start()
    try:
        with RemoteSession(host, port, "secretary", connect_retry=5.0) as session:
            first = session.evaluate("hospital")
            assert not first.cached
            second = session.evaluate("hospital")
            assert second.cached
            assert second.data == first.data
            assert second.seconds == first.seconds  # simulated cost unchanged
            stats = session.stats()
            assert stats["station"]["view_hits"] >= 1
            assert stats["station"]["view_misses"] >= 1
            assert stats["cached_views"] >= 1

            # A remote update must invalidate: INVALIDATED arrives and
            # the next evaluate is a fresh (uncached) view.
            session.update(
                "hospital",
                UpdateOp.set_text([0, 0, 0], "renamed-by-cache-test"),
            )
            third = session.evaluate("hospital")
            assert session.invalidations_seen >= 1
            assert not third.cached
            assert third.trailer["version"] == 1
            assert third.data != first.data
    finally:
        thread.stop()
