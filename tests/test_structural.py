"""The structural pre/post index (repro.skipindex.structural).

Three layers under test, each against its streaming oracle:

* the :class:`IndexedNavigator` must be event- and byte-identical to
  :class:`SkipIndexNavigator` under full walks *and* arbitrary
  skip/capture interleavings — the navigator never decrypts structure,
  so any divergence means the item table disagrees with the encoding;
* :meth:`StructuralIndex.match` must be a superset of the real matches
  of any wildcard-free path (exactly empty only when the path provably
  selects nothing), checked against a brute-force DOM matcher;
* the :class:`SecureStation` serving path: indexed views byte-identical
  to streamed ones, early exits decrypting zero chunks, stale indexes
  falling back, updates refreshing incrementally or by rebuild.
"""

import random

import pytest

from repro import (
    AccessRule,
    Policy,
    PublishOptions,
    StationConfig,
    connect,
    open_station,
)
from repro.crypto.chunks import ChunkLayout
from repro.engine.plans import compile_query, structural_steps
from repro.engine.station import SecureStation
from repro.metrics import Meter
from repro.skipindex.decoder import SkipIndexNavigator
from repro.skipindex.encoder import encode_document
from repro.skipindex.structural import (
    IndexedNavigator,
    StructuralIndex,
    build_structural_index,
    parse_structural_index,
)
from repro.skipindex.updates import UpdateOp, refresh_structural_index
from repro.soe.session import prepare_document
from repro.xmlkit.dom import Node
from repro.xmlkit.parser import parse_document
from repro.xmlkit.serializer import serialize, serialize_events

TAGS = ["a", "b", "c", "d", "e"]
VALUES = ["1", "22", "333", "x"]


def random_tree(rng, max_nodes=40):
    budget = [rng.randint(1, max_nodes)]

    def build(depth):
        node = Node(rng.choice(TAGS))
        while budget[0] > 0 and rng.random() < (0.7 if depth < 4 else 0.25):
            budget[0] -= 1
            if rng.random() < 0.4:
                node.children.append(rng.choice(VALUES))
            else:
                node.children.append(build(depth + 1))
        return node

    return build(1)


def _normalize(item):
    # SubtreeMeta deliberately has no __eq__; compare by value.
    if item is None:
        return None
    kind, payload, meta = item
    if meta is not None:
        meta = (frozenset(meta.desc_tags), meta.size)
    return (kind, payload, meta)


def drain(navigator):
    events = []
    while True:
        item = navigator.next()
        if item is None:
            return events
        events.append(_normalize(item))


def selective_document(records=40):
    """Many bulky siblings plus one rare subtree — the index's win case."""
    root = Node("folder")
    for index in range(records):
        rec = Node("rec")
        name = Node("name")
        name.add("n%d" % index)
        data = Node("data")
        data.add("x" * 300)
        rec.add(name)
        rec.add(data)
        root.add(rec)
    rare = Node("rare")
    val = Node("val")
    val.add("gold")
    rare.add(val)
    root.add(rare)
    return root


FOLDER_POLICY = Policy([AccessRule("+", "//folder")], subject="s")


# ----------------------------------------------------------------------
# Navigator identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(40))
def test_indexed_navigator_full_walk_identity(seed):
    rng = random.Random(seed)
    encoded = encode_document(random_tree(rng))
    index = build_structural_index(encoded)
    baseline = drain(
        SkipIndexNavigator(
            encoded.data,
            dictionary=encoded.dictionary,
            start_offset=encoded.root_offset,
        )
    )
    indexed = drain(IndexedNavigator(encoded.data, index, encoded.dictionary))
    assert indexed == baseline


@pytest.mark.parametrize("seed", range(40, 70))
def test_indexed_navigator_random_skips_identity(seed):
    """Random interleavings of next/skip/capture on both navigators."""
    rng = random.Random(seed)
    encoded = encode_document(random_tree(rng))
    index = build_structural_index(encoded)
    a = SkipIndexNavigator(
        encoded.data,
        dictionary=encoded.dictionary,
        start_offset=encoded.root_offset,
    )
    b = IndexedNavigator(encoded.data, index, encoded.dictionary)
    for _ in range(600):
        roll = rng.random()
        if roll < 0.6 or not a._stack:
            ea, eb = a.next(), b.next()
            assert _normalize(ea) == _normalize(eb)
            if ea is None:
                break
        elif roll < 0.75:
            a.skip_subtree()
            b.skip_subtree()
        elif roll < 0.9:
            fa, fb = a.skip_and_capture(), b.skip_and_capture()
            assert (fa is None) == (fb is None)
            if fa is not None:
                assert list(fa()) == list(fb())
        else:
            fa, fb = a.skip_rest_and_capture(), b.skip_rest_and_capture()
            assert (fa is None) == (fb is None)
            if fa is not None:
                assert list(fa()) == list(fb())


# ----------------------------------------------------------------------
# Blob round-trip and staleness
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(70, 90))
def test_blob_round_trip(seed):
    encoded = encode_document(random_tree(random.Random(seed)))
    index = build_structural_index(encoded)
    restored = parse_structural_index(index.to_bytes())
    assert restored == index
    assert restored.matches_document(encoded)


def test_matches_document_rejects_other_encodings():
    a = encode_document(parse_document("<a><b>1</b></a>"))
    b = encode_document(parse_document("<a><b>1</b><c>2</c></a>"))
    index = build_structural_index(a)
    assert index.matches_document(a)
    assert not index.matches_document(b)


# ----------------------------------------------------------------------
# Matcher vs brute force
# ----------------------------------------------------------------------
def _reference_match(tree, steps):
    """Brute-force structural matcher over the DOM (document order)."""
    order = []

    def walk(node, level, parent):
        pre = len(order)
        order.append((node, parent, level))
        for child in node.children:
            if not isinstance(child, str):
                walk(child, level + 1, pre)

    walk(tree, 0, None)
    current = None
    for position, (axis, tag) in enumerate(steps):
        matched = set()
        for pre, (node, parent, level) in enumerate(order):
            if node.tag != tag:
                continue
            if position == 0:
                if axis == "/" and level != 0:
                    continue
                matched.add(pre)
            elif axis == "/":
                if parent in current:
                    matched.add(pre)
            else:
                ancestor = parent
                while ancestor is not None and ancestor not in current:
                    ancestor = order[ancestor][1]
                if ancestor is not None:
                    matched.add(pre)
        current = matched
        if not current:
            return ()
    return tuple(sorted(current))


def _random_structural_path(rng):
    return "".join(
        ("//" if rng.random() < 0.5 else "/") + rng.choice(TAGS)
        for _ in range(rng.randint(1, 3))
    )


@pytest.mark.parametrize("seed", range(90, 140))
def test_match_equals_brute_force(seed):
    rng = random.Random(seed)
    tree = random_tree(rng)
    encoded = encode_document(tree)
    index = build_structural_index(encoded)
    for _ in range(8):
        path = _random_structural_path(rng)
        steps = structural_steps(compile_query(path).path)
        assert steps is not None, path
        assert index.match(steps, encoded.dictionary) == _reference_match(
            tree, steps
        ), path


def test_structural_steps_eligibility():
    assert structural_steps(compile_query("/a/b").path) == (
        ("/", "a"),
        ("/", "b"),
    )
    assert structural_steps(compile_query("//a//b").path) == (
        ("//", "a"),
        ("//", "b"),
    )
    # Wildcard steps are plan-ineligible.
    assert structural_steps(compile_query("/a/*").path) is None
    assert structural_steps(compile_query("//*//b").path) is None
    # Predicates do not block eligibility (the match is a superset).
    assert structural_steps(compile_query("/a/b[c]").path) is not None


def test_planned_chunks_subset_and_cover():
    tree = selective_document()
    encoded = encode_document(tree)
    index = build_structural_index(encoded)
    layout = ChunkLayout()
    steps = structural_steps(compile_query("//rare/val").path)
    candidates = index.match(steps, encoded.dictionary)
    assert candidates
    planned = index.planned_chunks(candidates, layout)
    total = layout.chunk_count(len(encoded.data))
    assert set(planned) <= set(range(total))
    # The rare subtree sits at the tail of a multi-chunk document: the
    # plan must be a small fraction of the store.
    assert total > 5
    assert len(planned) < total / 2


# ----------------------------------------------------------------------
# Station serving: identity, early exit, staleness, fewer chunks
# ----------------------------------------------------------------------
def _stations(document, **publish_kw):
    streamed = SecureStation(StationConfig(cache_views=False))
    streamed.publish("d", document)
    streamed.grant("d", FOLDER_POLICY)
    indexed = SecureStation(StationConfig(cache_views=False))
    indexed.publish("d", document, PublishOptions(index=True, **publish_kw))
    indexed.grant("d", FOLDER_POLICY)
    return streamed, indexed


def test_station_indexed_identical_and_fewer_chunks():
    streamed, indexed = _stations(serialize(selective_document()))
    a = streamed.evaluate("d", "s", query="/folder/rare/val")
    b = indexed.evaluate("d", "s", query="/folder/rare/val")
    assert not a.indexed and b.indexed
    assert serialize_events(b.events) == serialize_events(a.events)
    assert b.meter.chunks_accessed < a.meter.chunks_accessed
    assert indexed.stats.indexed_requests == 1
    assert indexed.stats.index_planned_chunks < indexed.stats.index_chunks_total


def test_station_early_exit_zero_chunks():
    streamed, indexed = _stations(serialize(selective_document()))
    a = streamed.evaluate("d", "s", query="/folder/nosuch")
    b = indexed.evaluate("d", "s", query="/folder/nosuch")
    assert b.indexed
    assert b.events == list(a.events) == []
    assert b.meter.chunks_accessed == 0
    assert b.meter.bytes_decrypted == 0
    assert indexed.stats.index_early_exits == 1


def test_station_wildcard_query_streams():
    _, indexed = _stations(serialize(selective_document()))
    result = indexed.evaluate("d", "s", query="//rare/*")
    assert not result.indexed
    assert indexed.stats.streamed_requests == 1


def test_station_unindexed_document_streams():
    station = SecureStation(StationConfig(cache_views=False))
    station.publish("d", serialize(selective_document()))
    station.grant("d", FOLDER_POLICY)
    result = station.evaluate("d", "s", query="/folder/rare/val")
    assert not result.indexed
    assert station.stats.indexed_requests == 0


def test_station_stale_index_falls_back():
    """A PreparedDocument whose index describes other bytes must never
    be trusted: the request streams and the staleness counter ticks."""
    prepared = prepare_document(selective_document(), index=True)
    other = encode_document(parse_document("<folder><x>1</x></folder>"))
    prepared.index = build_structural_index(other)
    station = SecureStation(StationConfig(cache_views=False))
    station.publish("d", prepared)
    station.grant("d", FOLDER_POLICY)
    oracle = SecureStation(StationConfig(cache_views=False))
    oracle.publish("d", serialize(selective_document()))
    oracle.grant("d", FOLDER_POLICY)
    result = station.evaluate("d", "s", query="/folder/rare/val")
    reference = oracle.evaluate("d", "s", query="/folder/rare/val")
    assert not result.indexed
    assert station.stats.index_stale == 1
    assert serialize_events(result.events) == serialize_events(reference.events)


def test_station_cached_hit_replays_indexed_flag():
    station = SecureStation(StationConfig(cache_views=True))
    station.publish("d", serialize(selective_document()), PublishOptions(index=True))
    station.grant("d", FOLDER_POLICY)
    miss = station.evaluate("d", "s", query="/folder/rare/val")
    hit = station.evaluate("d", "s", query="/folder/rare/val")
    assert miss.indexed and hit.indexed and hit.cache_hit
    assert hit.events == miss.events


# ----------------------------------------------------------------------
# Updates: incremental reuse vs rebuild
# ----------------------------------------------------------------------
def test_update_same_length_text_is_incremental():
    streamed, indexed = _stations(serialize(selective_document()))
    op = UpdateOp.set_text([40, 0], "goat")  # "gold" -> same length
    streamed.update("d", op)
    indexed.update("d", op)
    assert indexed.stats.index_incrementals == 1
    assert indexed.stats.index_rebuilds == 0
    a = streamed.evaluate("d", "s", query="/folder/rare/val")
    b = indexed.evaluate("d", "s", query="/folder/rare/val")
    assert b.indexed
    assert serialize_events(b.events) == serialize_events(a.events)


def test_update_structural_change_rebuilds():
    streamed, indexed = _stations(serialize(selective_document()))
    child = Node("zz")
    child.add("fresh")
    op = UpdateOp.insert([40], child)
    streamed.update("d", op)
    indexed.update("d", op)
    assert indexed.stats.index_rebuilds == 1
    a = streamed.evaluate("d", "s", query="/folder/rare/zz")
    b = indexed.evaluate("d", "s", query="/folder/rare/zz")
    assert b.indexed
    assert serialize_events(b.events) == serialize_events(a.events)


def test_refresh_modes_unit():
    from repro.skipindex.updates import impact_between, reencode_after
    from repro.skipindex.decoder import decode_document

    encoded = encode_document(selective_document())
    index = build_structural_index(encoded)
    tree = decode_document(encoded)
    # Same-length text edit: reuse.
    from repro.skipindex.updates import update_text

    new_tree = update_text(tree, [40, 0], "goat")
    new_encoded, grew = reencode_after(encoded, new_tree)
    impact = impact_between(
        encoded, new_encoded, tree, new_tree, dictionary_grew=grew
    )
    refreshed, mode = refresh_structural_index(index, new_encoded, impact)
    assert mode == "incremental" and refreshed is index
    # Different-length text edit: rebuild (offsets after the edit shift).
    longer = update_text(tree, [40, 0], "a-much-longer-value")
    long_encoded, grew = reencode_after(encoded, longer)
    impact = impact_between(
        encoded, long_encoded, tree, longer, dictionary_grew=grew
    )
    refreshed, mode = refresh_structural_index(index, long_encoded, impact)
    assert mode == "rebuild" and refreshed is not index
    assert refreshed == build_structural_index(long_encoded)


# ----------------------------------------------------------------------
# Persistence: LogStore blob, restart, compaction
# ----------------------------------------------------------------------
def test_logstore_persists_index_across_restart(tmp_path):
    from repro.store import LogStore

    source = serialize(selective_document())
    with SecureStation(StationConfig(store=LogStore(str(tmp_path)))) as station:
        station.publish("d", source, PublishOptions(index=True))
        station.grant("d", FOLDER_POLICY)
        first = station.evaluate("d", "s", query="/folder/rare/val")
        assert first.indexed
        original = station.document("d").index.to_bytes()
    with SecureStation(StationConfig(store=LogStore(str(tmp_path)))) as restarted:
        restarted.grant("d", FOLDER_POLICY)
        prepared = restarted.document("d")
        assert prepared.index is not None
        assert prepared.index.to_bytes() == original
        again = restarted.evaluate("d", "s", query="/folder/rare/val")
        assert again.indexed
        assert serialize_events(again.events) == serialize_events(first.events)


def test_logstore_index_survives_update_and_compaction(tmp_path):
    from repro.store import LogStore

    directory = str(tmp_path)
    with SecureStation(StationConfig(store=LogStore(directory))) as station:
        station.publish(
            "d", serialize(selective_document()), PublishOptions(index=True)
        )
        station.grant("d", FOLDER_POLICY)
        station.update("d", UpdateOp.set_text([40, 0], "goat"))
        station.store.compact()
        live = station.evaluate("d", "s", query="/folder/rare/val")
        assert live.indexed
    with SecureStation(StationConfig(store=LogStore(directory))) as restarted:
        restarted.grant("d", FOLDER_POLICY)
        assert restarted.document("d").index is not None
        result = restarted.evaluate("d", "s", query="/folder/rare/val")
        assert result.indexed
        assert serialize_events(result.events) == serialize_events(live.events)


def test_cluster_repair_ships_index():
    """Publishing a pager-backed PreparedDocument onto another station
    (the repair path) carries the index along."""
    prepared = prepare_document(selective_document(), index=True)
    source = SecureStation()
    source.publish("d", prepared)
    target = SecureStation()
    target.publish("d", source.document("d"), version_floor=3)
    target.grant("d", FOLDER_POLICY)
    result = target.evaluate("d", "s", query="/folder/rare/val")
    assert result.indexed


# ----------------------------------------------------------------------
# The unified construction API
# ----------------------------------------------------------------------
class TestUnifiedAPI:
    def test_station_config_is_frozen_and_comparable(self):
        config = StationConfig(context="sw-lan", prune=False)
        with pytest.raises(Exception):
            config.prune = True
        assert config == StationConfig(context="sw-lan", prune=False)
        assert config.replace(prune=True).prune is True
        assert "master_secret" not in repr(config)

    def test_open_station_overrides_win(self):
        station = open_station(StationConfig(prune=False), prune=True)
        assert station.prune is True
        assert station.config.prune is True

    def test_legacy_positional_master_secret(self):
        station = SecureStation(b"legacy-secret", context="sw-lan")
        assert station._secret == b"legacy-secret"
        assert station.platform is not None
        with pytest.raises(TypeError):
            SecureStation(b"one", master_secret=b"two")

    def test_legacy_publish_scheme_string(self):
        station = SecureStation()
        station.publish("d", "<a>1</a>", "ECB")
        assert station.document("d").scheme.name == "ECB"
        with pytest.raises(TypeError):
            station.publish("e", "<a>1</a>", "ECB", scheme="CBC-SHAC")

    def test_publish_options_value(self):
        options = PublishOptions(scheme="CBC-SHAC", index=True)
        assert options.replace(index=False) == PublishOptions(scheme="CBC-SHAC")
        station = SecureStation()
        station.publish("d", "<a>1</a>", options)
        prepared = station.document("d")
        assert prepared.scheme.name == "CBC-SHAC"
        assert prepared.index is not None

    def test_connect_parses_addresses(self):
        with pytest.raises(ValueError):
            connect("no-port-here", "s")
        with pytest.raises((ConnectionError, OSError)):
            # Unroutable in test environments: parsing succeeded, the
            # dial failed — which is all this asserts.
            connect("127.0.0.1:1", "s", connect_retry=0.0)
