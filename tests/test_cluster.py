"""Cluster layer end-to-end: gateway routing, replication, failover.

Everything here crosses real TCP sockets: N backend
:class:`StationServer` threads plus a :class:`ClusterGateway` thread,
bootstrapped by :func:`hospital_cluster`.  The headline properties:

* a view fetched through the gateway is **byte-identical** to one from
  a direct single-station server (the acceptance criterion);
* repeat queries stay on the same backend, so the PR 4 view cache
  keeps hitting (routing composes with the cache);
* an UPDATE lands on the primary and is replicated to every holder in
  version lockstep, with exactly one INVALIDATED fanned out per
  version to the gateway's clients;
* killing the primary mid-session fails reads over to a replica with
  correct version trailers, and repair re-publishes the document onto
  the new preference node with a version floor so the PR 3 chain
  continues;
* a REBALANCE join re-places documents deterministically (the ring is
  pure), and FORWARD is refused outside an authenticated gateway link.
"""

import socket
import time

import pytest

from repro.cluster.ring import HashRing
from repro.cluster.topology import hospital_cluster
from repro.engine.station import SecureStation
from repro.accesscontrol.model import AccessRule, Policy
from repro.server.client import RemoteError, RemoteSession
from repro.server.protocol import (
    ERROR,
    FORWARD,
    RESULT,
    FrameDecoder,
    json_frame,
)
from repro.server.service import ServerThread, StationServer, hospital_station
from repro.skipindex.updates import UpdateOp
from repro.xmlkit.parser import parse_document

FOLDERS = 2
SUBJECTS = ("secretary", "doctor0", "researcher")


def make_cluster(backends=3, replicas=2, documents=2):
    return hospital_cluster(
        backends=backends,
        replicas=replicas,
        documents=documents,
        folders=FOLDERS,
    )


def wait_until(predicate, timeout=10.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ----------------------------------------------------------------------
# Serving through the gateway
# ----------------------------------------------------------------------
class TestGatewayServing:
    def test_views_byte_identical_to_direct_station(self):
        cluster, docs, subjects = make_cluster(documents=1)
        try:
            host, port = cluster.gateway_address
            station, _subjects = hospital_station(folders=FOLDERS)
            direct_server = StationServer(station)
            with ServerThread(direct_server) as (dhost, dport):
                for subject in SUBJECTS:
                    with RemoteSession(host, port, subject) as via_gateway:
                        clustered = via_gateway.evaluate("hospital")
                    with RemoteSession(dhost, dport, subject) as direct:
                        local = direct.evaluate("hospital")
                    assert clustered.data == local.data, subject
                    assert clustered.trailer["failover"] == 0
        finally:
            cluster.stop()

    def test_routing_composes_with_view_cache_and_stats(self):
        cluster, docs, subjects = make_cluster()
        try:
            host, port = cluster.gateway_address
            with RemoteSession(host, port, "secretary") as session:
                first = session.evaluate("hospital")
                second = session.evaluate("hospital")
                assert not first.cached
                assert second.cached  # same backend -> view-cache hit
                assert second.data == first.data
                topology = session.topology()
                primary = topology["documents"]["hospital"]["primary"]
                assert first.trailer["backend"] == primary
                assert second.trailer["backend"] == primary
                # Placement respects R and the (deterministic) ring.
                for doc in docs:
                    entry = topology["documents"][doc]
                    assert len(entry["nodes"]) == 2
                    assert entry["primary"] in entry["nodes"]
                # Aggregated stats: per-backend counters + summed
                # station counters from every live backend.
                stats = session.stats()
                assert stats["role"] == "gateway"
                assert set(stats["per_backend"]) == set(cluster.nodes)
                assert stats["station"]["view_hits"] >= 1
                assert stats["server"]["forwards"] >= 2
                served = sum(
                    entry["requests"]
                    for entry in stats["per_backend"].values()
                )
                assert served == 2
                # Health probes answer on both tiers.
                pong = session.ping()
                assert pong["ok"] and pong["role"] == "gateway"
                assert pong["documents"]["hospital"] == 0
            node = next(iter(cluster.nodes.values()))
            with RemoteSession(*node.address, "secretary") as backend:
                pong = backend.ping()
                assert pong["ok"] and pong["role"] == "station"
        finally:
            cluster.stop()

    def test_structured_errors_pass_through(self):
        cluster, docs, subjects = make_cluster(documents=1)
        try:
            host, port = cluster.gateway_address
            with RemoteSession(host, port, "secretary") as session:
                with pytest.raises(RemoteError) as excinfo:
                    session.evaluate("no-such-document")
                assert excinfo.value.code in ("unknown-document", "unavailable")
            with RemoteSession(host, port, "nobody") as session:
                with pytest.raises(RemoteError) as excinfo:
                    session.evaluate("hospital")
                assert excinfo.value.code == "no-grant"
        finally:
            cluster.stop()


# ----------------------------------------------------------------------
# Updates: primary routing, replication, invalidation fan-out
# ----------------------------------------------------------------------
class TestClusterUpdates:
    def test_update_replicates_in_version_lockstep(self):
        cluster, docs, subjects = make_cluster(documents=1)
        try:
            host, port = cluster.gateway_address
            watcher = RemoteSession(host, port, "doctor0", cache_views=True)
            before = watcher.evaluate("hospital")
            with RemoteSession(host, port, "secretary") as session:
                op = UpdateOp(
                    "insert_element",
                    [],
                    node=parse_document(
                        "<Folder><Admin><SSN>replicated</SSN></Admin></Folder>"
                    ),
                )
                trailer = session.update("hospital", op)
            assert trailer["version"] == 1
            assert trailer["replicas"] == 2  # primary + one replica
            with cluster.control_session() as control:
                topology = control.topology()
            entry = topology["documents"]["hospital"]
            assert trailer["backend"] == entry["primary"]
            # Every holder applied the same op: version lockstep.
            for name in entry["nodes"]:
                station = cluster.nodes[name].station
                assert station.document_version("hospital") == 1
            # Exactly one INVALIDATED reached the watcher, and its
            # cached view was refreshed transparently.
            assert wait_until(lambda: watcher.poll_notifications() > 0)
            assert watcher.document_versions["hospital"] == 1
            after = watcher.evaluate("hospital")
            assert after.trailer["version"] == 1
            assert before.trailer["version"] == 0
            watcher.close()
            # A subject whose policy admits the new folder sees it, at
            # the new version, through the gateway.
            with RemoteSession(host, port, "secretary") as reader:
                fresh = reader.evaluate("hospital")
            assert fresh.trailer["version"] == 1
            assert b"replicated" in fresh.data
        finally:
            cluster.stop()

    def test_update_requires_grant_through_gateway(self):
        cluster, docs, subjects = make_cluster(documents=1)
        try:
            host, port = cluster.gateway_address
            with RemoteSession(host, port, "nobody") as session:
                op = UpdateOp(
                    "insert_element",
                    [],
                    node=parse_document("<Folder>nope</Folder>"),
                )
                with pytest.raises(RemoteError) as excinfo:
                    session.update("hospital", op)
                assert excinfo.value.code == "no-grant"
        finally:
            cluster.stop()


# ----------------------------------------------------------------------
# Failover: kill the primary mid-session
# ----------------------------------------------------------------------
class TestFailover:
    def test_kill_primary_mid_session_completes_on_replica(self):
        cluster, docs, subjects = make_cluster(documents=1)
        try:
            host, port = cluster.gateway_address
            with RemoteSession(host, port, "secretary") as session:
                before = session.evaluate("hospital")
                assert before.trailer["failover"] == 0
                primary = cluster.primary_of("hospital")
                cluster.kill_backend(primary)
                # Same session, same in-flight client: the gateway must
                # absorb the dead primary and serve from a replica.
                after = session.evaluate("hospital")
                assert after.data == before.data
                assert after.trailer["failover"] == 1
                assert after.trailer["backend"] != primary
                assert after.trailer["version"] == before.trailer["version"]

                # Repair: the document is re-published onto the new
                # preference node, back to full replication.
                def repaired():
                    entry = session.topology()["documents"]["hospital"]
                    return (
                        len(entry["nodes"]) == 2
                        and primary not in entry["nodes"]
                    )

                assert wait_until(repaired)
        finally:
            cluster.stop()

    def test_version_chain_continues_after_failover_republish(self):
        cluster, docs, subjects = make_cluster(documents=1)
        try:
            host, port = cluster.gateway_address
            with RemoteSession(host, port, "secretary") as session:
                # Advance the chain to version 2 before the failure.
                for index in range(2):
                    op = UpdateOp(
                        "insert_element",
                        [],
                        node=parse_document("<Folder>v%d</Folder>" % index),
                    )
                    trailer = session.update("hospital", op)
                assert trailer["version"] == 2
                primary = cluster.primary_of("hospital")
                cluster.kill_backend(primary)
                survived = session.evaluate("hospital")
                assert survived.trailer["version"] == 2

                def repaired():
                    entry = session.topology()["documents"]["hospital"]
                    return len(entry["nodes"]) == 2

                assert wait_until(repaired)
                entry = session.topology()["documents"]["hospital"]
                replacement = [
                    name
                    for name in entry["nodes"]
                    if name != survived.trailer["backend"]
                ]
                # The re-published copy continued the chain: its
                # version (and encryption floor) is >= the version
                # clients already saw — never a restart from 0.
                for name in entry["nodes"]:
                    station = cluster.nodes[name].station
                    assert station.document_version("hospital") >= 2
                    assert station.document("hospital").secure.version >= 2
                assert replacement, entry
                # And the next update keeps counting from there, in
                # lockstep across old and new holders.
                op = UpdateOp(
                    "insert_element",
                    [],
                    node=parse_document("<Folder>post-failover</Folder>"),
                )
                trailer = session.update("hospital", op)
                assert trailer["version"] == 3
                assert trailer["replicas"] == 2
                for name in entry["nodes"]:
                    station = cluster.nodes[name].station
                    assert station.document_version("hospital") == 3
        finally:
            cluster.stop()

    def test_reads_survive_down_to_last_replica(self):
        cluster, docs, subjects = make_cluster(documents=1)
        try:
            host, port = cluster.gateway_address
            with RemoteSession(host, port, "secretary") as session:
                before = session.evaluate("hospital")
                # Kill every backend except one *holder* — including
                # the primary — leaving a single live replica.
                keep = session.topology()["documents"]["hospital"][
                    "nodes"
                ][-1]
                for node in list(cluster.live_nodes()):
                    if node.name != keep:
                        cluster.kill_backend(node.name)
                after = session.evaluate("hospital")
                assert after.data == before.data
                assert after.trailer["backend"] == keep
        finally:
            cluster.stop()


# ----------------------------------------------------------------------
# Rebalance: a backend joins (or leaves) at runtime
# ----------------------------------------------------------------------
class TestRebalance:
    def test_join_replaces_deterministically(self):
        cluster, docs, subjects = make_cluster(backends=2, replicas=2)
        try:
            host, port = cluster.gateway_address
            with RemoteSession(host, port, "secretary") as session:
                baseline = {doc: session.evaluate(doc).data for doc in docs}
            node = cluster.join_backend()  # node2, via a REBALANCE frame
            # Placement after the join is a pure function of the ring.
            expected = HashRing(["node0", "node1", node.name], vnodes=64)
            with cluster.control_session() as control:
                topology = control.topology()
            assert topology["backends"][node.name]["alive"]
            for doc in docs:
                want = expected.preference(doc, 2)
                entry = topology["documents"][doc]
                assert entry["primary"] == want[0]
                # Every preference node holds a copy (existing holders
                # keep theirs — the gateway never unpublishes).
                assert set(want) <= set(entry["nodes"])
                # A re-placed copy is a real, queryable replica.
                if node.name in want:
                    assert (
                        node.station.document_version(doc) >= 0
                    )
            # Views are unchanged by the re-placement.
            with RemoteSession(host, port, "secretary") as session:
                for doc in docs:
                    assert session.evaluate(doc).data == baseline[doc]
        finally:
            cluster.stop()

    def test_join_duplicate_and_leave_unknown_are_errors(self):
        cluster, docs, subjects = make_cluster(backends=2)
        try:
            with cluster.control_session() as control:
                with pytest.raises(RemoteError) as excinfo:
                    control.rebalance(
                        "join", "node0", cluster.nodes["node0"].address
                    )
                assert excinfo.value.code == "rebalance"
                with pytest.raises(RemoteError) as excinfo:
                    control.rebalance("leave", "ghost")
                assert excinfo.value.code == "rebalance"
        finally:
            cluster.stop()

    def test_graceful_leave_drains_to_survivors(self):
        cluster, docs, subjects = make_cluster(backends=3, replicas=2)
        try:
            host, port = cluster.gateway_address
            with RemoteSession(host, port, "secretary") as session:
                baseline = {doc: session.evaluate(doc).data for doc in docs}
            victim = cluster.primary_of(docs[0])
            with cluster.control_session() as control:
                reply = control.rebalance("leave", victim)
                assert reply["action"] == "leave"
                topology = control.topology()
            for doc in docs:
                entry = topology["documents"][doc]
                assert victim not in entry["nodes"]
                assert len(entry["nodes"]) == 2
            with RemoteSession(host, port, "secretary") as session:
                for doc in docs:
                    assert session.evaluate(doc).data == baseline[doc]
        finally:
            cluster.stop()


# ----------------------------------------------------------------------
# FORWARD authentication + version floor + reconnect
# ----------------------------------------------------------------------
class TestForwardSecurity:
    def _forward_as(self, address, hello):
        """HELLO with ``hello``, then a FORWARD; returns the reply frame."""
        decoder = FrameDecoder()
        with socket.create_connection(address, timeout=10) as sock:
            sock.sendall(json_frame(1, 0, hello))  # HELLO
            frames = []
            while not frames:
                frames.extend(decoder.feed(sock.recv(65536)))
            welcome = frames.pop(0)
            sock.sendall(
                json_frame(
                    FORWARD,
                    0,
                    {
                        "kind": "query",
                        "subject": "secretary",
                        "document": "hospital",
                    },
                )
            )
            while not any(f.type in (RESULT, ERROR) for f in frames):
                data = sock.recv(65536)
                if not data:
                    return welcome, None
                frames.extend(decoder.feed(data))
            return welcome, [
                f for f in frames if f.type in (RESULT, ERROR)
            ][0]

    def test_forward_refused_without_gateway_role(self):
        station, subjects = hospital_station(folders=FOLDERS)
        server = StationServer(station, allow_forward=True)
        with ServerThread(server) as address:
            welcome, reply = self._forward_as(
                address, {"subject": "someone"}
            )
            assert not welcome.json()["gateway"]
            assert reply is not None and reply.type == ERROR
            assert reply.json()["code"] == "protocol"

    def test_forward_refused_when_server_disallows(self):
        station, subjects = hospital_station(folders=FOLDERS)
        server = StationServer(station)  # allow_forward off (default)
        with ServerThread(server) as address:
            welcome, reply = self._forward_as(
                address, {"subject": "gw", "gateway": True}
            )
            # The role is silently not granted, so FORWARD is refused.
            assert not welcome.json()["gateway"]
            assert reply is not None and reply.type == ERROR

    def test_forward_serves_with_gateway_role(self):
        station, subjects = hospital_station(folders=FOLDERS)
        server = StationServer(station, allow_forward=True)
        with ServerThread(server) as address:
            welcome, reply = self._forward_as(
                address, {"subject": "gw", "gateway": True}
            )
            assert welcome.json()["gateway"]
            assert reply is not None and reply.type == RESULT
            trailer = reply.json()
            assert trailer["subject"] == "secretary"
            assert trailer["version"] == 0


class TestVersionFloor:
    def test_publish_fresh_document_at_floor(self):
        station = SecureStation()
        station.publish(
            "doc", parse_document("<a><b>x</b></a>"), version_floor=5
        )
        assert station.document_version("doc") == 5
        # The encryption version (bound into every chunk MAC) starts
        # at the floor too: pre-floor records can never verify here.
        assert station.document("doc").secure.version == 5
        station.grant(
            "doc", Policy([AccessRule("+", "//a")], subject="alice")
        )
        op = UpdateOp("update_text", [0], text="y")
        result = station.update("doc", op)
        assert result.version == 6

    def test_floor_applies_to_prepared_republication(self):
        station = SecureStation()
        prepared = station.publish("doc", parse_document("<a>1</a>"))
        other = SecureStation()
        other.publish("doc", prepared, version_floor=3)
        assert other.document_version("doc") == 3

    def test_floor_zero_is_the_old_behavior(self):
        station = SecureStation()
        station.publish("doc", parse_document("<a>1</a>"))
        assert station.document_version("doc") == 0


class TestAutoReconnect:
    def test_transparent_reconnect_preserves_api(self):
        station, subjects = hospital_station(folders=FOLDERS)
        thread = ServerThread(StationServer(station))
        host, port = thread.start()
        session = RemoteSession(
            host, port, "secretary", auto_reconnect=True
        )
        try:
            before = session.evaluate("hospital")
            thread.stop()
            # Same station, same port: the "server restarted" scenario.
            thread = ServerThread(StationServer(station, port=port))
            thread.start()
            after = session.evaluate("hospital")
            assert after.data == before.data
            assert session.reconnects == 1
        finally:
            session.close()
            thread.stop()

    def test_without_opt_in_the_error_surfaces(self):
        station, subjects = hospital_station(folders=FOLDERS)
        thread = ServerThread(StationServer(station))
        host, port = thread.start()
        session = RemoteSession(host, port, "secretary")
        try:
            session.evaluate("hospital")
            thread.stop()
            with pytest.raises((ConnectionError, OSError)):
                session.evaluate("hospital")
        finally:
            session.close()
