"""Tests for the Skip index: bit I/O, encoder/decoder, variants."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.skipindex.bitio import BitReader, BitWriter, bits_for, bits_for_count
from repro.skipindex.decoder import (
    SkipIndexFormatError,
    SkipIndexNavigator,
    decode_document,
    iter_decoded_events,
    read_header,
)
from repro.skipindex.encoder import encode_document
from repro.skipindex.variants import (
    encoding_report,
    size_nc,
    size_tc,
    size_tcs,
    size_tcsb,
)
from repro.xmlkit.dom import Node
from repro.xmlkit.parser import parse_document
from repro.xmlkit.serializer import serialize


def normalize(node: Node) -> Node:
    """Merge adjacent text children (the encoder does the same)."""
    merged = Node(node.tag)
    buffer = []
    for child in node.children:
        if isinstance(child, str):
            buffer.append(child)
        else:
            if buffer:
                merged.children.append("".join(buffer))
                buffer = []
            merged.children.append(normalize(child))
    if buffer:
        merged.children.append("".join(buffer))
    return merged


class TestBitIO:
    def test_bits_for(self):
        assert bits_for(0) == 0
        assert bits_for(1) == 1
        assert bits_for(255) == 8
        assert bits_for(256) == 9

    def test_bits_for_count(self):
        assert bits_for_count(0) == 0
        assert bits_for_count(1) == 0
        assert bits_for_count(2) == 1
        assert bits_for_count(3) == 2
        assert bits_for_count(256) == 8

    def test_round_trip_fields(self):
        writer = BitWriter()
        writer.write_bits(5, 3)
        writer.write_bit(1)
        writer.write_bits(1023, 10)
        writer.align()
        writer.write_varint(300)
        writer.write_bytes(b"xy")
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(3) == 5
        assert reader.read_bit() == 1
        assert reader.read_bits(10) == 1023
        reader.align()
        assert reader.read_varint() == 300
        assert reader.read_bytes(2) == b"xy"

    def test_zero_width_fields(self):
        writer = BitWriter()
        writer.write_bits(0, 0)
        writer.write_varint(7)
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(0) == 0
        assert reader.read_varint() == 7

    def test_overflow_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_bits(8, 3)

    def test_eof_raises(self):
        reader = BitReader(b"")
        with pytest.raises(EOFError):
            reader.read_bits(1)

    @given(st.lists(st.tuples(st.integers(0, 2 ** 20), st.integers(1, 24))))
    @settings(max_examples=100, deadline=None)
    def test_property_field_round_trip(self, fields):
        writer = BitWriter()
        clipped = [(value & ((1 << width) - 1), width) for value, width in fields]
        for value, width in clipped:
            writer.write_bits(value, width)
        reader = BitReader(writer.getvalue())
        for value, width in clipped:
            assert reader.read_bits(width) == value


class TestEncoderDecoder:
    def round_trip(self, xml: str) -> None:
        tree = parse_document(xml)
        encoded = encode_document(tree)
        decoded = decode_document(encoded)
        assert decoded == normalize(tree), serialize(decoded)

    def test_single_leaf(self):
        self.round_trip("<a>hello</a>")

    def test_empty_leaf(self):
        self.round_trip("<a/>")

    def test_nested(self):
        self.round_trip("<a><b>x</b><c><d>y</d><d>z</d></c></a>")

    def test_mixed_content(self):
        self.round_trip("<a>pre<b>x</b>mid<c/>post</a>")

    def test_unicode_text(self):
        self.round_trip("<a><b>héllo wörld ✓</b></a>")

    def test_recursive_tags(self):
        self.round_trip("<a><a><a><a>deep</a></a></a></a>")

    def test_many_tags(self):
        children = "".join("<t%d>v%d</t%d>" % (i, i, i) for i in range(40))
        self.round_trip("<root>%s</root>" % children)

    def test_wide_document(self):
        children = "<x>v</x>" * 300
        self.round_trip("<root>%s</root>" % children)

    def test_header_round_trip(self):
        tree = parse_document("<a><b>x</b></a>")
        encoded = encode_document(tree)
        dictionary, offset = read_header(encoded.data)
        assert dictionary.tags() == ["a", "b"]
        assert offset == encoded.root_offset

    def test_bad_magic_rejected(self):
        with pytest.raises(SkipIndexFormatError):
            read_header(b"BAD!" + b"\x00" * 10)

    def test_subtree_meta_is_exact(self):
        tree = parse_document("<a><b><c>x</c></b><d>y</d></a>")
        encoded = encode_document(tree)
        navigator = SkipIndexNavigator(encoded.data)
        metas = {}
        while True:
            item = navigator.next()
            if item is None:
                break
            kind, value, meta = item
            if kind == 0 and meta is not None:
                metas.setdefault(value, meta)
        assert metas["a"].desc_tags == frozenset({"b", "c", "d"})
        assert metas["b"].desc_tags == frozenset({"c"})
        assert metas["c"].desc_tags == frozenset()

    def test_sizes_allow_exact_skips(self):
        tree = parse_document("<a><b><c>x</c><c>y</c></b><d>z</d></a>")
        encoded = encode_document(tree)
        navigator = SkipIndexNavigator(encoded.data)
        # Open 'a', open 'b', then skip b's subtree entirely.
        kind, value, _ = navigator.next()
        assert (kind, value) == (0, "a")
        kind, value, _ = navigator.next()
        assert (kind, value) == (0, "b")
        navigator.skip_subtree()
        kind, value, _ = navigator.next()
        assert (kind, value) == (2, "b")
        kind, value, _ = navigator.next()
        assert (kind, value) == (0, "d")

    def test_skip_and_capture_fetches_same_events(self):
        tree = parse_document("<a><b><c>x</c><c>y</c></b><d>z</d></a>")
        encoded = encode_document(tree)
        reference = list(iter_decoded_events(encoded))
        navigator = SkipIndexNavigator(encoded.data)
        navigator.next()  # open a
        navigator.next()  # open b
        fetch = navigator.skip_and_capture()
        captured = list(fetch())
        b_span = reference[1:9]  # <b><c>x</c><c>y</c></b>
        assert captured == b_span
        kind, value, _ = navigator.next()
        assert (kind, value) == (2, "b")

    def test_skip_rest_and_capture(self):
        tree = parse_document("<a><b>x</b><c>y</c><d>z</d></a>")
        encoded = encode_document(tree)
        navigator = SkipIndexNavigator(encoded.data)
        navigator.next()  # open a
        navigator.next()  # open b
        navigator.next()  # text x
        navigator.next()  # close b
        fetch = navigator.skip_rest_and_capture()
        captured = list(fetch())
        assert [(e.kind, e.value) for e in captured] == [
            (0, "c"), (1, "y"), (2, "c"), (0, "d"), (1, "z"), (2, "d"),
        ]
        kind, value, _ = navigator.next()
        assert (kind, value) == (2, "a")

    def test_fixpoint_converges(self):
        tree = parse_document("<a>" + "<b>x</b>" * 100 + "</a>")
        encoded = encode_document(tree)
        assert encoded.stats.fixpoint_rounds <= 8

    def random_tree(self, rng, max_nodes=60):
        tags = ["a", "b", "c", "d", "e", "f"]
        budget = [rng.randint(1, max_nodes)]

        def build(depth):
            node = Node(rng.choice(tags))
            while budget[0] > 0 and rng.random() < (0.8 if depth < 5 else 0.2):
                budget[0] -= 1
                if rng.random() < 0.4:
                    node.children.append(rng.choice(["t", "42", "longer text"]))
                else:
                    node.children.append(build(depth + 1))
            return node

        return build(0)

    @pytest.mark.parametrize("seed", range(40))
    def test_random_round_trip(self, seed):
        rng = random.Random(seed)
        tree = self.random_tree(rng)
        encoded = encode_document(tree)
        assert decode_document(encoded) == normalize(tree)


class TestEvaluatorOnEncodedDocuments:
    """End-to-end: evaluator fed by the SkipIndexNavigator must match the
    reference oracle (on the normalized tree)."""

    @pytest.mark.parametrize("seed", range(30))
    def test_differential_encoded(self, seed):
        from repro import reference_authorized_view
        from repro.accesscontrol.evaluator import StreamingEvaluator
        from test_differential import random_policy, random_tree

        rng = random.Random(seed + 5000)
        tree = normalize(random_tree(rng))
        policy = random_policy(rng)
        encoded = encode_document(tree)
        navigator = SkipIndexNavigator(encoded.data)
        streamed = StreamingEvaluator(policy).run(navigator)
        reference = reference_authorized_view(tree, policy)
        assert streamed == reference

    @pytest.mark.parametrize("seed", range(30, 50))
    def test_differential_encoded_with_query(self, seed):
        from repro import reference_authorized_view
        from repro.accesscontrol.evaluator import StreamingEvaluator
        from test_differential import random_path, random_policy, random_tree

        rng = random.Random(seed + 6000)
        tree = normalize(random_tree(rng))
        policy = random_policy(rng)
        query = random_path(rng)
        encoded = encode_document(tree)
        navigator = SkipIndexNavigator(encoded.data)
        streamed = StreamingEvaluator(policy, query=query).run(navigator)
        reference = reference_authorized_view(tree, policy, query=query)
        assert streamed == reference


class TestVariants:
    def sample_tree(self):
        body = "".join(
            "<rec><id>%d</id><name>name-%d</name><note>some text %d</note></rec>"
            % (i, i, i)
            for i in range(2000)
        )
        return parse_document("<db>%s</db>" % body)

    def test_nc_matches_serialization(self):
        tree = self.sample_tree()
        stats = size_nc(tree)
        assert stats.total_bytes == len(serialize(tree).encode("utf-8"))
        assert stats.text_bytes == tree.text_size()

    def test_tc_much_smaller_than_nc(self):
        tree = self.sample_tree()
        assert size_tc(tree).structure_bytes < size_nc(tree).structure_bytes / 2

    def test_tcs_larger_than_tc(self):
        tree = self.sample_tree()
        assert size_tcs(tree).structure_bytes > size_tc(tree).structure_bytes

    def test_tcsb_larger_than_tcs(self):
        tree = self.sample_tree()
        assert size_tcsb(tree).structure_bytes > size_tcs(tree).structure_bytes

    def test_tcsbr_much_smaller_than_tcsb(self):
        tree = self.sample_tree()
        report = encoding_report(tree)
        assert (
            report["TCSBR"].structure_bytes < report["TCSB"].structure_bytes
        )

    def test_tcsbr_total_matches_encoder(self):
        tree = self.sample_tree()
        report = encoding_report(tree)
        assert report["TCSBR"].total_bytes == len(encode_document(tree).data)

    def test_ratios_are_positive(self):
        tree = self.sample_tree()
        for name, stats in encoding_report(tree).items():
            assert stats.struct_text_ratio() > 0, name
