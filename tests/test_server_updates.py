"""Live updates over the wire: UPDATE / INVALIDATED frames, client
cache invalidation and transparent re-fetch (`repro.server` + the
station's update path)."""

import time

import pytest

from repro.accesscontrol.model import AccessRule, Policy
from repro.engine import SecureStation
from repro.server import protocol
from repro.server.client import RemoteError, RemoteSession
from repro.server.protocol import (
    INVALIDATED,
    UPDATE,
    FrameDecoder,
    encode_frame,
    json_frame,
)
from repro.server.service import ServerThread, StationServer
from repro.skipindex.updates import UpdateOp

DOC = (
    "<db>"
    + "".join(
        "<rec><id>%04d</id><val>value-%04d</val></rec>" % (i, i)
        for i in range(40)
    )
    + "</db>"
)


def build_station():
    station = SecureStation()
    station.publish("db", DOC)
    station.grant(
        "db", Policy([AccessRule("+", "//db")], subject="alice")
    )
    station.grant(
        "db", Policy([AccessRule("+", "//db")], subject="bob")
    )
    return station


@pytest.fixture()
def live_server():
    station = build_station()
    server = StationServer(station, chunk_size=512)
    thread = ServerThread(server)
    host, port = thread.start()
    yield station, server, host, port
    thread.stop()


def wait_for(predicate, timeout=5.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
class TestUpdateFrames:
    def test_update_frame_round_trip(self):
        op = UpdateOp.set_text([3, 1], "changed").as_dict()
        data = json_frame(UPDATE, 9, {"document": "db", "op": op})
        frames = FrameDecoder().feed(data)
        assert len(frames) == 1
        body = frames[0].json()
        assert body["document"] == "db"
        assert UpdateOp.from_dict(body["op"]).kind == "update_text"

    def test_invalidated_frame_round_trip(self):
        data = json_frame(INVALIDATED, 0, {"document": "db", "version": 4})
        frame = FrameDecoder().feed(data)[0]
        assert frame.type_name == "INVALIDATED"
        assert frame.json() == {"document": "db", "version": 4}

    def test_new_types_encodable(self):
        for ftype in (UPDATE, INVALIDATED):
            assert ftype in protocol.TYPE_NAMES
            encode_frame(ftype, 0, b"{}")


# ----------------------------------------------------------------------
# End to end
# ----------------------------------------------------------------------
class TestRemoteUpdate:
    def test_update_round_trip_reports_reencryption(self, live_server):
        station, server, host, port = live_server
        with RemoteSession(host, port, "alice") as session:
            before = session.evaluate("db")
            assert "value-0005" in before.text
            trailer = session.update(
                "db", UpdateOp.set_text([5, 1], "CHANGED-05")
            )
            assert trailer["version"] == 1
            summary = trailer["update"]
            assert summary["chunks_reencrypted"] <= summary["total_chunks"]
            assert summary["reencrypted_bytes"] > 0
            after = session.evaluate("db")
            assert "CHANGED-05" in after.text
            assert "value-0005" not in after.text
        assert station.document_version("db") == 1
        assert server.server_stats["updates"] == 1

    def test_other_clients_get_invalidated_and_refetch(self, live_server):
        _station, server, host, port = live_server
        with RemoteSession(host, port, "alice", cache_views=True) as alice:
            with RemoteSession(host, port, "bob") as bob:
                first = alice.evaluate("db")
                # Second read is served from the client cache: the
                # server sees no extra QUERY.
                queries_before = server.server_stats["queries"]
                assert alice.evaluate("db") is first
                assert server.server_stats["queries"] == queries_before

                bob.update("db", UpdateOp.set_text([7, 1], "HOT-UPDATE"))
                # The INVALIDATED push arrives asynchronously; poll
                # until the client has processed it.
                assert wait_for(
                    lambda: alice.poll_notifications() > 0
                    or alice.document_versions.get("db", 0) >= 1
                ), "INVALIDATED push never arrived"
                assert alice.invalidations_seen >= 1
                # The cache entry is gone: the next evaluate re-fetches
                # transparently and sees the post-update view.
                refreshed = alice.evaluate("db")
                assert refreshed is not first
                assert "HOT-UPDATE" in refreshed.text
                assert alice.document_versions["db"] == 1
        assert server.server_stats["invalidations"] >= 1

    def test_version_travels_in_result_trailer(self, live_server):
        _station, _server, host, port = live_server
        with RemoteSession(host, port, "alice") as session:
            first = session.evaluate("db")
            assert first.trailer["version"] == 0
            session.update("db", UpdateOp.set_text([0, 1], "X-00"))
            second = session.evaluate("db")
            assert second.trailer["version"] == 1
            assert session.document_versions["db"] == 1

    def test_ungranted_subject_cannot_update(self, live_server):
        station, server, host, port = live_server
        before = station.document("db").encoded.data
        with RemoteSession(host, port, "mallory") as session:
            with pytest.raises(RemoteError) as err:
                session.update("db", UpdateOp.set_text([0, 1], "PWNED"))
            assert err.value.code == "no-grant"
        assert station.document_version("db") == 0
        assert station.document("db").encoded.data == before
        assert server.server_stats["updates"] == 0

    def test_mid_query_invalidation_never_pins_a_stale_view(self, live_server):
        """A RESULT carrying an older version than an already-consumed
        INVALIDATED push must not be cached (it would be served
        forever — no further push for that version will come)."""
        _station, _server, host, port = live_server
        with RemoteSession(host, port, "alice", cache_views=True) as session:
            # Simulate the mid-query push arriving first.
            session._note_version("db", 5)
            assert session._is_stale("db", 4)
            assert not session._is_stale("db", 5)
            assert not session._is_stale("db", None)
            result = session.evaluate("db")  # server is still at v0
            assert result.trailer["version"] == 0
            # The stale result was not cached: the next evaluate
            # re-fetches rather than serving v0 under a known v5.
            assert session.evaluate("db") is not result

    def test_update_unknown_document_is_structured_error(self, live_server):
        _station, _server, host, port = live_server
        with RemoteSession(host, port, "alice") as session:
            with pytest.raises(RemoteError) as err:
                session.update("nope", UpdateOp.set_text([0], "x"))
            assert err.value.code == "unknown-document"

    def test_update_bad_path_is_structured_error(self, live_server):
        _station, _server, host, port = live_server
        with RemoteSession(host, port, "alice") as session:
            with pytest.raises(RemoteError) as err:
                session.update("db", UpdateOp.set_text([999], "x"))
            assert err.value.code in ("update", "internal")

    def test_readonly_server_refuses_updates(self):
        station = build_station()
        server = StationServer(station, allow_updates=False)
        with ServerThread(server) as (host, port):
            with RemoteSession(host, port, "alice") as session:
                with pytest.raises(RemoteError) as err:
                    session.update("db", UpdateOp.set_text([0, 1], "x"))
                assert err.value.code == "limit"
                # Reads still work.
                assert session.evaluate("db").text
        assert station.document_version("db") == 0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestUpdateCli:
    def test_update_command(self, live_server, capsys):
        from repro.cli import main

        station, _server, host, port = live_server
        rc = main(
            [
                "update",
                "%s:%d" % (host, port),
                "db",
                "--subject",
                "alice",
                "--kind",
                "update-text",
                "--path",
                "3,1",
                "--text",
                "CLI-EDIT",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "version 1" in out
        assert station.document_version("db") == 1
        from repro.xmlkit.serializer import serialize_events

        assert "CLI-EDIT" in serialize_events(
            station.evaluate("db", "alice").events
        )

    def test_update_command_rejects_bad_kind_args(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(
                [
                    "update",
                    "127.0.0.1:1",
                    "db",
                    "--kind",
                    "update-text",
                    "--path",
                    "0",
                    # --text missing
                ]
            )
