"""Unit tests for navigators and the SOE cost model."""

import pytest

from repro.accesscontrol.navigation import (
    EventListNavigator,
    SimpleEventNavigator,
)
from repro.metrics import Meter
from repro.soe.costmodel import CONTEXTS, CostModel, PlatformContext
from repro.xmlkit.events import CLOSE, OPEN, TEXT, Event
from repro.xmlkit.parser import iter_events

DOC = "<a><b><c>x</c></b><d>y</d><e/></a>"


def events():
    return list(iter_events(DOC))


class TestSimpleEventNavigator:
    def test_yields_everything_without_meta(self):
        navigator = SimpleEventNavigator(events())
        seen = []
        while True:
            item = navigator.next()
            if item is None:
                break
            seen.append(item)
        assert len(seen) == len(events())
        assert all(meta is None for _k, _v, meta in seen)

    def test_no_skip_support(self):
        navigator = SimpleEventNavigator(events())
        assert not navigator.supports_skip()
        with pytest.raises(NotImplementedError):
            navigator.skip_subtree()


class TestEventListNavigator:
    def test_metadata_strict_descendants(self):
        navigator = EventListNavigator(events())
        kind, value, meta = navigator.next()
        assert (kind, value) == (OPEN, "a")
        assert meta.desc_tags == frozenset({"b", "c", "d", "e"})
        kind, value, meta = navigator.next()
        assert (kind, value) == (OPEN, "b")
        assert meta.desc_tags == frozenset({"c"})

    def test_meta_suppressed(self):
        navigator = EventListNavigator(events(), provide_meta=False)
        _kind, _value, meta = navigator.next()
        assert meta is None
        assert navigator.supports_skip()

    def test_skip_subtree_lands_on_close(self):
        navigator = EventListNavigator(events())
        navigator.next()  # open a
        navigator.next()  # open b
        navigator.skip_subtree()
        kind, value, _ = navigator.next()
        assert (kind, value) == (CLOSE, "b")

    def test_skip_meter_accounting(self):
        meter = Meter()
        navigator = EventListNavigator(events(), meter=meter)
        navigator.next()
        navigator.next()
        navigator.skip_subtree()
        assert meter.skipped_bytes > 0

    def test_skip_rest_nothing_to_skip(self):
        navigator = EventListNavigator(events())
        navigator.next()  # open a
        navigator.next()  # open b
        navigator.next()  # open c
        navigator.next()  # text x
        assert navigator.skip_rest() is False  # c has nothing left
        assert navigator.skip_rest_and_capture() is None

    def test_capture_replays_subtree(self):
        navigator = EventListNavigator(events())
        navigator.next()  # a
        navigator.next()  # b
        fetch = navigator.skip_and_capture()
        captured = list(fetch())
        assert captured[0] == Event(OPEN, "b")
        assert captured[-1] == Event(CLOSE, "b")
        assert Event(TEXT, "x") in captured

    def test_unbalanced_rejected(self):
        with pytest.raises(ValueError):
            EventListNavigator([Event(OPEN, "a")])


class TestCostModel:
    def test_breakdown_linear_in_bytes(self):
        model = CostModel(CONTEXTS["smartcard"])
        meter = Meter()
        meter.bytes_transferred = 500_000
        assert model.breakdown(meter).communication == pytest.approx(1.0)
        meter.bytes_transferred = 1_000_000
        assert model.breakdown(meter).communication == pytest.approx(2.0)

    def test_delivered_bytes_count_as_communication(self):
        model = CostModel(CONTEXTS["smartcard"])
        meter = Meter()
        meter.bytes_delivered = 500_000
        assert model.breakdown(meter).communication == pytest.approx(1.0)

    def test_decryption_rate(self):
        model = CostModel(CONTEXTS["smartcard"])
        meter = Meter()
        meter.bytes_decrypted = 150_000
        assert model.breakdown(meter).decryption == pytest.approx(1.0)

    def test_integrity_components(self):
        context = PlatformContext(
            "test", 1e6, 1e6, hash_bps=1e6, hash_node_cost_s=1e-3
        )
        meter = Meter()
        meter.bytes_hashed = 1_000_000
        meter.hash_nodes = 10
        breakdown = CostModel(context).breakdown(meter)
        assert breakdown.integrity == pytest.approx(1.0 + 0.01)

    def test_access_control_component(self):
        context = PlatformContext("t", 1e6, 1e6, token_op_cost_s=1e-6,
                                  event_cost_s=1e-6)
        meter = Meter()
        meter.token_ops = 1000
        meter.events = 1000
        assert CostModel(context).breakdown(meter).access_control == (
            pytest.approx(0.002)
        )

    def test_shares_sum_to_one(self):
        meter = Meter()
        meter.bytes_transferred = 1000
        meter.bytes_decrypted = 1000
        meter.token_ops = 10
        meter.bytes_hashed = 100
        shares = CostModel(CONTEXTS["smartcard"]).breakdown(meter).shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_zero_meter_zero_time(self):
        breakdown = CostModel(CONTEXTS["smartcard"]).breakdown(Meter())
        assert breakdown.total == 0
        assert sum(breakdown.shares().values()) == 0

    def test_lower_bound_monotone_in_bytes(self):
        model = CostModel(CONTEXTS["smartcard"])
        assert model.lower_bound_seconds(2000) > model.lower_bound_seconds(1000)
        assert model.lower_bound_seconds(1000, with_integrity=True) > (
            model.lower_bound_seconds(1000)
        )


class TestMeter:
    def test_reset(self):
        meter = Meter()
        meter.events = 5
        meter.reset()
        assert meter.events == 0

    def test_merge(self):
        a, b = Meter(), Meter()
        a.events = 3
        b.events = 4
        b.token_ops = 2
        a.merge(b)
        assert a.events == 7
        assert a.token_ops == 2

    def test_as_dict_covers_all_fields(self):
        meter = Meter()
        data = meter.as_dict()
        assert set(data) == set(Meter.FIELDS)
        assert all(value == 0 for value in data.values())
