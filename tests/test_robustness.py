"""Robustness and determinism checks across the pipeline."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import reference_authorized_view
from repro.accesscontrol.evaluator import StreamingEvaluator
from repro.crypto.integrity import make_scheme
from repro.metrics import Meter
from repro.skipindex.decoder import (
    SkipIndexFormatError,
    SkipIndexNavigator,
    decode_document,
    read_header,
)
from repro.skipindex.encoder import encode_document
from repro.soe import SecureSession, prepare_document
from repro.xmlkit.dom import Node
from repro.xmlkit.events import validate_stream


class TestDecoderRobustness:
    """Garbage in must yield defined errors, never wrong documents."""

    def encoded(self):
        tree = Node("a", [Node("b", ["text"]), Node("c", [Node("d", ["x"])])])
        return encode_document(tree)

    @pytest.mark.parametrize("cut", [5, 8, 12, 20])
    def test_truncated_documents_raise(self, cut):
        data = self.encoded().data[:cut]
        with pytest.raises((SkipIndexFormatError, EOFError, IndexError,
                            UnicodeDecodeError, ValueError)):
            navigator_events = []
            navigator = SkipIndexNavigator(data)
            while True:
                item = navigator.next()
                if item is None:
                    break
                navigator_events.append(item)

    @pytest.mark.parametrize("seed", range(20))
    def test_random_byte_flips_never_hang(self, seed):
        rng = random.Random(seed)
        encoded = self.encoded()
        data = bytearray(encoded.data)
        position = rng.randrange(encoded.root_offset, len(data))
        data[position] ^= 1 << rng.randrange(8)
        try:
            navigator = SkipIndexNavigator(bytes(data))
            for _ in range(10000):  # bounded: a hang would exceed this
                if navigator.next() is None:
                    break
        except (SkipIndexFormatError, EOFError, IndexError,
                UnicodeDecodeError, ValueError):
            pass  # defined failure modes

    def test_empty_input(self):
        with pytest.raises((SkipIndexFormatError, EOFError)):
            read_header(b"")


@st.composite
def unicode_trees(draw, depth=3):
    tags = ["alpha", "beta", "gamma"]
    node = Node(draw(st.sampled_from(tags)))
    for _ in range(draw(st.integers(0, 3))):
        if depth > 0 and draw(st.booleans()):
            node.children.append(draw(unicode_trees(depth=depth - 1)))
        else:
            text = draw(
                st.text(
                    alphabet=st.characters(
                        blacklist_categories=("Cs",), min_codepoint=1
                    ),
                    min_size=1,
                    max_size=20,
                )
            )
            node.children.append(text)
    return node


class TestUnicodePipeline:
    @settings(max_examples=60, deadline=None)
    @given(tree=unicode_trees())
    def test_encode_decode_arbitrary_unicode(self, tree):
        encoded = encode_document(tree)
        decoded = decode_document(encoded)
        # Adjacent text chunks merge; compare text content + structure.
        assert decoded.tag == tree.tag
        assert decoded.distinct_tags() == tree.distinct_tags()
        assert decoded.text_size() == tree.text_size()

    @settings(max_examples=30, deadline=None)
    @given(tree=unicode_trees())
    def test_secure_roundtrip_arbitrary_unicode(self, tree):
        scheme = make_scheme("ECB-MHT", key=bytes(range(16)))
        encoded = encode_document(tree)
        document = scheme.protect(encoded.data)
        reader = scheme.reader(document, Meter())
        assert reader.read(0, len(encoded.data)) == encoded.data


class TestDeterminism:
    def test_sessions_are_deterministic(self):
        from repro.datasets import HospitalConfig, generate_hospital, doctor_policy

        doc = generate_hospital(HospitalConfig(folders=6, seed=11))
        prepared = prepare_document(doc, scheme="ECB-MHT")
        policy = doctor_policy("doctor2")
        first = SecureSession(prepared, policy).run()
        second = SecureSession(prepared, policy).run()
        assert first.events == second.events
        assert first.meter.as_dict() == second.meter.as_dict()
        assert first.seconds == second.seconds

    def test_views_always_well_formed(self):
        from test_differential import random_policy, random_tree

        for seed in range(40):
            rng = random.Random(seed + 31337)
            tree = random_tree(rng)
            policy = random_policy(rng)
            view = StreamingEvaluator(policy).run_events(
                list(tree.iter_events()), with_index=True
            )
            if view:
                validate_stream(view)

    def test_structural_rule_invariant(self):
        """Every delivered element is PERMIT itself or has a PERMIT
        descendant (no dangling structural nodes)."""
        from test_differential import random_policy, random_tree
        from repro.accesscontrol.reference import access_decisions
        from repro.accesscontrol.model import PERMIT
        from repro.xmlkit.events import events_to_tree

        for seed in range(30):
            rng = random.Random(seed + 999)
            tree = random_tree(rng)
            policy = random_policy(rng)
            view = reference_authorized_view(tree, policy)
            if not view:
                continue
            view_tree = events_to_tree(view)
            decisions = access_decisions(tree, policy)

            # Collect PERMIT tag multiset; every leaf-most view element
            # chain must terminate at an element that is permitted.
            def has_permit_descendant(node):
                matching = [
                    n
                    for n in tree.descendants()
                    if n.tag == node.tag and decisions[id(n)] == PERMIT
                ]
                if matching:
                    return True
                return any(
                    has_permit_descendant(child)
                    for child in node.element_children()
                )

            for leaf in view_tree.descendants():
                if not any(True for _ in leaf.element_children()):
                    assert has_permit_descendant(leaf)
