"""Tests for the crypto substrate: ciphers, modes, Merkle, schemes."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.chunks import ChunkLayout
from repro.crypto.des import Des, TripleDes
from repro.crypto.integrity import (
    SCHEMES,
    IntegrityError,
    SecureBytes,
    make_scheme,
)
from repro.crypto.merkle import MerkleTree, sha1, verify_with_siblings
from repro.crypto.modes import (
    NullCipher,
    decrypt_cbc,
    decrypt_cbc_reference,
    decrypt_ecb,
    decrypt_ecb_reference,
    decrypt_positioned,
    decrypt_positioned_reference,
    encrypt_cbc,
    encrypt_cbc_reference,
    encrypt_ecb,
    encrypt_ecb_reference,
    encrypt_positioned,
    encrypt_positioned_reference,
    make_iv,
    pad_to_block,
    versioned_position,
)
from repro.crypto.xtea import Xtea
from repro.metrics import Meter

KEY16 = bytes(range(16))


class TestDes:
    def test_fips_vector(self):
        # Classic known-answer test.
        cipher = Des(bytes.fromhex("133457799BBCDFF1"))
        plain = bytes.fromhex("0123456789ABCDEF")
        expected = bytes.fromhex("85E813540F0AB405")
        assert cipher.encrypt_block(plain) == expected
        assert cipher.decrypt_block(expected) == plain

    def test_weak_vector_zero(self):
        cipher = Des(bytes.fromhex("0000000000000000"))
        plain = bytes.fromhex("0000000000000000")
        expected = bytes.fromhex("8CA64DE9C1B123A7")
        assert cipher.encrypt_block(plain) == expected

    def test_triple_des_round_trip(self):
        cipher = TripleDes(bytes(range(24)))
        block = b"8bytes!!"
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_triple_des_two_key_form(self):
        cipher = TripleDes(bytes(range(16)))
        block = b"ABCDEFGH"
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_triple_des_ede_with_equal_keys_is_des(self):
        key = bytes.fromhex("133457799BBCDFF1")
        single = Des(key)
        triple = TripleDes(key * 3)
        block = bytes.fromhex("0123456789ABCDEF")
        assert triple.encrypt_block(block) == single.encrypt_block(block)

    def test_key_length_validation(self):
        with pytest.raises(ValueError):
            Des(b"short")
        with pytest.raises(ValueError):
            TripleDes(b"short")


class TestXtea:
    def test_known_vector(self):
        # Standard XTEA vector: key = 000102..0f, plain = 4142434445464748.
        cipher = Xtea(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
        plain = bytes.fromhex("4142434445464748")
        assert cipher.decrypt_block(cipher.encrypt_block(plain)) == plain

    @given(st.binary(min_size=8, max_size=8), st.binary(min_size=16, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_property_round_trip(self, block, key):
        cipher = Xtea(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_different_blocks_differ(self):
        cipher = Xtea(KEY16)
        assert cipher.encrypt_block(b"AAAAAAAA") != cipher.encrypt_block(b"BBBBBBBB")


class TestModes:
    def test_ecb_round_trip(self):
        cipher = Xtea(KEY16)
        data = bytes(range(64))
        assert decrypt_ecb(cipher, encrypt_ecb(cipher, data)) == data

    def test_ecb_leaks_equal_blocks(self):
        cipher = Xtea(KEY16)
        data = b"SAMEBLK!" * 2
        encrypted = encrypt_ecb(cipher, data)
        assert encrypted[:8] == encrypted[8:]

    def test_positioned_hides_equal_blocks(self):
        cipher = Xtea(KEY16)
        data = b"SAMEBLK!" * 2
        encrypted = encrypt_positioned(cipher, data, 0)
        assert encrypted[:8] != encrypted[8:]
        assert decrypt_positioned(cipher, encrypted, 0) == data

    def test_positioned_random_access(self):
        cipher = Xtea(KEY16)
        data = bytes(range(256 % 256)) or bytes(range(256))
        data = bytes(i % 256 for i in range(256))
        encrypted = encrypt_positioned(cipher, data, 1024)
        # Decrypt a single middle block independently.
        block = encrypted[40:48]
        assert decrypt_positioned(cipher, block, 1024 + 40) == data[40:48]

    def test_positioned_detects_relocation(self):
        # A substituted block decrypts to garbage at another position.
        cipher = Xtea(KEY16)
        data = b"SECRET01SECRET02"
        encrypted = encrypt_positioned(cipher, data, 0)
        moved = decrypt_positioned(cipher, encrypted[0:8], 8)
        assert moved != data[0:8] and moved != data[8:16]

    def test_cbc_round_trip(self):
        cipher = Xtea(KEY16)
        data = bytes(range(128))
        iv = make_iv(7)
        assert decrypt_cbc(cipher, encrypt_cbc(cipher, data, iv), iv) == data

    def test_cbc_hides_equal_blocks(self):
        cipher = Xtea(KEY16)
        data = b"SAMEBLK!" * 4
        encrypted = encrypt_cbc(cipher, data, make_iv(0))
        blocks = {encrypted[i : i + 8] for i in range(0, len(encrypted), 8)}
        assert len(blocks) == 4

    def test_unaligned_rejected(self):
        with pytest.raises(ValueError):
            encrypt_ecb(NullCipher(), b"123")

    def test_pad_to_block(self):
        assert pad_to_block(b"12345") == b"12345\x00\x00\x00"
        assert pad_to_block(b"12345678") == b"12345678"


class TestVectorizedModes:
    """The whole-buffer fast paths must agree bit-for-bit with the
    block-at-a-time reference forms, on every cipher, for random
    buffers, positions and document versions."""

    CIPHERS = [
        ("xtea", lambda: Xtea(KEY16)),
        ("null", lambda: NullCipher()),
        ("des", lambda: Des(bytes(range(8)))),
        ("3des", lambda: TripleDes(bytes(range(24)))),
    ]

    @pytest.mark.parametrize("name", [name for name, _ in CIPHERS])
    def test_fuzz_against_blockwise_reference(self, name):
        factory = dict(self.CIPHERS)[name]
        cipher = factory()
        rng = random.Random(hash(name) & 0xFFFF)
        for _ in range(12):
            blocks = rng.randrange(0, 65)
            data = bytes(rng.randrange(256) for _ in range(8 * blocks))
            iv = bytes(rng.randrange(256) for _ in range(8))
            position = versioned_position(
                rng.randrange(0, 1 << 40) & ~7, rng.randrange(0, 4)
            )
            assert encrypt_ecb(cipher, data) == encrypt_ecb_reference(cipher, data)
            assert decrypt_ecb(cipher, data) == decrypt_ecb_reference(cipher, data)
            assert encrypt_cbc(cipher, data, iv) == encrypt_cbc_reference(
                cipher, data, iv
            )
            assert decrypt_cbc(cipher, data, iv) == decrypt_cbc_reference(
                cipher, data, iv
            )
            assert encrypt_positioned(
                cipher, data, position
            ) == encrypt_positioned_reference(cipher, data, position)
            assert decrypt_positioned(
                cipher, data, position
            ) == decrypt_positioned_reference(cipher, data, position)

    def test_round_trips_through_fast_paths(self):
        cipher = Xtea(KEY16)
        rng = random.Random(99)
        for _ in range(8):
            data = bytes(rng.randrange(256) for _ in range(8 * rng.randrange(1, 40)))
            iv = make_iv(rng.randrange(1 << 32))
            position = rng.randrange(0, 1 << 40) & ~7
            assert decrypt_ecb(cipher, encrypt_ecb(cipher, data)) == data
            assert decrypt_cbc(cipher, encrypt_cbc(cipher, data, iv), iv) == data
            assert (
                decrypt_positioned(
                    cipher, encrypt_positioned(cipher, data, position), position
                )
                == data
            )

    def test_position_mask_cache_distinguishes_versions(self):
        """Version-folded positions must never collide in the memoized
        mask cache: the same offsets under different versions decrypt
        under different masks."""
        cipher = Xtea(KEY16)
        data = b"A" * 64
        v0 = encrypt_positioned(cipher, data, versioned_position(128, 0))
        v1 = encrypt_positioned(cipher, data, versioned_position(128, 1))
        assert v0 != v1
        # Repeat calls hit the cache and stay deterministic.
        assert v0 == encrypt_positioned(cipher, data, versioned_position(128, 0))
        assert v1 == encrypt_positioned(cipher, data, versioned_position(128, 1))

    def test_xtea_blocks_api_validates_length(self):
        cipher = Xtea(KEY16)
        with pytest.raises(ValueError):
            cipher.encrypt_blocks(b"123")
        with pytest.raises(ValueError):
            cipher.decrypt_blocks(b"123")
        assert cipher.encrypt_blocks(b"") == b""
        assert cipher.decrypt_blocks(b"") == b""


class TestMerkle:
    def fragments(self, count=8, size=32):
        rng = random.Random(1)
        return [bytes(rng.randrange(256) for _ in range(size)) for _ in range(count)]

    def test_root_changes_with_any_fragment(self):
        fragments = self.fragments()
        tree = MerkleTree(fragments)
        tampered = list(fragments)
        tampered[3] = b"\x00" * 32
        assert MerkleTree(tampered).root != tree.root

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            MerkleTree([b"a", b"b", b"c"])

    def test_single_fragment_tree(self):
        tree = MerkleTree([b"only"])
        assert tree.root == sha1(b"only")

    @pytest.mark.parametrize("requested", [[0], [3], [0, 1], [2, 5], [0, 7], list(range(8))])
    def test_sibling_verification(self, requested):
        fragments = self.fragments()
        tree = MerkleTree(fragments)
        siblings = tree.sibling_hashes(requested)
        ok, recombinations = verify_with_siblings(
            8, {i: fragments[i] for i in requested}, siblings, tree.root
        )
        assert ok
        assert recombinations >= 1 or len(requested) == 8

    def test_paper_figure_f1(self):
        # Fig. F1: access F3 (index 2) of 8 fragments -> terminal sends
        # H4, H12, H5678 (three sibling hashes).
        fragments = self.fragments()
        tree = MerkleTree(fragments)
        siblings = tree.sibling_hashes([2])
        assert len(siblings) == 3
        ok, recombinations = verify_with_siblings(
            8, {2: fragments[2]}, siblings, tree.root
        )
        assert ok and recombinations == 3

    def test_tampered_fragment_fails(self):
        fragments = self.fragments()
        tree = MerkleTree(fragments)
        siblings = tree.sibling_hashes([2])
        ok, _ = verify_with_siblings(8, {2: b"evil" * 8}, siblings, tree.root)
        assert not ok

    def test_tampered_sibling_fails(self):
        fragments = self.fragments()
        tree = MerkleTree(fragments)
        siblings = tree.sibling_hashes([2])
        key = next(iter(siblings))
        siblings[key] = b"\x00" * 20
        ok, _ = verify_with_siblings(8, {2: fragments[2]}, siblings, tree.root)
        assert not ok


class TestChunkLayout:
    def test_defaults_match_paper(self):
        layout = ChunkLayout()
        assert layout.chunk_size == 2048
        assert layout.fragment_size == 256
        assert layout.block_size == 8
        assert layout.fragments_per_chunk == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            ChunkLayout(chunk_size=1000, fragment_size=256)
        with pytest.raises(ValueError):
            ChunkLayout(chunk_size=2048, fragment_size=250)
        with pytest.raises(ValueError):
            ChunkLayout(chunk_size=2048 + 256, fragment_size=256)

    def test_covering_helpers(self):
        layout = ChunkLayout()
        assert list(layout.chunks_covering(0, 1)) == [0]
        assert list(layout.chunks_covering(2047, 2)) == [0, 1]
        assert list(layout.fragments_covering(0, 257)) == [0, 1]
        assert list(layout.fragments_covering(255, 1)) == [0]

    def test_chunk_count(self):
        layout = ChunkLayout()
        assert layout.chunk_count(0) == 0
        assert layout.chunk_count(1) == 1
        assert layout.chunk_count(2048) == 1
        assert layout.chunk_count(2049) == 2


class TestSchemes:
    PLAINTEXT = bytes((i * 37 + 11) % 256 for i in range(5000))

    @pytest.mark.parametrize("name", sorted(SCHEMES))
    def test_round_trip_full_read(self, name):
        scheme = make_scheme(name, key=KEY16)
        document = scheme.protect(self.PLAINTEXT)
        reader = scheme.reader(document, Meter())
        assert reader.read(0, len(self.PLAINTEXT)) == self.PLAINTEXT

    @pytest.mark.parametrize("name", sorted(SCHEMES))
    def test_random_access_reads(self, name):
        scheme = make_scheme(name, key=KEY16)
        document = scheme.protect(self.PLAINTEXT)
        reader = scheme.reader(document, Meter())
        rng = random.Random(3)
        for _ in range(50):
            offset = rng.randrange(len(self.PLAINTEXT))
            length = rng.randrange(1, 200)
            expected = self.PLAINTEXT[offset : offset + length]
            assert reader.read(offset, length) == expected

    @pytest.mark.parametrize("name", ["CBC-SHA", "CBC-SHAC", "ECB-MHT"])
    def test_tampering_detected(self, name):
        scheme = make_scheme(name, key=KEY16)
        document = scheme.protect(self.PLAINTEXT)
        # Flip one bit in the middle of the stored payload.
        document.stored[len(document.stored) // 2] ^= 0x40
        reader = scheme.reader(document, Meter())
        with pytest.raises(IntegrityError):
            reader.read(0, len(self.PLAINTEXT))

    def test_ecb_does_not_detect_tampering(self):
        scheme = make_scheme("ECB", key=KEY16)
        document = scheme.protect(self.PLAINTEXT)
        document.stored[100] ^= 0x01
        reader = scheme.reader(document, Meter())
        data = reader.read(0, len(self.PLAINTEXT))
        assert data != self.PLAINTEXT  # garbled but silently accepted

    @pytest.mark.parametrize("name", ["CBC-SHA", "CBC-SHAC", "ECB-MHT"])
    def test_digest_tampering_detected(self, name):
        scheme = make_scheme(name, key=KEY16)
        document = scheme.protect(self.PLAINTEXT)
        document.stored[0] ^= 0x80  # first digest byte
        reader = scheme.reader(document, Meter())
        with pytest.raises(IntegrityError):
            reader.read(0, 10)

    def test_mht_transfers_less_than_cbc_sha_for_small_reads(self):
        sha_meter, mht_meter = Meter(), Meter()
        for name, meter in [("CBC-SHA", sha_meter), ("ECB-MHT", mht_meter)]:
            scheme = make_scheme(name, key=KEY16)
            document = scheme.protect(self.PLAINTEXT)
            reader = scheme.reader(document, meter)
            reader.read(10, 16)  # one small read
        assert mht_meter.bytes_transferred < sha_meter.bytes_transferred
        assert mht_meter.bytes_decrypted < sha_meter.bytes_decrypted

    def test_shac_decrypts_less_than_sha(self):
        sha_meter, shac_meter = Meter(), Meter()
        for name, meter in [("CBC-SHA", sha_meter), ("CBC-SHAC", shac_meter)]:
            scheme = make_scheme(name, key=KEY16)
            document = scheme.protect(self.PLAINTEXT)
            reader = scheme.reader(document, meter)
            reader.read(10, 16)
        assert shac_meter.bytes_decrypted < sha_meter.bytes_decrypted
        assert shac_meter.bytes_transferred == sha_meter.bytes_transferred

    def test_costs_charged_once_per_cached_chunk(self):
        scheme = make_scheme("ECB-MHT", key=KEY16)
        document = scheme.protect(self.PLAINTEXT)
        meter = Meter()
        reader = scheme.reader(document, meter)
        reader.read(0, 16)
        first = meter.bytes_transferred
        reader.read(0, 16)  # same fragment, same chunk: cached
        assert meter.bytes_transferred == first

    def test_secure_bytes_view(self):
        scheme = make_scheme("ECB-MHT", key=KEY16)
        document = scheme.protect(self.PLAINTEXT)
        view = SecureBytes(scheme.reader(document, Meter()))
        assert len(view) == len(self.PLAINTEXT)
        assert view[0] == self.PLAINTEXT[0]
        assert view[100:140] == self.PLAINTEXT[100:140]
        assert view[-1] == self.PLAINTEXT[-1]

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            make_scheme("ROT13")

    def test_equal_plaintext_blocks_hidden_in_store(self):
        scheme = make_scheme("ECB", key=KEY16)
        document = scheme.protect(b"SAMEBLK!" * 16)
        stored = bytes(document.stored)
        blocks = {stored[i : i + 8] for i in range(0, 128, 8)}
        assert len(blocks) == 16
