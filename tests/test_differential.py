"""Differential testing: streaming evaluator vs DOM reference oracle.

Random documents x random policies x random queries, in all navigator
configurations (brute force, index+skip, skip without metadata).  Any
divergence is a bug in either the evaluator or the oracle.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import AccessRule, Policy, reference_authorized_view
from repro.accesscontrol.evaluator import StreamingEvaluator
from repro.accesscontrol.navigation import EventListNavigator, SimpleEventNavigator
from repro.xmlkit.dom import Node
from repro.xmlkit.serializer import serialize_events

TAGS = ["a", "b", "c", "d", "e"]
VALUES = ["1", "2", "3", "x"]


def random_tree(rng: random.Random, max_nodes: int = 40) -> Node:
    """A random small document over a fixed tag alphabet."""
    budget = [rng.randint(1, max_nodes)]

    def build(depth: int) -> Node:
        node = Node(rng.choice(TAGS))
        while budget[0] > 0 and rng.random() < (0.75 if depth < 4 else 0.25):
            budget[0] -= 1
            if rng.random() < 0.35:
                node.children.append(rng.choice(VALUES))
            else:
                node.children.append(build(depth + 1))
        return node

    return build(1)


def random_path(rng: random.Random, allow_predicates: bool = True) -> str:
    """A random XP{[],*,//} expression over the tag alphabet."""
    steps = []
    for _ in range(rng.randint(1, 3)):
        axis = "//" if rng.random() < 0.5 else "/"
        test = "*" if rng.random() < 0.15 else rng.choice(TAGS)
        predicate = ""
        if allow_predicates and rng.random() < 0.4:
            p_axis = "//" if rng.random() < 0.3 else ""
            p_tag = rng.choice(TAGS)
            if rng.random() < 0.5:
                predicate = "[%s%s]" % (p_axis, p_tag)
            else:
                op = rng.choice(["=", "!=", ">", "<"])
                value = rng.choice(VALUES)
                predicate = "[%s%s %s %s]" % (p_axis, p_tag, op, value)
        steps.append(axis + test + predicate)
    return "".join(steps)


def random_policy(rng: random.Random) -> Policy:
    rules = []
    for _ in range(rng.randint(1, 5)):
        sign = "+" if rng.random() < 0.6 else "-"
        rules.append(AccessRule(sign, random_path(rng)))
    return Policy(rules)


def check_agreement(tree: Node, policy: Policy, query=None) -> None:
    reference = reference_authorized_view(tree, policy, query=query)
    events = list(tree.iter_events())
    for label, prune, make_navigator in [
        ("brute-force", False, lambda: SimpleEventNavigator(events)),
        ("indexed", False, lambda: EventListNavigator(events, provide_meta=True)),
        ("skip-no-meta", False, lambda: EventListNavigator(events, provide_meta=False)),
        ("skip-pruned", True, lambda: EventListNavigator(events, provide_meta=True)),
    ]:
        evaluator = StreamingEvaluator(policy, query=query, enable_pruning=prune)
        streamed = evaluator.run(make_navigator())
        assert streamed == reference, (
            "divergence (%s):\n  policy=%s\n  query=%s\n  doc=%s\n"
            "  streaming=%s\n  reference=%s"
            % (
                label,
                list(policy.rules),
                query,
                serialize_events(events),
                serialize_events(streamed),
                serialize_events(reference),
            )
        )


@pytest.mark.parametrize("seed", range(120))
def test_random_policies_agree(seed):
    rng = random.Random(seed)
    tree = random_tree(rng)
    policy = random_policy(rng)
    check_agreement(tree, policy)


@pytest.mark.parametrize("seed", range(120, 180))
def test_random_policies_with_queries_agree(seed):
    rng = random.Random(seed)
    tree = random_tree(rng)
    policy = random_policy(rng)
    query = random_path(rng)
    check_agreement(tree, policy, query=query)


@pytest.mark.parametrize("seed", range(180, 220))
def test_recursive_documents_agree(seed):
    """Documents with heavy tag recursion (the hard case for //)."""
    rng = random.Random(seed)

    def deep(depth):
        node = Node(rng.choice(["a", "b"]))
        if depth < 6 and rng.random() < 0.8:
            for _ in range(rng.randint(1, 2)):
                node.children.append(deep(depth + 1))
        else:
            node.children.append(rng.choice(VALUES))
        return node

    tree = deep(0)
    rules = [
        AccessRule("+", "//a//b[a]"),
        AccessRule("-", "//b//a/b"),
        AccessRule("+", random_path(rng)),
    ]
    check_agreement(tree, Policy(rules))


# ----------------------------------------------------------------------
# Engine-path fuzzing: compiled plans vs the DOM reference oracle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(1000, 1200))
def test_fuzz_engine_path_matches_reference(seed):
    """Randomized (document, policy, query) triples through the engine.

    The engine path — a :class:`~repro.engine.plans.PolicyPlan` compiled
    once and shared by every evaluation — must agree with
    :func:`reference_authorized_view` exactly, across two distinct
    random documents per plan (exercising plan reuse, the query-plan
    memo, and both navigator configurations).
    """
    from repro.engine import compile_policy

    rng = random.Random(seed)
    policy = random_policy(rng)
    query = random_path(rng) if rng.random() < 0.5 else None
    plan = compile_policy(policy)
    for _ in range(2):
        tree = random_tree(rng, max_nodes=25)
        reference = reference_authorized_view(tree, policy, query=query)
        events = list(tree.iter_events())
        query_plan = plan.query_plan(query)
        for label, with_index, prune in [
            ("indexed", True, False),
            ("bare", False, False),
            ("pruned", True, True),
        ]:
            evaluator = StreamingEvaluator(
                plan, query=query_plan, enable_pruning=prune
            )
            streamed = evaluator.run_events(events, with_index=with_index)
            assert streamed == reference, (
                "engine-path divergence (%s, seed=%d):\n  policy=%s\n"
                "  query=%s\n  doc=%s\n  engine=%s\n  reference=%s"
                % (
                    label,
                    seed,
                    list(policy.rules),
                    query,
                    serialize_events(events),
                    serialize_events(streamed),
                    serialize_events(reference),
                )
            )


def test_fuzz_engine_batch_matches_reference():
    """SecureStation.evaluate_many over random cohorts == oracle."""
    from repro.engine import SecureStation
    from repro.xmlkit.serializer import serialize

    rng = random.Random(20260730)
    for round_index in range(10):
        # Round-trip through text first: adjacent text children merge
        # on parsing, and the oracle must see what the station stores.
        from repro.xmlkit.parser import parse_document

        tree = parse_document(serialize(random_tree(rng, max_nodes=30)))
        station = SecureStation()
        station.publish("doc", serialize(tree))
        policies = []
        for index in range(3):
            policy = Policy(random_policy(rng).rules, subject="s%d" % index)
            policies.append(policy)
            station.grant("doc", policy)
        batch = station.evaluate_many("doc", ["s0", "s1", "s2"])
        for policy in policies:
            reference = reference_authorized_view(tree, policy)
            assert batch[policy.subject].events == reference, (
                "batch divergence (round %d): policy=%s"
                % (round_index, list(policy.rules))
            )


@pytest.mark.parametrize("scheme", ["ECB", "CBC-SHAC", "ECB-MHT"])
def test_fuzz_station_cold_pruned_cached_identical(scheme):
    """Random (document, policy, query) triples through the station's
    three serving strategies — cold, skip-pruned, cache-hit — must
    produce byte-identical serialized views on every scheme."""
    from repro.engine import SecureStation
    from repro.soe.session import prepare_document
    from repro.xmlkit.parser import parse_document
    from repro.xmlkit.serializer import serialize

    rng = random.Random(hash(scheme) & 0xFFFF)
    for round_index in range(8):
        tree = parse_document(serialize(random_tree(rng, max_nodes=30)))
        policy = Policy(random_policy(rng).rules, subject="fuzz")
        query = random_path(rng) if rng.random() < 0.5 else None
        prepared = prepare_document(tree, scheme=scheme)

        cold_station = SecureStation(cache_views=False, prune=False)
        cold_station.publish("doc", prepared)
        cold = cold_station.evaluate("doc", policy, query=query)

        pruned_station = SecureStation(cache_views=False, prune=True)
        pruned_station.publish("doc", prepared)
        pruned = pruned_station.evaluate("doc", policy, query=query)

        cached_station = SecureStation(cache_views=True, prune=True)
        cached_station.publish("doc", prepared)
        cached_station.evaluate("doc", policy, query=query)
        hit = cached_station.evaluate("doc", policy, query=query)

        assert hit.cache_hit, round_index
        cold_bytes = serialize_events(cold.events)
        assert serialize_events(pruned.events) == cold_bytes, (
            "pruned divergence (%s, round %d): policy=%s query=%s"
            % (scheme, round_index, list(policy.rules), query)
        )
        assert serialize_events(hit.events) == cold_bytes, (
            "cached divergence (%s, round %d): policy=%s query=%s"
            % (scheme, round_index, list(policy.rules), query)
        )


# ----------------------------------------------------------------------
# Structural-index serving: indexed == streamed == pruned == cached
# ----------------------------------------------------------------------
def random_structural_query(rng: random.Random) -> str:
    """A wildcard-free absolute path — always index-plan eligible."""
    query = "".join(
        ("//" if rng.random() < 0.5 else "/") + rng.choice(TAGS)
        for _ in range(rng.randint(1, 3))
    )
    if rng.random() < 0.3:
        query += "[%s]" % rng.choice(TAGS)
    return query


@pytest.mark.parametrize("scheme", ["ECB", "CBC-SHAC", "ECB-MHT"])
def test_fuzz_indexed_station_matches_every_strategy(scheme):
    """The indexed serving path against the three streaming strategies.

    Per round: one random document published with ``index=True`` and
    once without, served the same random (policy, query) — the indexed
    view must be byte-identical to the cold, pruned and cached streamed
    views on every scheme.  Wildcard queries ride along to exercise the
    fallback decision.
    """
    from repro.engine import PublishOptions, SecureStation, StationConfig
    from repro.soe.session import prepare_document
    from repro.xmlkit.parser import parse_document
    from repro.xmlkit.serializer import serialize

    rng = random.Random(hash(scheme) & 0xFFFFF)
    indexed_served = 0
    for round_index in range(8):
        tree = parse_document(serialize(random_tree(rng, max_nodes=30)))
        policy = Policy(random_policy(rng).rules, subject="fuzz")
        query = (
            random_structural_query(rng)
            if rng.random() < 0.7
            else random_path(rng)
        )
        prepared = prepare_document(tree, scheme=scheme)

        cold_station = SecureStation(cache_views=False, prune=False)
        cold_station.publish("doc", prepared)
        cold = cold_station.evaluate("doc", policy, query=query)

        pruned_station = SecureStation(cache_views=False, prune=True)
        pruned_station.publish("doc", prepared)
        pruned = pruned_station.evaluate("doc", policy, query=query)

        indexed_station = SecureStation(StationConfig(cache_views=True))
        indexed_station.publish(
            "doc", serialize(tree), PublishOptions(scheme=scheme, index=True)
        )
        indexed = indexed_station.evaluate("doc", policy, query=query)
        hit = indexed_station.evaluate("doc", policy, query=query)
        indexed_served += indexed_station.stats.indexed_requests

        cold_bytes = serialize_events(cold.events)
        context = "(%s, round %d): policy=%s query=%s" % (
            scheme,
            round_index,
            list(policy.rules),
            query,
        )
        assert serialize_events(pruned.events) == cold_bytes, context
        assert serialize_events(indexed.events) == cold_bytes, context
        assert serialize_events(hit.events) == cold_bytes, context
        assert hit.cache_hit and hit.indexed == indexed.indexed, context
    # The structural path must actually have engaged during the run —
    # otherwise this test silently degrades to streaming-vs-streaming.
    assert indexed_served > 0


def _random_update_op(rng: random.Random, tree: Node):
    """A random valid edit against ``tree`` (element index paths)."""
    from repro.skipindex.updates import UpdateOp

    paths = [[]]

    def walk(node, path):
        elements = [c for c in node.children if isinstance(c, Node)]
        for index, child in enumerate(elements):
            paths.append(path + [index])
            walk(child, path + [index])

    walk(tree, [])
    path = rng.choice(paths)
    roll = rng.random()
    if roll < 0.4:
        return UpdateOp.set_text(path, rng.choice(VALUES) * rng.randint(1, 3))
    if roll < 0.7:
        child = Node(rng.choice(TAGS))
        child.add(rng.choice(VALUES))
        return UpdateOp.insert(path, child)
    if roll < 0.85 and path:
        return UpdateOp.delete(path)
    return UpdateOp.rename(path, rng.choice(TAGS + ["fresh"]))


@pytest.mark.parametrize("seed", range(2000, 2012))
def test_fuzz_indexed_station_after_update_sequences(seed):
    """Random update sequences: the indexed station must keep matching
    the streamed station view-for-view after every committed edit
    (incremental refresh, rebuild and worst-case cascade alike)."""
    from repro.engine import PublishOptions, SecureStation, StationConfig
    from repro.skipindex.decoder import decode_document
    from repro.xmlkit.parser import parse_document
    from repro.xmlkit.serializer import serialize

    rng = random.Random(seed)
    source = serialize(random_tree(rng, max_nodes=25))
    policy = Policy(random_policy(rng).rules, subject="fuzz")

    streamed = SecureStation(StationConfig(cache_views=False))
    streamed.publish("doc", source)
    streamed.grant("doc", policy)
    indexed = SecureStation(StationConfig(cache_views=False))
    indexed.publish("doc", source, PublishOptions(index=True))
    indexed.grant("doc", policy)

    for step in range(4):
        current = decode_document(indexed.document("doc").encoded)
        op = _random_update_op(rng, current)
        try:
            streamed.update("doc", op)
        except Exception:
            continue  # invalid edit for this tree shape: skip it on both
        indexed.update("doc", op)
        query = random_structural_query(rng)
        a = streamed.evaluate("doc", "fuzz", query=query)
        b = indexed.evaluate("doc", "fuzz", query=query)
        assert serialize_events(b.events) == serialize_events(a.events), (
            "update divergence (seed=%d, step %d): op=%s query=%s"
            % (seed, step, op.kind, query)
        )
        c = streamed.evaluate("doc", "fuzz")
        d = indexed.evaluate("doc", "fuzz")
        assert serialize_events(d.events) == serialize_events(c.events), (
            "full-view divergence (seed=%d, step %d): op=%s" % (seed, step, op.kind)
        )
    assert indexed.stats.indexed_requests > 0


@pytest.mark.parametrize("seed", range(2012, 2018))
def test_fuzz_indexed_station_after_logstore_restart(seed, tmp_path):
    """Kill-and-recover: an indexed document served from a reopened
    LogStore must equal the in-memory streamed oracle, and still be
    served through the index (the blob survived the restart)."""
    from repro.engine import PublishOptions, SecureStation, StationConfig
    from repro.store import LogStore
    from repro.xmlkit.serializer import serialize

    rng = random.Random(seed)
    source = serialize(random_tree(rng, max_nodes=25))
    policy = Policy(random_policy(rng).rules, subject="fuzz")
    query = random_structural_query(rng)

    oracle = SecureStation(StationConfig(cache_views=False))
    oracle.publish("doc", source)
    oracle.grant("doc", policy)
    reference = oracle.evaluate("doc", "fuzz", query=query)

    directory = str(tmp_path)
    with SecureStation(StationConfig(store=LogStore(directory))) as station:
        station.publish("doc", source, PublishOptions(index=True))
    with SecureStation(StationConfig(store=LogStore(directory))) as restarted:
        restarted.grant("doc", policy)
        result = restarted.evaluate("doc", "fuzz", query=query)
        assert serialize_events(result.events) == serialize_events(
            reference.events
        ), "restart divergence (seed=%d): query=%s" % (seed, query)
        assert restarted.stats.indexed_requests == 1
        assert restarted.stats.index_stale == 0


# ----------------------------------------------------------------------
# Hypothesis property tests
# ----------------------------------------------------------------------
@st.composite
def trees(draw, max_depth=4):
    tag = draw(st.sampled_from(TAGS))
    node = Node(tag)
    if max_depth > 0:
        n_children = draw(st.integers(min_value=0, max_value=3))
        for _ in range(n_children):
            if draw(st.booleans()):
                node.children.append(draw(st.sampled_from(VALUES)))
            else:
                node.children.append(draw(trees(max_depth=max_depth - 1)))
    else:
        node.children.append(draw(st.sampled_from(VALUES)))
    return node


@st.composite
def policies(draw):
    n_rules = draw(st.integers(min_value=1, max_value=4))
    rules = []
    for _ in range(n_rules):
        seed = draw(st.integers(min_value=0, max_value=10 ** 6))
        rng = random.Random(seed)
        sign = draw(st.sampled_from(["+", "-"]))
        rules.append(AccessRule(sign, random_path(rng)))
    return Policy(rules)


@settings(max_examples=150, deadline=None)
@given(tree=trees(), policy=policies())
def test_property_streaming_matches_reference(tree, policy):
    check_agreement(tree, policy)


@settings(max_examples=60, deadline=None)
@given(tree=trees(), policy=policies(), seed=st.integers(0, 10 ** 6))
def test_property_queries_match_reference(tree, policy, seed):
    query = random_path(random.Random(seed))
    check_agreement(tree, policy, query=query)


@settings(max_examples=60, deadline=None)
@given(tree=trees(), policy=policies())
def test_property_view_is_subset_of_document(tree, policy):
    """Every text chunk in the view exists in the document (no leakage
    of invented content) and the view is well-formed."""
    from repro.xmlkit.events import TEXT, validate_stream

    evaluator = StreamingEvaluator(policy)
    view = evaluator.run_events(list(tree.iter_events()), with_index=True)
    if view:
        validate_stream(view)
    doc_texts = []

    def collect(node):
        for child in node.children:
            if isinstance(child, str):
                doc_texts.append(child)
            else:
                collect(child)

    collect(tree)
    for event in view:
        if event[0] == TEXT:
            assert event[1] in doc_texts


@settings(max_examples=40, deadline=None)
@given(tree=trees(), policy=policies())
def test_property_idempotence(tree, policy):
    """Applying the policy to its own authorized view keeps the granted
    content granted (the view never shrinks below its own granted set)
    when rules have no predicates reaching outside the view.

    We restrict to predicate-free policies where idempotence holds
    exactly.
    """

    simple_rules = [
        rule for rule in policy.rules if not rule.object.has_predicates()
    ]
    if not simple_rules:
        return
    simple = Policy(simple_rules)
    evaluator = StreamingEvaluator(simple)
    view = evaluator.run_events(list(tree.iter_events()), with_index=True)
    if not view:
        return
    again = StreamingEvaluator(simple).run_events(view, with_index=True)
    # All PERMIT nodes survive; structural-only nodes may differ in text
    # content but the re-application must never add content.
    assert len(again) <= len(view)
