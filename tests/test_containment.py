"""Tests for XPath containment and the static policy optimizer."""

import random

import pytest

from repro import AccessRule, Policy, reference_authorized_view
from repro.accesscontrol.evaluator import StreamingEvaluator
from repro.accesscontrol.optimizer import (
    deduplicate,
    optimize_policy,
    redundant_same_sign,
)
from repro.xpath.containment import covers
from repro.xpath.parser import parse_xpath


def c(general: str, specific: str) -> bool:
    return covers(parse_xpath(general), parse_xpath(specific))


class TestCovers:
    @pytest.mark.parametrize(
        "general, specific",
        [
            ("//a", "/a"),
            ("//a", "/b/a"),
            ("//a", "//b/a"),
            ("//a", "//a[b]"),
            ("/a/b", "/a/b"),
            ("//*", "/a"),
            ("//*", "//b"),
            ("/a//c", "/a/b/c"),
            ("//a//b", "//a/x/b"),
            ("//a[b]", "//a[b][c]"),
            ("//a[b]", "//a[b = 3]"),
            ("//a[b > 10]", "//a[b > 20]"),
            ("//a[b < 10]", "//a[b < 5]"),
            ("//a[b > 10]", "//a[b = 20]"),
            ("/a/*/c", "/a/b/c"),
            ("//c", "/a/b/c[d]"),
        ],
    )
    def test_positive_cases(self, general, specific):
        assert c(general, specific)

    @pytest.mark.parametrize(
        "general, specific",
        [
            ("/a", "//a"),
            ("/a/b", "/a/c"),
            ("/a/b", "/a//b"),
            ("//a[b]", "//a"),
            ("//a[b = 3]", "//a[b]"),
            ("//a[b > 20]", "//a[b > 10]"),
            ("//a[b]", "//a[c]"),
            ("/a/b/c", "/a//c"),
            ("//a/b", "//b"),
            ("//a", "//b"),
            ("/a", "/a/b"),  # different output nodes
        ],
    )
    def test_negative_cases(self, general, specific):
        assert not c(general, specific)

    def test_soundness_on_random_documents(self):
        """Whenever covers() says yes, the match sets must nest."""
        from repro.accesscontrol.reference import match_path
        from test_differential import random_path, random_tree

        rng = random.Random(7)
        checked = 0
        for _ in range(300):
            tree = random_tree(rng)
            p = parse_xpath(random_path(rng))
            q = parse_xpath(random_path(rng))
            if covers(p, q):
                p_nodes = match_path(tree, p)
                q_nodes = match_path(tree, q)
                assert q_nodes <= p_nodes, (p, q)
                checked += 1
        assert checked > 10  # the test must actually exercise positives


class TestOptimizer:
    def test_deduplicate(self):
        rules = [
            AccessRule("+", "//a"),
            AccessRule("+", "//a"),
            AccessRule("-", "//a"),
        ]
        assert len(deduplicate(rules)) == 2

    def test_redundant_same_sign_pairs(self):
        rules = [AccessRule("+", "//a"), AccessRule("+", "/x/a")]
        pairs = redundant_same_sign(rules)
        assert (0, 1) in pairs

    def test_single_sign_elimination(self):
        policy = Policy(
            [
                AccessRule("+", "//a"),
                AccessRule("+", "/x/a"),
                AccessRule("+", "//b"),
            ]
        )
        optimized = optimize_policy(policy)
        assert len(optimized) == 2

    def test_mixed_sign_not_touched_by_default(self):
        policy = Policy(
            [
                AccessRule("+", "//a"),
                AccessRule("+", "//b//a"),
                AccessRule("-", "//b"),
            ]
        )
        optimized = optimize_policy(policy)
        # //b//a is contained in //a but the negative //b sits between:
        # removing it would change the view. Safe mode keeps everything.
        assert len(optimized) == 3

    def test_safe_optimization_preserves_views(self):
        from test_differential import random_tree

        rng = random.Random(21)
        for seed in range(30):
            local = random.Random(seed)
            sign = "+" if local.random() < 0.5 else "-"
            rules = [
                AccessRule(sign, "//a"),
                AccessRule(sign, "/a/b"),
                AccessRule(sign, "//a//b"),
                AccessRule(sign, "//c[d]"),
                AccessRule(sign, "//c[d = 1]"),
            ]
            policy = Policy(rules)
            optimized = optimize_policy(policy)
            assert len(optimized) <= len(policy)
            tree = random_tree(rng)
            original = reference_authorized_view(tree, policy)
            reduced = reference_authorized_view(tree, optimized)
            assert original == reduced

    def test_optimized_policy_runs_in_evaluator(self):
        policy = optimize_policy(
            Policy([AccessRule("+", "//a"), AccessRule("+", "//a/b")])
        )
        from repro.xmlkit import parse_document

        doc = parse_document("<r><a><b>x</b></a></r>")
        events = StreamingEvaluator(policy).run_events(
            list(doc.iter_events()), with_index=True
        )
        assert events == reference_authorized_view(doc, policy)

    def test_subject_and_dummy_preserved(self):
        policy = Policy(
            [AccessRule("+", "//a")], subject="bob", dummy_tag="_"
        )
        optimized = optimize_policy(policy)
        assert optimized.subject == "bob"
        assert optimized.dummy_tag == "_"

    def test_aggressive_mode_respects_sandwich(self):
        policy = Policy(
            [
                AccessRule("+", "//a"),
                AccessRule("+", "//b//a"),
                AccessRule("-", "//b"),
            ]
        )
        optimized = optimize_policy(policy, aggressive=True)
        # The negative //b is nested inside //a's scope: the sandwich
        # condition must preclude dropping //b//a.
        assert len(optimized) == 3


class TestScopeCovers:
    def test_scope_includes_descendants(self):
        from repro.xpath.containment import scope_covers

        def sc(general, specific):
            return scope_covers(parse_xpath(general), parse_xpath(specific))

        # Rule propagation: //a's scope covers everything below a's.
        assert sc("//a", "//a/b")
        assert sc("//a", "//a//b[c]")
        assert sc("//Admin", "//Admin/SSN")
        assert not sc("//a/b", "//a")
        assert not sc("//a", "//b")
        # Plain node-set containment still implies scope containment.
        assert sc("//a", "/x/a")

    def test_optimizer_uses_scope_containment(self):
        policy = Policy(
            [
                AccessRule("+", "//Admin"),
                AccessRule("+", "//Admin/SSN"),
                AccessRule("+", "//Admin//Age"),
            ]
        )
        optimized = optimize_policy(policy)
        assert len(optimized) == 1
