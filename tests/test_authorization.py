"""Unit tests for the Authorization Stack and DecideNode (Fig. 4)."""


from repro.accesscontrol.authorization import (
    AuthorizationStack,
    combine_level,
    decide,
)
from repro.accesscontrol.conditions import (
    FALSE,
    TRUE,
    UNKNOWN,
    PredicateInstance,
    RuleInstance,
)
from repro.accesscontrol.model import DENY, PENDING, PERMIT, AccessRule

POS = AccessRule("+", "//a")
NEG = AccessRule("-", "//a")
POS_PRED = AccessRule("+", "//a[b]")
NEG_PRED = AccessRule("-", "//a[b]")


def active(rule):
    return RuleInstance(rule, (), 1)


def pending(rule):
    return RuleInstance(rule, (PredicateInstance("R", 0, 1),), 1)


def dead(rule):
    pred = PredicateInstance("R", 0, 1)
    pred.close_window()
    return RuleInstance(rule, (pred,), 1)


class TestCombineLevel:
    def test_empty_level_keeps_below(self):
        assert combine_level(PERMIT, []) == PERMIT
        assert combine_level(DENY, []) == DENY

    def test_negative_active_wins(self):
        statuses = [(True, TRUE), (False, TRUE), (True, UNKNOWN)]
        assert combine_level(PERMIT, statuses) == DENY

    def test_positive_active_wins_without_negative(self):
        assert combine_level(DENY, [(True, TRUE)]) == PERMIT

    def test_negative_pending_conflicts_with_positive(self):
        assert combine_level(DENY, [(True, TRUE), (False, UNKNOWN)]) == PENDING
        assert combine_level(PERMIT, [(True, UNKNOWN), (False, UNKNOWN)]) == PENDING

    def test_negative_pending_alone_over_deny_is_deny(self):
        # Either resolution leaves the node denied.
        assert combine_level(DENY, [(False, UNKNOWN)]) == DENY

    def test_negative_pending_alone_over_permit_is_pending(self):
        assert combine_level(PERMIT, [(False, UNKNOWN)]) == PENDING

    def test_positive_pending_over_permit_is_permit(self):
        # Either resolution leaves the node permitted.
        assert combine_level(PERMIT, [(True, UNKNOWN)]) == PERMIT

    def test_positive_pending_over_deny_is_pending(self):
        assert combine_level(DENY, [(True, UNKNOWN)]) == PENDING

    def test_dead_instances_ignored(self):
        assert combine_level(DENY, [(False, FALSE), (True, FALSE)]) == DENY


class TestDecide:
    def test_closed_policy(self):
        assert decide([]) == DENY

    def test_most_specific_wins(self):
        levels = [[active(POS)], [active(NEG)]]
        assert decide(levels) == DENY
        levels = [[active(NEG)], [active(POS)]]
        assert decide(levels) == PERMIT

    def test_denial_precedence_same_level(self):
        assert decide([[active(POS), active(NEG)]]) == DENY

    def test_inherited_through_empty_levels(self):
        assert decide([[active(POS)], [], []]) == PERMIT

    def test_pending_propagates(self):
        assert decide([[pending(POS)]]) == PENDING
        assert decide([[active(POS)], [pending(NEG)]]) == PENDING

    def test_stability_under_resolution(self):
        """A non-pending decision never changes when pendings resolve."""
        import itertools

        rules = [POS, NEG, POS_PRED, NEG_PRED]
        for combo in itertools.product([0, 1, 2], repeat=4):
            instances = []
            preds = []
            for rule, mode in zip(rules, combo):
                if mode == 0:
                    instances.append(active(rule))
                    preds.append(None)
                else:
                    pred = PredicateInstance("R", 0, 1)
                    instances.append(RuleInstance(rule, (pred,), 1))
                    preds.append(pred)
            levels = [[instances[0], instances[1]], [instances[2], instances[3]]]
            before = decide(levels)
            if before == PENDING:
                continue
            # Resolve every pending predicate both ways.
            for resolution in itertools.product([True, False], repeat=4):
                for pred, mode, satisfied in zip(preds, combo, resolution):
                    if pred is None:
                        continue
                    pred._satisfied = satisfied and mode != 2
                    pred._closed = True
                after = decide(levels)
                assert after == before, (combo, resolution)
                for pred in preds:
                    if pred is not None:
                        pred._satisfied = False
                        pred._closed = False


class TestAuthorizationStack:
    def test_push_pop_scoping(self):
        stack = AuthorizationStack()
        stack.open_level(1)
        stack.push(1, active(POS))
        assert stack.current_decision() == PERMIT
        stack.open_level(2)
        stack.push(2, active(NEG))
        assert stack.current_decision() == DENY
        stack.close_level(2)
        assert stack.current_decision() == PERMIT
        stack.close_level(1)
        assert stack.current_decision() == DENY  # closed policy again

    def test_snapshot_is_frozen(self):
        stack = AuthorizationStack()
        stack.push(1, active(POS))
        snapshot = stack.snapshot()
        stack.close_level(1)
        # The snapshot still sees the old entries.
        assert snapshot.state() == TRUE

    def test_snapshot_cache_per_version(self):
        stack = AuthorizationStack()
        stack.push(1, active(POS))
        assert stack.snapshot() is stack.snapshot()
        stack.push(2, active(NEG))
        fresh = stack.snapshot()
        assert fresh.state() == FALSE

    def test_snapshot_pending_resolves_later(self):
        stack = AuthorizationStack()
        pred = PredicateInstance("R", 0, 1)
        stack.push(1, RuleInstance(POS_PRED, (pred,), 1))
        snapshot = stack.snapshot()
        assert snapshot.state() == UNKNOWN
        pred.mark_satisfied()
        assert snapshot.state() == TRUE

    def test_snapshot_decided_is_cached(self):
        stack = AuthorizationStack()
        stack.push(1, active(NEG))
        snapshot = stack.snapshot()
        assert snapshot.state() == FALSE
        assert snapshot.state() == FALSE  # cached path

    def test_peak_statistics(self):
        stack = AuthorizationStack()
        for depth in range(1, 5):
            stack.push(depth, active(POS))
        assert stack.peak_entries == 4
        assert stack.push_count == 4
