"""Tests for the dataset generators and the Fig. 1 policies."""


from repro import reference_authorized_view
from repro.accesscontrol.evaluator import StreamingEvaluator
from repro.datasets import (
    HospitalConfig,
    doctor_policy,
    generate_hospital,
    generate_sigmod,
    generate_treebank,
    generate_wsu,
    random_policy_for,
    researcher_policy,
    secretary_policy,
)
from repro.xmlkit.events import TEXT


def small_hospital():
    return generate_hospital(HospitalConfig(folders=8, seed=5))


class TestHospitalGenerator:
    def test_deterministic(self):
        a = generate_hospital(HospitalConfig(folders=5, seed=1))
        b = generate_hospital(HospitalConfig(folders=5, seed=1))
        assert a == b
        c = generate_hospital(HospitalConfig(folders=5, seed=2))
        assert a != c

    def test_schema_shape(self):
        doc = small_hospital()
        assert doc.tag == "Hospital"
        folders = doc.find_all("Folder")
        assert len(folders) == 8
        for folder in folders:
            admin = folder.find("Admin")
            assert admin is not None
            assert admin.find("SSN") is not None
            assert admin.find("Age") is not None
            assert folder.find("MedActs") is not None
            assert folder.find("Analysis") is not None

    def test_tag_inventory(self):
        doc = small_hospital()
        tags = doc.distinct_tags()
        for tag in ["Hospital", "Folder", "Admin", "MedActs", "Act",
                    "Details", "Comments", "Analysis", "LabResults",
                    "RPhys", "Cholesterol"]:
            assert tag in tags

    def test_scaling(self):
        small = generate_hospital(HospitalConfig(folders=5))
        big = generate_hospital(HospitalConfig(folders=20))
        assert big.count_elements() > 2 * small.count_elements()


class TestHospitalPolicies:
    def view(self, policy, doc=None):
        doc = doc or small_hospital()
        events = StreamingEvaluator(policy).run_events(
            list(doc.iter_events()), with_index=True
        )
        reference = reference_authorized_view(doc, policy)
        assert events == reference
        return doc, events

    def test_secretary_sees_only_admin(self):
        _doc, events = self.view(secretary_policy())
        tags = {e[1] for e in events if e[0] == 0}
        assert "Admin" in tags and "SSN" in tags
        assert "Act" not in tags and "LabResults" not in tags
        # Structural path is present.
        assert "Folder" in tags and "Hospital" in tags

    def test_doctor_sees_own_acts_only(self):
        doc = small_hospital()
        # Pick a physician who actually signs an act in this document.
        signer = next(
            node.text()
            for node in doc.descendants()
            if node.tag == "RPhys" and node.text().startswith("doctor")
        )
        policy = doctor_policy(signer)
        _doc, events = self.view(policy, doc)
        texts = {e[1] for e in events if e[0] == TEXT}
        assert signer in texts

    def test_doctor_denied_foreign_details(self):
        doc = small_hospital()
        policy = doctor_policy("doctor0")
        reference = reference_authorized_view(doc, policy)
        # Details of acts by other physicians must not appear: check by
        # scanning the original document for foreign acts' comments.
        foreign_comments = set()
        for act in (n for n in doc.descendants() if n.tag == "Act"):
            rphys = act.find("RPhys")
            if rphys is not None and rphys.text() != "doctor0":
                details = act.find("Details")
                if details is not None:
                    comments = details.find("Comments")
                    if comments is not None:
                        foreign_comments.add(comments.text())
        delivered_texts = {e[1] for e in reference if e[0] == TEXT}
        # Comments texts are reused across acts; only assert when some
        # foreign comment text is not also a doctor0 comment.
        own_comments = set()
        for act in (n for n in doc.descendants() if n.tag == "Act"):
            rphys = act.find("RPhys")
            if rphys is not None and rphys.text() == "doctor0":
                details = act.find("Details")
                if details is not None:
                    comments = details.find("Comments")
                    if comments is not None:
                        own_comments.add(comments.text())
        for comment in foreign_comments - own_comments:
            assert comment not in delivered_texts

    def test_researcher_filtered_by_cholesterol(self):
        doc = generate_hospital(HospitalConfig(folders=30, seed=9))
        policy = researcher_policy()
        _doc, events = self.view(policy, doc)
        # Cholesterol values above 250 must never be delivered.
        opens = []
        delivered_high = False
        stack = []
        for event in events:
            if event[0] == 0:
                stack.append(event[1])
            elif event[0] == 2:
                stack.pop()
            elif event[0] == TEXT and stack and stack[-1] == "Cholesterol":
                if float(event[1]) > 250:
                    delivered_high = True
        assert not delivered_high

    def test_researcher_needs_protocol(self):
        doc = small_hospital()
        policy = researcher_policy()
        reference = reference_authorized_view(doc, policy)
        # Exactly the Ages of patients with a protocol are delivered.
        folders_with_protocol = sum(
            1 for folder in doc.find_all("Folder") if folder.find("Protocol")
        )
        delivered_ages = sum(
            1 for event in reference if event[0] == 0 and event[1] == "Age"
        )
        assert delivered_ages == folders_with_protocol
        assert 0 < folders_with_protocol < len(doc.find_all("Folder"))


class TestRealDatasetSubstitutes:
    def test_wsu_shape(self):
        doc = generate_wsu(scale=0.2)
        assert doc.max_depth() == 3  # root/course/field (flat)
        assert len(doc.distinct_tags()) >= 15
        # Tiny elements: average text per element well under 10 bytes.
        assert doc.text_size() / doc.count_elements() < 10

    def test_sigmod_shape(self):
        doc = generate_sigmod(scale=0.5)
        assert len(doc.distinct_tags()) <= 12
        assert doc.max_depth() == 6
        assert 4.0 < doc.average_depth() < 6.0

    def test_treebank_shape(self):
        doc = generate_treebank(scale=0.1)
        assert len(doc.distinct_tags()) >= 250
        assert doc.max_depth() > 12
        # Recursive: some tag nests within itself somewhere.
        found_recursive = False
        for node in doc.descendants():
            inner = set()
            for descendant in node.descendants():
                if descendant is not node and descendant.tag == node.tag:
                    found_recursive = True
                    break
            if found_recursive:
                break
        assert found_recursive

    def test_determinism(self):
        assert generate_wsu(0.05) == generate_wsu(0.05)
        assert generate_sigmod(0.05) == generate_sigmod(0.05)
        assert generate_treebank(0.02) == generate_treebank(0.02)


class TestRandomPolicies:
    def test_policies_parse_and_apply(self):
        doc = generate_sigmod(scale=0.2)
        for seed in range(5):
            policy = random_policy_for(doc, rules=8, seed=seed)
            assert len(policy) == 8
            events = StreamingEvaluator(policy).run_events(
                list(doc.iter_events()), with_index=True
            )
            reference = reference_authorized_view(doc, policy)
            assert events == reference

    def test_has_positive_rule(self):
        doc = generate_wsu(scale=0.05)
        for seed in range(5):
            policy = random_policy_for(doc, rules=4, seed=seed)
            assert any(rule.is_positive for rule in policy.rules)
