"""Integration tests of the full secure pipeline (Fig. 2 architecture).

Document -> Skip-index encode -> encrypt/digest -> SOE session
(decrypt + verify + decode + evaluate) -> authorized view.
"""

import pytest

from repro import reference_authorized_view
from repro.crypto.integrity import IntegrityError
from repro.datasets import (
    HospitalConfig,
    doctor_policy,
    generate_hospital,
    researcher_policy,
    secretary_policy,
)
from repro.soe import SecureSession, prepare_document
from repro.soe.session import delivered_bytes, lwb_bytes, lwb_seconds
from repro.xmlkit.events import CLOSE, OPEN, TEXT


@pytest.fixture(scope="module")
def hospital():
    return generate_hospital(HospitalConfig(folders=12, seed=3))


@pytest.fixture(scope="module", params=["ECB", "ECB-MHT", "CBC-SHA", "CBC-SHAC"])
def prepared(request, hospital):
    return prepare_document(hospital, scheme=request.param)


class TestEndToEnd:
    def test_secretary_view_matches_reference(self, hospital, prepared):
        session = SecureSession(prepared, secretary_policy())
        result = session.run()
        assert result.events == reference_authorized_view(
            hospital, secretary_policy()
        )

    def test_doctor_view_matches_reference(self, hospital, prepared):
        policy = doctor_policy("doctor1")
        result = SecureSession(prepared, policy).run()
        assert result.events == reference_authorized_view(hospital, policy)

    def test_researcher_view_matches_reference(self, hospital, prepared):
        policy = researcher_policy()
        result = SecureSession(prepared, policy).run()
        assert result.events == reference_authorized_view(hospital, policy)

    def test_query_view_matches_reference(self, hospital, prepared):
        policy = doctor_policy("doctor0")
        query = "//Folder[//Age > 50]"
        result = SecureSession(prepared, policy, query=query).run()
        assert result.events == reference_authorized_view(
            hospital, policy, query=query
        )

    def test_brute_force_same_view(self, hospital, prepared):
        policy = secretary_policy()
        skip = SecureSession(prepared, policy, use_skip_index=True).run()
        brute = SecureSession(prepared, policy, use_skip_index=False).run()
        assert skip.events == brute.events


class TestCostAccounting:
    def test_skip_index_reduces_costs(self):
        # Needs a document large enough that skipped subtrees dominate
        # the chunk-granularity overheads of the integrity scheme.
        doc = generate_hospital(HospitalConfig(folders=80, seed=4))
        policy = secretary_policy()
        for scheme in ["ECB", "ECB-MHT"]:
            prepared = prepare_document(doc, scheme=scheme)
            skip = SecureSession(prepared, policy, use_skip_index=True).run()
            brute = SecureSession(prepared, policy, use_skip_index=False).run()
            assert skip.meter.bytes_transferred < brute.meter.bytes_transferred
            assert skip.meter.bytes_decrypted < brute.meter.bytes_decrypted
            assert skip.seconds < brute.seconds

    def test_brute_force_reads_whole_document(self, hospital):
        prepared = prepare_document(hospital, scheme="ECB")
        result = SecureSession(
            prepared, secretary_policy(), use_skip_index=False
        ).run()
        # Every payload byte crosses the channel (block-aligned).
        assert result.meter.bytes_decrypted >= prepared.encoded_size * 0.95

    def test_integrity_costs_ordering(self, hospital):
        policy = secretary_policy()
        times = {}
        for scheme in ["ECB", "ECB-MHT", "CBC-SHAC", "CBC-SHA"]:
            prepared = prepare_document(hospital, scheme=scheme)
            times[scheme] = SecureSession(prepared, policy).run().seconds
        # Fig. 11 ordering: ECB < ECB-MHT < CBC-SHAC < CBC-SHA.
        assert times["ECB"] < times["ECB-MHT"]
        assert times["ECB-MHT"] < times["CBC-SHAC"]
        assert times["CBC-SHAC"] <= times["CBC-SHA"]

    def test_lwb_is_a_lower_bound(self, hospital):
        prepared = prepare_document(hospital, scheme="ECB")
        for policy in [secretary_policy(), doctor_policy("doctor0"),
                       researcher_policy()]:
            result = SecureSession(prepared, policy).run()
            lwb = lwb_seconds(result.events, "smartcard")
            assert lwb <= result.seconds * 1.5  # near or below the real time
            assert lwb <= SecureSession(
                prepared, policy, use_skip_index=False
            ).run().seconds

    def test_breakdown_components_positive(self, hospital):
        prepared = prepare_document(hospital, scheme="ECB-MHT")
        result = SecureSession(prepared, doctor_policy("doctor0")).run()
        breakdown = result.breakdown
        assert breakdown.communication > 0
        assert breakdown.decryption > 0
        assert breakdown.access_control > 0
        assert breakdown.integrity > 0
        assert abs(sum(breakdown.shares().values()) - 1.0) < 1e-9

    def test_decryption_dominates_on_smartcard(self, hospital):
        # Fig. 9: decryption 53-60%, communication 30-38%, AC 2-15%.
        prepared = prepare_document(hospital, scheme="ECB")
        result = SecureSession(prepared, doctor_policy("doctor0")).run()
        shares = result.breakdown.shares()
        assert shares["decryption"] > shares["communication"]
        assert shares["communication"] > shares["access_control"]

    def test_contexts_change_tradeoffs(self, hospital):
        prepared = prepare_document(hospital, scheme="ECB")
        policy = secretary_policy()
        card = SecureSession(prepared, policy, context="smartcard").run()
        lan = SecureSession(prepared, policy, context="sw-lan").run()
        assert lan.seconds < card.seconds

    def test_delivered_bytes_counts_text(self):
        from repro.xmlkit.events import Event

        events = [Event(OPEN, "a"), Event(TEXT, "hello"), Event(CLOSE, "a")]
        assert delivered_bytes(events) == 2 + 5 + 1

    def test_lwb_bytes_empty_view(self):
        assert lwb_bytes([]) == 0


class TestTamperingEndToEnd:
    def test_tampered_document_detected_during_session(self, hospital):
        prepared = prepare_document(hospital, scheme="ECB-MHT")
        prepared.secure.stored[len(prepared.secure.stored) // 3] ^= 0x10
        session = SecureSession(prepared, secretary_policy(), use_skip_index=False)
        with pytest.raises(IntegrityError):
            session.run()

    def test_ecb_session_not_protected(self, hospital):
        # Without integrity the pipeline may fail arbitrarily or return
        # garbage, but it must not *silently verify* anything.
        prepared = prepare_document(hospital, scheme="ECB")
        # Tamper inside the document body (the header region before
        # root_offset is SOE-resident and never read back).
        prepared.secure.stored[len(prepared.secure.stored) // 2] ^= 0x01
        session = SecureSession(prepared, secretary_policy(), use_skip_index=False)
        try:
            result = session.run()
        except Exception as error:  # garbled stream: decode errors are fine
            assert not isinstance(error, IntegrityError)
        else:
            assert result.events != reference_authorized_view(
                hospital, secretary_policy()
            )
