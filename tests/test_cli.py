"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main

DOC = "<shop><item><name>x</name><cost>5</cost></item><secret>k</secret></shop>"
KEY = "00112233445566778899aabbccddeeff"


@pytest.fixture()
def xml_file(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text(DOC)
    return str(path)


class TestInspectEncode:
    def test_inspect(self, xml_file, capsys):
        assert main(["inspect", xml_file]) == 0
        out = capsys.readouterr().out
        assert "elements:      5" in out
        assert "TCSBR" in out

    def test_encode_decode_round_trip(self, xml_file, tmp_path, capsys):
        encoded = tmp_path / "doc.xskp"
        assert main(["encode", xml_file, str(encoded)]) == 0
        assert encoded.stat().st_size > 0
        assert main(["decode", str(encoded)]) == 0
        out = capsys.readouterr().out
        # The decoded pretty print contains the original data.
        assert "<name>x</name>" in out
        assert "<secret>k</secret>" in out


class TestProtectView:
    def protect(self, xml_file, tmp_path, scheme="ECB-MHT", capsys=None):
        store = tmp_path / "doc.store"
        assert (
            main(["protect", xml_file, str(store), "--scheme", scheme,
                  "--key", KEY]) == 0
        )
        if capsys is not None:
            capsys.readouterr()  # drain the protect command's output
        return store

    def test_store_header(self, xml_file, tmp_path):
        store = self.protect(xml_file, tmp_path)
        header = json.loads(store.read_bytes().split(b"\n", 1)[0])
        assert header["magic"] == "XPROT1"
        assert header["scheme"] == "ECB-MHT"

    def test_view_with_rules(self, xml_file, tmp_path, capsys):
        store = self.protect(xml_file, tmp_path, capsys=capsys)
        assert (
            main(
                [
                    "view", str(store), "--key", KEY,
                    "--rule=+://item", "--rule=-://secret",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "<name>x</name>" in out
        assert "secret" not in out

    def test_view_with_query(self, xml_file, tmp_path, capsys):
        store = self.protect(xml_file, tmp_path, capsys=capsys)
        assert (
            main(
                [
                    "view", str(store), "--key", KEY,
                    "--rule", "+://shop",
                    "--query", "//item[cost > 10]",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out.strip()
        assert out == ""  # no item matches: empty view

    def test_view_costs_report(self, xml_file, tmp_path, capsys):
        store = self.protect(xml_file, tmp_path)
        assert (
            main(
                ["view", str(store), "--key", KEY, "--rule", "+://item",
                 "--costs"]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "simulated" in err

    def test_view_brute_force_same_result(self, xml_file, tmp_path, capsys):
        store = self.protect(xml_file, tmp_path, capsys=capsys)
        main(["view", str(store), "--key", KEY, "--rule", "+://item"])
        fast = capsys.readouterr().out
        main(["view", str(store), "--key", KEY, "--rule", "+://item",
              "--brute-force"])
        slow = capsys.readouterr().out
        assert fast == slow

    def test_wrong_key_detected(self, xml_file, tmp_path):
        from repro.crypto.integrity import IntegrityError

        store = self.protect(xml_file, tmp_path)
        bad_key = "ff" * 16
        with pytest.raises((IntegrityError, Exception)):
            main(["view", str(store), "--key", bad_key, "--rule", "+://item"])

    def test_bad_rule_syntax(self, xml_file, tmp_path):
        store = self.protect(xml_file, tmp_path)
        with pytest.raises(SystemExit):
            main(["view", str(store), "--key", KEY, "--rule", "oops"])

    def test_bad_key_length(self, xml_file, tmp_path):
        with pytest.raises(SystemExit):
            main(["protect", xml_file, str(tmp_path / "s"), "--key", "abcd"])

    @pytest.mark.parametrize("scheme", ["ECB", "CBC-SHA", "CBC-SHAC", "ECB-MHT"])
    def test_all_schemes_round_trip(self, xml_file, tmp_path, capsys, scheme):
        store = self.protect(xml_file, tmp_path, scheme=scheme, capsys=capsys)
        assert (
            main(["view", str(store), "--key", KEY, "--rule", "+://shop"]) == 0
        )
        out = capsys.readouterr().out
        assert "<cost>5</cost>" in out


class TestOperatorErrorPaths:
    """`repro store` / `repro stats` / `repro top` against broken targets
    must exit with a one-line diagnostic, never a raw traceback."""

    def test_store_inspect_missing_directory(self, tmp_path):
        with pytest.raises(SystemExit) as info:
            main(["store", "inspect", str(tmp_path / "nowhere")])
        assert "not a store directory" in str(info.value)

    def test_store_inspect_locked_directory(self, tmp_path):
        from repro.store import LogStore

        directory = str(tmp_path / "held")
        holder = LogStore(directory)
        try:
            with pytest.raises(SystemExit) as info:
                main(["store", "inspect", directory])
        finally:
            holder.close()
        assert "cannot open store" in str(info.value)

    def test_stats_unreachable_server(self):
        with pytest.raises(SystemExit) as info:
            main(["stats", "127.0.0.1:1", "--connect-retry", "0"])
        assert "cannot reach station at 127.0.0.1:1" in str(info.value)

    def test_top_unreachable_server(self):
        with pytest.raises(SystemExit) as info:
            main(["top", "127.0.0.1:1", "--once", "--connect-retry", "0"])
        assert "cannot reach station at 127.0.0.1:1" in str(info.value)
