"""Tests for the secure-channel provisioning layer."""

import pytest

from repro.accesscontrol.model import AccessRule, Policy
from repro.soe.provisioning import (
    Credential,
    ProvisioningError,
    ProvisioningServer,
    SoeKeyStore,
    deserialize_policy,
    serialize_policy,
)

SECRET = b"channel-secret-0123456789abcdef"
DOC_KEY = bytes(range(16))


def sample_policy(subject="doctor0"):
    return Policy(
        [
            AccessRule("+", "//Folder/Admin", "D1"),
            AccessRule("+", "//MedActs[//RPhys = USER]", "D2"),
            AccessRule("-", "//Act[RPhys != USER]/Details", "D3"),
        ],
        subject=subject,
    )


def server():
    srv = ProvisioningServer(SECRET)
    srv.register_document("folders-2004", DOC_KEY)
    srv.grant("folders-2004", "doctor0", sample_policy())
    return srv


class TestPolicySerialization:
    def test_round_trip(self):
        policy = sample_policy()
        restored = deserialize_policy(serialize_policy(policy))
        assert restored.subject == policy.subject
        assert list(restored.rules) == list(policy.rules)

    def test_dummy_tag_preserved(self):
        policy = Policy([AccessRule("+", "//a")], dummy_tag="_")
        restored = deserialize_policy(serialize_policy(policy))
        assert restored.dummy_tag == "_"

    def test_user_binding_survives(self):
        policy = sample_policy("alice")
        restored = deserialize_policy(serialize_policy(policy))
        # The USER variable was bound to 'alice' before serialization.
        rendered = [str(rule.object) for rule in restored.rules]
        assert any("alice" in text for text in rendered)


class TestIssueInstall:
    def test_end_to_end(self):
        credential = server().issue("folders-2004", "doctor0")
        store = SoeKeyStore(SECRET)
        document_id = store.install(credential, now=100.0)
        assert document_id == "folders-2004"
        assert store.key_for(document_id, now=100.0) == DOC_KEY
        policy = store.policy_for(document_id, now=100.0)
        assert policy.subject == "doctor0"
        assert len(policy) == 3

    def test_unknown_document(self):
        with pytest.raises(ProvisioningError):
            server().issue("nope", "doctor0")

    def test_unknown_subject(self):
        with pytest.raises(ProvisioningError):
            server().issue("folders-2004", "stranger")

    def test_revocation_blocks_new_credentials(self):
        srv = server()
        srv.revoke("folders-2004", "doctor0")
        with pytest.raises(ProvisioningError):
            srv.issue("folders-2004", "doctor0")

    def test_expiry_enforced_at_install(self):
        credential = server().issue("folders-2004", "doctor0", expires_at=50.0)
        store = SoeKeyStore(SECRET)
        with pytest.raises(ProvisioningError):
            store.install(credential, now=100.0)

    def test_expiry_enforced_at_use(self):
        credential = server().issue("folders-2004", "doctor0", expires_at=150.0)
        store = SoeKeyStore(SECRET)
        store.install(credential, now=100.0)
        assert store.key_for("folders-2004", now=120.0) == DOC_KEY
        with pytest.raises(ProvisioningError):
            store.key_for("folders-2004", now=200.0)
        # The expired entry is purged.
        with pytest.raises(ProvisioningError):
            store.policy_for("folders-2004", now=120.0)

    def test_tampered_credential_rejected(self):
        credential = server().issue("folders-2004", "doctor0")
        blob = bytearray(credential.blob)
        blob[len(blob) // 2] ^= 0x01
        store = SoeKeyStore(SECRET)
        with pytest.raises(ProvisioningError):
            store.install(Credential(bytes(blob)), now=0.0)

    def test_wrong_channel_secret_rejected(self):
        credential = server().issue("folders-2004", "doctor0")
        store = SoeKeyStore(b"another-secret-0123456789abcdef")
        with pytest.raises(ProvisioningError):
            store.install(credential, now=0.0)

    def test_credential_is_opaque(self):
        credential = server().issue("folders-2004", "doctor0")
        assert b"doctor0" not in credential.blob
        assert DOC_KEY.hex().encode() not in credential.blob

    def test_short_secret_rejected(self):
        with pytest.raises(ValueError):
            ProvisioningServer(b"short")


class TestProvisionedSession:
    def test_credential_drives_a_real_session(self):
        """Full circle: credential -> key + policy -> SOE session."""
        from repro.datasets import HospitalConfig, generate_hospital
        from repro.soe import SecureSession, prepare_document
        from repro import reference_authorized_view

        doc = generate_hospital(HospitalConfig(folders=6, seed=8))
        srv = ProvisioningServer(SECRET)
        srv.register_document("hospital", DOC_KEY)
        srv.grant("hospital", "doctor0", sample_policy())
        credential = srv.issue("hospital", "doctor0", expires_at=1e9)

        store = SoeKeyStore(SECRET)
        store.install(credential, now=0.0)
        key = store.key_for("hospital", now=0.0)
        policy = store.policy_for("hospital", now=0.0)

        prepared = prepare_document(doc, scheme="ECB-MHT", key=key)
        result = SecureSession(prepared, policy).run()
        assert result.events == reference_authorized_view(doc, policy)
