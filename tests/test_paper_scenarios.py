"""Scenario tests pinned directly to the paper's own examples."""


from repro import AccessRule, Policy, authorized_view, reference_authorized_view
from repro.accesscontrol.evaluator import StreamingEvaluator
from repro.metrics import Meter
from repro.xmlkit import parse_document, serialize_events


def check(xml, rules, subject="", query=None):
    doc = parse_document(xml)
    policy = Policy([AccessRule(s, o) for s, o in rules], subject=subject)
    streamed = authorized_view(doc, policy, query=query)
    reference = reference_authorized_view(doc, policy, query=query)
    assert streamed == reference
    return serialize_events(streamed)


class TestFigure3:
    """The abstract document of Fig. 3: a(b(d,c), b(d,c,b(d,c)))
    with R: +//b[c]/d and S: -//c."""

    XML = "<a><b><d>d1</d><c>c1</c></b><b><d>d2</d><c>c2</c><b><d>d3</d><c>c3</c></b></b></a>"
    RULES = [("+", "//b[c]/d"), ("-", "//c")]

    def test_view(self):
        result = check(self.XML, self.RULES)
        # Every b has a c child, so every d is delivered; every c is
        # denied (negative rule).
        assert result.count("<d>") == 3
        assert "<c>" not in result
        assert "c1" not in result and "c2" not in result and "c3" not in result

    def test_rule_instances_depth_separation(self):
        # Remove the inner b's c: its d loses its witness while the
        # outer instances keep theirs (the depth-labelled token proxies
        # of Section 3.1).
        xml = "<a><b><d>d1</d><c>c1</c></b><b><d>d2</d><c>c2</c><b><d>d3</d></b></b></a>"
        result = check(xml, self.RULES)
        assert "d1" in result and "d2" in result
        assert "d3" not in result

    def test_predicate_suspension_statistics(self):
        # Once c is found under a b, the paper suspends that predicate
        # instance; our meter shows tokens being dropped early.
        doc = parse_document(self.XML)
        policy = Policy([AccessRule(s, o) for s, o in self.RULES])
        meter = Meter()
        evaluator = StreamingEvaluator(policy, meter=meter)
        evaluator.run_events(list(doc.iter_events()), with_index=True)
        assert meter.token_ops > 0


class TestDoctorPolicySemantics:
    """Fig. 1's doctor rules on a hand-built two-patient document."""

    XML = (
        "<Hospital>"
        "<Folder>"
        "  <Admin><SSN>111</SSN></Admin>"
        "  <MedActs>"
        "    <Act><RPhys>house</RPhys><Details><Comments>own act</Comments></Details></Act>"
        "    <Act><RPhys>wilson</RPhys><Details><Comments>foreign act</Comments></Details></Act>"
        "  </MedActs>"
        "  <Analysis><LabResults>data1</LabResults></Analysis>"
        "</Folder>"
        "<Folder>"
        "  <Admin><SSN>222</SSN></Admin>"
        "  <MedActs>"
        "    <Act><RPhys>wilson</RPhys><Details><Comments>not ours</Comments></Details></Act>"
        "  </MedActs>"
        "  <Analysis><LabResults>data2</LabResults></Analysis>"
        "</Folder>"
        "</Hospital>"
    ).replace("  ", "")

    RULES = [
        ("+", "//Folder/Admin"),
        ("+", "//MedActs[//RPhys = USER]"),
        ("-", "//Act[RPhys != USER]/Details"),
        ("+", "//Folder[MedActs//RPhys = USER]/Analysis"),
    ]

    def test_house_view(self):
        result = check(self.XML, self.RULES, subject="house")
        assert "own act" in result  # D2 grants own acts
        assert "foreign act" not in result  # D3 denies foreign details
        assert "not ours" not in result  # folder 2: no house act at all
        assert "data1" in result  # D4: analysis of house's patient
        assert "data2" not in result  # not house's patient
        assert "111" in result and "222" in result  # D1: all admin

    def test_wilson_view(self):
        result = check(self.XML, self.RULES, subject="wilson")
        assert "foreign act" in result  # wilson's own act now
        assert "not ours" in result
        assert "own act" not in result  # house's details hidden
        assert "data1" in result and "data2" in result  # patients overlap


class TestAttributes:
    """Attributes are handled like elements (Section 2): the parser maps
    ``name="v"`` onto synthetic ``@name`` children."""

    XML = '<doc><entry level="public">a</entry><entry level="secret">b</entry></doc>'

    def test_attribute_predicate(self):
        result = check(self.XML, [("+", "//entry[@level = public]")])
        assert ">a<" in result.replace("</", "<")
        assert ">b<" not in result.replace("</", "<")

    def test_attribute_denial(self):
        result = check(self.XML, [("+", "//entry"), ("-", "//@level")])
        assert "a" in result and "b" in result
        assert "public" not in result and "secret" not in result

    def test_attribute_as_query(self):
        result = check(
            self.XML, [("+", "/doc")], query="//entry[@level = secret]"
        )
        assert ">b<" in result.replace("</", "<")
        assert ">a<" not in result.replace("</", "<")


class TestParentalControl:
    """The introduction's parental-control motivation: dynamic,
    subject-specific filtering of content ratings."""

    XML = (
        "<feed>"
        "<story><rating>G</rating><body>kittens</body></story>"
        "<story><rating>R</rating><body>violence</body></story>"
        "<story><body>unrated</body></story>"
        "</feed>"
    )

    def test_child_profile(self):
        result = check(
            self.XML,
            [("+", "//story[rating = G]")],
        )
        assert "kittens" in result
        assert "violence" not in result
        assert "unrated" not in result  # closed policy: unrated blocked

    def test_teen_profile_block_list(self):
        result = check(
            self.XML,
            [("+", "//story"), ("-", "//story[rating = R]")],
        )
        assert "kittens" in result and "unrated" in result
        assert "violence" not in result
