"""Integrity schemes under attack: a small security audit.

Demonstrates Section 6 / Appendix A: position-XOR encryption hides
equal plaintext blocks and defeats block relocation; the Merkle-tree
scheme detects every tampering attempt while transferring only the
fragments the SOE actually reads; plain ECB silently accepts garbage.

Run with::

    python examples/integrity_audit.py
"""

import random

from repro.crypto.integrity import IntegrityError, make_scheme
from repro.datasets import HospitalConfig, generate_hospital, secretary_policy
from repro.metrics import Meter
from repro.soe import SecureSession, prepare_document

KEY = bytes(range(16))


def attack(document, mutate, label: str) -> None:
    """Apply ``mutate`` to a fresh protected copy and try to read it."""
    mutate(document.stored)
    scheme = document.scheme
    reader = scheme.reader(document, Meter())
    try:
        reader.read(0, document.plaintext_size)
    except IntegrityError as error:
        print("  %-28s DETECTED (%s)" % (label, error))
    else:
        print("  %-28s *** NOT DETECTED ***" % label)


def main() -> None:
    rng = random.Random(0)
    plaintext = bytes(rng.randrange(256) for _ in range(6000))

    print("Scheme behaviour under tampering (6 KB document):")
    for name in ["ECB-MHT", "CBC-SHA", "CBC-SHAC"]:
        print("%s:" % name)
        scheme = make_scheme(name, key=KEY)

        def flip_payload(stored):
            stored[len(stored) // 2] ^= 0x20

        def flip_digest(stored):
            stored[1] ^= 0x80

        def swap_blocks(stored):
            a, b = len(stored) // 2, len(stored) // 2 + 8
            stored[a : a + 8], stored[b : b + 8] = (
                stored[b : b + 8],
                stored[a : a + 8],
            )

        attack(scheme.protect(plaintext), flip_payload, "bit flip in payload")
        attack(scheme.protect(plaintext), flip_digest, "bit flip in digest")
        attack(scheme.protect(plaintext), swap_blocks, "ciphertext block swap")

    print("ECB (confidentiality only):")
    scheme = make_scheme("ECB", key=KEY)
    document = scheme.protect(plaintext)
    document.stored[64] ^= 0x01
    data = scheme.reader(document, Meter()).read(0, len(plaintext))
    print(
        "  bit flip in payload          accepted silently "
        "(plaintext garbled: %s)" % (data != plaintext)
    )

    # Equal blocks are hidden even in ECB mode (position XOR):
    repeated = scheme.protect(b"SAMEBLOCK" * 64 + b"\x00" * 7)
    stored = bytes(repeated.stored)
    blocks = {stored[i : i + 8] for i in range(0, 256, 8)}
    print(
        "  equal plaintext blocks map to %d distinct ciphertext blocks"
        % len(blocks)
    )

    # End-to-end: a tampered hospital document cannot serve any view.
    print("\nEnd-to-end detection inside an SOE session:")
    hospital = generate_hospital(HospitalConfig(folders=10, seed=1))
    prepared = prepare_document(hospital, scheme="ECB-MHT", key=KEY)
    prepared.secure.stored[prepared.stored_size // 2] ^= 0x04
    try:
        SecureSession(prepared, secretary_policy(), use_skip_index=False).run()
    except IntegrityError as error:
        print("  session aborted: %s" % error)


if __name__ == "__main__":
    main()
