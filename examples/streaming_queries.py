"""Queries over authorized views + streaming delivery (pull context).

The paper's evaluator can intersect the access-control view with an
XPath query (Section 3.2): the query's predicates are evaluated against
the *authorized* view ("predicates cannot be expressed on denied
elements"), and the result streams out as soon as delivery conditions
resolve — pending parts are reassembled at the right position.

This example shows:

1. a query whose predicate witness is access-controlled,
2. incremental result delivery with ``drain_ready`` while parsing,
3. a pending predicate resolving after the subtree it governs.

Run with::

    python examples/streaming_queries.py
"""

from repro import AccessRule, Policy
from repro.accesscontrol.evaluator import StreamingEvaluator
from repro.accesscontrol.navigation import EventListNavigator
from repro.xmlkit import parse_document, serialize_events
from repro.xmlkit.events import CLOSE, OPEN, TEXT

CATALOG = """
<catalog>
  <item><grade>95</grade><name>alpha</name><cost>9</cost></item>
  <item><grade>42</grade><name>beta</name><cost>12</cost></item>
  <item><grade>77</grade><name>gamma</name><cost>5</cost></item>
</catalog>
"""


def query_on_authorized_view() -> None:
    document = parse_document(CATALOG)
    events = list(document.iter_events())

    open_policy = Policy([AccessRule("+", "/catalog")])
    no_grades = Policy(
        [AccessRule("+", "/catalog"), AccessRule("-", "//grade")]
    )
    query = "//item[grade > 50]"

    for label, policy in [("grades visible", open_policy), ("grades denied", no_grades)]:
        evaluator = StreamingEvaluator(policy, query=query)
        view = evaluator.run_events(events, with_index=True)
        print("%-15s -> %s" % (label, serialize_events(view) or "(empty)"))
    # With grades denied, the query predicate has no authorized witness:
    # the result is empty even though the items themselves are granted.


def incremental_delivery() -> None:
    document = parse_document(CATALOG)
    events = list(document.iter_events())
    # Granting the root lets the evaluator stream it immediately; each
    # item then resolves as soon as its cost element is parsed.
    policy = Policy(
        [AccessRule("+", "/catalog"), AccessRule("-", "//item[cost >= 10]")]
    )

    evaluator = StreamingEvaluator(policy)
    navigator = EventListNavigator(events, provide_meta=True)
    evaluator._reset(navigator)

    print("\nIncremental delivery (cost < 10 items):")
    consumed = 0
    while True:
        item = navigator.next()
        if item is None:
            break
        kind, value, meta = item
        if kind == OPEN:
            evaluator._on_open(value, meta)
        elif kind == TEXT:
            evaluator._on_text(value)
        else:
            evaluator._on_close()
        consumed += 1
        ready = evaluator.result.drain_ready()
        if ready:
            rendered = "".join(
                "<%s>" % e[1] if e[0] == OPEN
                else "</%s>" % e[1] if e[0] == CLOSE
                else e[1]
                for e in ready
            )
            print("  after %2d input events: %s" % (consumed, rendered))
    tail = evaluator.result.finalize()
    if tail:
        print("  at end of document:    %s" % serialize_events(tail))


def pending_reassembly() -> None:
    # The approval flag arrives *after* the payload it governs.
    document = parse_document(
        "<batch>"
        "<job><payload>render frames</payload><approved>yes</approved></job>"
        "<job><payload>delete database</payload><approved>no</approved></job>"
        "</batch>"
    )
    policy = Policy(
        [AccessRule("+", "//job[approved = yes]")]
    )
    evaluator = StreamingEvaluator(policy)
    view = evaluator.run_events(list(document.iter_events()), with_index=True)
    print("\nPending predicate (approved flag after payload):")
    print("  " + serialize_events(view))


if __name__ == "__main__":
    query_on_authorized_view()
    incremental_delivery()
    pending_reassembly()
