"""Quickstart: evaluate access-control rules on an XML document.

Builds a tiny document, attaches a policy of positive and negative
rules, and prints the authorized view — first through the plain
streaming evaluator, then through the full secure pipeline (Skip-index
encoding + encryption + integrity + SOE simulation).

Run with::

    python examples/quickstart.py
"""

from repro import AccessRule, Policy, authorized_view
from repro.soe import SecureSession, prepare_document
from repro.xmlkit import parse_document, serialize_events

DOCUMENT = """
<library>
  <book>
    <title>Streaming XML Security</title>
    <price>42</price>
    <review author="alice">Excellent coverage of smart cards.</review>
    <internal>margin 37%</internal>
  </book>
  <book>
    <title>Databases on Untrusted Servers</title>
    <price>18</price>
    <internal>margin 12%</internal>
  </book>
</library>
"""


def main() -> None:
    document = parse_document(DOCUMENT)

    # <sign, subject, object> rules; the object is an XP{[],*,//} path.
    policy = Policy(
        [
            AccessRule("+", "//book", name="allow-books"),
            AccessRule("-", "//internal", name="hide-internals"),
            AccessRule("-", "//book[price > 40]/review", name="hide-premium-reviews"),
        ],
        subject="visitor",
    )

    # 1. Pure streaming evaluation (no crypto) -------------------------
    view = authorized_view(document, policy)
    print("Authorized view (streaming evaluator):")
    print("  " + serialize_events(view))

    # 2. The same through the secure pipeline of the paper -------------
    prepared = prepare_document(document, scheme="ECB-MHT")
    print(
        "\nEncoded size: %d bytes, stored (encrypted+digests): %d bytes"
        % (prepared.encoded_size, prepared.stored_size)
    )
    session = SecureSession(prepared, policy, context="smartcard")
    result = session.run()
    assert result.events == view, "secure pipeline must agree"
    print("Secure SOE session produced the identical view.")
    print(
        "Simulated smart-card time: %.4f s "
        "(communication %.4f, decryption %.4f, access control %.4f, "
        "integrity %.4f)"
        % (
            result.seconds,
            result.breakdown.communication,
            result.breakdown.decryption,
            result.breakdown.access_control,
            result.breakdown.integrity,
        )
    )
    print(
        "Bytes transferred into the SOE: %d of %d stored (%.0f%% skipped)"
        % (
            result.meter.bytes_transferred,
            prepared.stored_size,
            100.0 * result.meter.skipped_bytes / max(1, prepared.encoded_size),
        )
    )


if __name__ == "__main__":
    main()
