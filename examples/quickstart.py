"""Quickstart: evaluate access-control rules on an XML document.

Builds a tiny document, attaches a policy of positive and negative
rules, and prints the authorized view — first through the plain
streaming evaluator, then through the full secure pipeline (Skip-index
encoding + encryption + integrity + SOE simulation).

Run with::

    python examples/quickstart.py
"""

from repro import AccessRule, DocumentPipeline, Policy, authorized_view, compile_policy
from repro.xmlkit import parse_document, serialize_events

DOCUMENT = """
<library>
  <book>
    <title>Streaming XML Security</title>
    <price>42</price>
    <review author="alice">Excellent coverage of smart cards.</review>
    <internal>margin 37%</internal>
  </book>
  <book>
    <title>Databases on Untrusted Servers</title>
    <price>18</price>
    <internal>margin 12%</internal>
  </book>
</library>
"""


def main() -> None:
    document = parse_document(DOCUMENT)

    # <sign, subject, object> rules; the object is an XP{[],*,//} path.
    policy = Policy(
        [
            AccessRule("+", "//book", name="allow-books"),
            AccessRule("-", "//internal", name="hide-internals"),
            AccessRule("-", "//book[price > 40]/review", name="hide-premium-reviews"),
        ],
        subject="visitor",
    )

    # The rules compile once into a reusable plan (parse + NFA build);
    # everything after this line only walks precompiled automata.
    plan = compile_policy(policy)

    # 1. Pure streaming evaluation (no crypto) -------------------------
    view = authorized_view(document, plan)
    print("Authorized view (streaming evaluator):")
    print("  " + serialize_events(view))

    # 2. The same through the secure pipeline of the paper -------------
    # publisher half: parse -> Skip-index encode -> encrypt/digest
    prepared = DocumentPipeline.publisher(scheme="ECB-MHT").run(
        tree=document
    ).prepared
    print(
        "\nEncoded size: %d bytes, stored (encrypted+digests): %d bytes"
        % (prepared.encoded_size, prepared.stored_size)
    )
    # SOE half: stream-decrypt -> evaluate (with the same plan)
    ctx = DocumentPipeline.consumer(plan, context="smartcard").run(
        prepared=prepared
    )
    assert ctx.view == view, "secure pipeline must agree"
    print("Secure SOE session produced the identical view.")
    print(
        "Simulated smart-card time: %.4f s "
        "(communication %.4f, decryption %.4f, access control %.4f, "
        "integrity %.4f)"
        % (
            ctx.breakdown.total,
            ctx.breakdown.communication,
            ctx.breakdown.decryption,
            ctx.breakdown.access_control,
            ctx.breakdown.integrity,
        )
    )
    print(
        "Bytes transferred into the SOE: %d of %d stored (%.0f%% skipped)"
        % (
            ctx.meter.bytes_transferred,
            prepared.stored_size,
            100.0 * ctx.meter.skipped_bytes / max(1, prepared.encoded_size),
        )
    )
    print(
        "Pipeline stages: "
        + ", ".join(
            "%s %.1f ms" % (name, 1000.0 * seconds)
            for name, seconds in ctx.stage_seconds.items()
        )
    )


if __name__ == "__main__":
    main()
