"""The paper's motivating example: medical folders with three profiles.

Generates the Hospital document of Fig. 1, runs the Secretary, Doctor
and Researcher policies through the secure pipeline, and reports what
each profile sees and what it costs on the simulated smart card —
a miniature of the paper's Section 7 evaluation.

Run with::

    python examples/hospital_views.py
"""

from repro.datasets import (
    HospitalConfig,
    doctor_policy,
    generate_hospital,
    researcher_policy,
    secretary_policy,
)
from repro.soe import SecureSession, prepare_document
from repro.soe.session import lwb_seconds
from repro.xmlkit.events import OPEN, TEXT


def describe_view(events) -> str:
    opens = sum(1 for event in events if event[0] == OPEN)
    text_bytes = sum(len(event[1]) for event in events if event[0] == TEXT)
    tags = sorted({event[1] for event in events if event[0] == OPEN})
    shown = ", ".join(tags[:9]) + ("..." if len(tags) > 9 else "")
    return "%4d elements, %6d text bytes, tags: %s" % (opens, text_bytes, shown)


def main() -> None:
    document = generate_hospital(HospitalConfig(folders=60, doctors=8, seed=2))
    prepared = prepare_document(document, scheme="ECB-MHT")
    print(
        "Hospital document: %d elements, %d bytes encoded, %d bytes stored"
        % (document.count_elements(), prepared.encoded_size, prepared.stored_size)
    )

    profiles = [
        ("Secretary", secretary_policy()),
        ("Doctor (doctor0)", doctor_policy("doctor0")),
        ("Researcher", researcher_policy()),
    ]
    print()
    for name, policy in profiles:
        result = SecureSession(prepared, policy, context="smartcard").run()
        lwb = lwb_seconds(result.events, "smartcard", with_integrity=True)
        print("%-18s %s" % (name, describe_view(result.events)))
        print(
            "%-18s simulated %.3f s (LWB oracle %.3f s, x%.2f), "
            "%d subtrees skipped, %d pending read-backs"
            % (
                "",
                result.seconds,
                lwb,
                result.seconds / lwb if lwb else float("inf"),
                result.meter.skipped_subtrees,
                result.meter.deferred_subtrees,
            )
        )
        print()

    # The Doctor's view depends on the USER binding: compare physicians.
    print("Per-physician view sizes (rule D2 binds USER):")
    for doctor in ["doctor0", "doctor3", "doctor7"]:
        result = SecureSession(prepared, doctor_policy(doctor)).run()
        print(
            "  %-8s -> %5d events, %6d bytes delivered"
            % (doctor, len(result.events), result.result_bytes)
        )


if __name__ == "__main__":
    main()
