"""The paper's motivating example: medical folders with three profiles.

Generates the Hospital document of Fig. 1 and serves the Secretary,
Doctor and Researcher policies from one :class:`repro.engine.
SecureStation` — the multi-client SOE: the document is published once,
each profile's rules compile once into a cached plan, and
``evaluate_many`` answers all three subjects in a single pass over the
encrypted chunks.  A miniature of the paper's Section 7 evaluation,
server edition.

Run with::

    python examples/hospital_views.py
"""

from repro.datasets import (
    HospitalConfig,
    doctor_policy,
    generate_hospital,
    researcher_policy,
    secretary_policy,
)
from repro.engine import SecureStation
from repro.soe.session import lwb_seconds
from repro.xmlkit.events import OPEN, TEXT


def describe_view(events) -> str:
    opens = sum(1 for event in events if event[0] == OPEN)
    text_bytes = sum(len(event[1]) for event in events if event[0] == TEXT)
    tags = sorted({event[1] for event in events if event[0] == OPEN})
    shown = ", ".join(tags[:9]) + ("..." if len(tags) > 9 else "")
    return "%4d elements, %6d text bytes, tags: %s" % (opens, text_bytes, shown)


def main() -> None:
    document = generate_hospital(HospitalConfig(folders=60, doctors=8, seed=2))

    station = SecureStation(context="smartcard")
    prepared = station.publish("hospital", document, scheme="ECB-MHT")
    print(
        "Hospital document: %d elements, %d bytes encoded, %d bytes stored"
        % (document.count_elements(), prepared.encoded_size, prepared.stored_size)
    )

    profiles = [
        ("Secretary", secretary_policy()),
        ("Doctor (doctor0)", doctor_policy("doctor0")),
        ("Researcher", researcher_policy()),
    ]
    print()
    print("Per-request serving (one Skip-index pass per profile):")
    for name, policy in profiles:
        result = station.evaluate("hospital", policy)
        lwb = lwb_seconds(result.events, "smartcard", with_integrity=True)
        print("%-18s %s" % (name, describe_view(result.events)))
        print(
            "%-18s simulated %.3f s (LWB oracle %.3f s, x%.2f), "
            "%d subtrees skipped, %d pending read-backs"
            % (
                "",
                result.seconds,
                lwb,
                result.seconds / lwb if lwb else float("inf"),
                result.meter.skipped_subtrees,
                result.meter.deferred_subtrees,
            )
        )
        print()

    # A whole shift of clients batched: transfer + decrypt + verify the
    # chunks ONCE, then run each cached plan over the decoded stream.
    # Per-request Skip-index passes win for one selective subject; the
    # batch wins as soon as the cohort collectively reads the document.
    cohort = [secretary_policy(), researcher_policy()] + [
        doctor_policy("doctor%d" % index) for index in range(6)
    ]
    batch = station.evaluate_many("hospital", cohort)
    solo_seconds = sum(
        station.evaluate("hospital", policy).seconds for policy in cohort
    )
    print(
        "Batched evaluate_many over %d subjects: %.3f s simulated "
        "(vs %.3f s as %d separate requests)"
        % (len(batch), batch.seconds, solo_seconds, len(cohort))
    )
    cache = station.stats
    print(
        "Plan cache: %d hits / %d misses (policies compiled once, reused since)"
        % (cache.plan_hits, cache.plan_misses)
    )

    # The Doctor's view depends on the USER binding: compare physicians.
    print("\nPer-physician view sizes (rule D2 binds USER):")
    for doctor in ["doctor0", "doctor3", "doctor7"]:
        result = station.evaluate("hospital", doctor_policy(doctor))
        print(
            "  %-8s -> %5d events, %6d bytes delivered"
            % (doctor, len(result.events), result.result_bytes)
        )


if __name__ == "__main__":
    main()
