"""Build (or probe) the native kernel library: ``python -m repro.compute.build``.

The kernels otherwise compile lazily on first use; CI and packaging run
this module as an explicit build step so a broken toolchain surfaces at
build time, not query time.  With ``--require`` a missing/failed build
is an error (the CI leg that *must* have native); without it the
fallback is reported and the exit code stays 0 (the no-compiler leg).
"""

from __future__ import annotations

import argparse
import sys

from repro.compute.native import (
    NO_NATIVE_ENV,
    library_path,
    load_library,
    reset_native_cache,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.compute.build",
        description="compile the native crypto kernels (idempotent)",
    )
    parser.add_argument(
        "--require",
        action="store_true",
        help="fail (exit 1) when the native kernels cannot be built",
    )
    args = parser.parse_args(argv)
    reset_native_cache()
    library = load_library()
    if library is not None:
        print("native kernels ready: %s" % library_path())
        return 0
    print(
        "native kernels unavailable (no C compiler, build failure, or %s "
        "set); the pure-Python backend will be used" % NO_NATIVE_ENV
    )
    return 1 if args.require else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
