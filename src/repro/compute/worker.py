"""Process-pool worker side of the pool compute backend.

Everything here runs inside a forked worker process.  Workers never
receive live scheme or cipher objects (ctypes arrays and backends do
not pickle); they receive the picklable ``scheme.spec()`` tuple and
rebuild the scheme once per (worker, spec) pair, caching the result —
that is the "pre-forked workers holding deserialized key schedules"
piece: the XTEA round schedule / DES subkeys are derived on first use
and then amortized over every subsequent work unit.

``REPRO_POOL_CRASH`` (checked per task, so tests can set it in the
parent before the pool forks) makes every task kill its worker with
``os._exit`` — the hook the degradation tests use to prove a mid-batch
pool crash falls back to the serial path with no failed requests.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.crypto.integrity import scheme_from_spec
from repro.metrics import Meter

#: Env var: when set, worker tasks exit(13) immediately (crash tests).
POOL_CRASH_ENV = "REPRO_POOL_CRASH"

_SCHEME_CACHE: Dict[tuple, object] = {}


def _maybe_crash() -> None:
    if os.environ.get(POOL_CRASH_ENV):
        os._exit(13)


def _scheme_for(spec: tuple):
    scheme = _SCHEME_CACHE.get(spec)
    if scheme is None:
        scheme = scheme_from_spec(spec)
        _SCHEME_CACHE[spec] = scheme
    return scheme


def init_worker() -> None:
    """Pool initializer — a warm-up hook and a fork-sanity marker."""
    _SCHEME_CACHE.clear()


def protect_range(
    spec: tuple, plaintext: bytes, first: int, last: int, version: int
) -> bytes:
    """The concatenated stored records of chunks ``[first, last)``."""
    _maybe_crash()
    scheme = _scheme_for(spec)
    return b"".join(scheme._chunk_records(plaintext, range(first, last), version))


def decrypt_range(
    spec: tuple,
    stored: bytes,
    plaintext_size: int,
    version: int,
    chunk_versions: Optional[List[int]],
    first: int,
    last: int,
) -> Tuple[bytes, Dict[str, int]]:
    """Decrypt + verify the plaintext covered by chunks ``[first, last)``.

    The worker gets the whole stored buffer (chunk records are
    addressed by absolute index, so slicing would break the position
    math) but reads — and therefore decrypts, verifies and meters —
    only its assigned chunk range.  Returns the plaintext slice and the
    meter counts to fold into the caller's meter.
    """
    _maybe_crash()
    scheme = _scheme_for(spec)
    from repro.crypto.integrity import SecureDocument

    document = SecureDocument(
        scheme,
        stored,
        plaintext_size,
        version=version,
        chunk_versions=chunk_versions,
    )
    meter = Meter()
    reader = scheme.reader(document, meter)
    start = first * scheme.layout.chunk_size
    end = min(last * scheme.layout.chunk_size, plaintext_size)
    data = reader.read(start, end - start)
    return data, meter.as_dict()
