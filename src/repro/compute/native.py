"""C-accelerated XTEA / DES block kernels loaded through :mod:`ctypes`.

The SWAR fast paths in :mod:`repro.crypto.xtea` and
:mod:`repro.crypto.modes` top out around 8-10 MB/s on one core: every
half-round is still a handful of arbitrary-precision int operations in
the interpreter.  This module embeds the same kernels as ~200 lines of
C, compiles them once per machine with whatever ``cc`` is on PATH, and
exposes drop-in cipher subclasses (:class:`NativeXtea`,
:class:`NativeDes`, :class:`NativeTripleDes`) whose ``encrypt_blocks``
/ ``decrypt_blocks`` run the whole buffer in native code.

Design constraints, in order:

* **No new dependencies.**  ``ctypes`` ships with CPython; the only
  external tool is a C compiler, and its absence is handled by
  returning ``None`` from :func:`load_library` so callers fall back to
  the pure-Python path.  (``cffi`` is present in some environments but
  buys nothing over ``ctypes`` for four flat functions.)
* **Byte-identical output.**  The Python schedules are the single
  source of truth: Python computes the XTEA round schedule and the DES
  subkeys exactly as the pure classes do and hands the flattened
  arrays to C, which only runs the data path.  The pure SWAR
  implementations stay as the differential-fuzz oracle (see
  ``tests/test_compute.py``), exactly as PR 4 kept the ``*_reference``
  functions.
* **Safe caching.**  The shared object is keyed by a hash of the C
  source and built atomically (compile to a temp name, ``os.replace``)
  in a per-user temp directory, so concurrent processes and source
  upgrades never race or load stale kernels.

Set ``REPRO_NO_NATIVE=1`` to disable the native path entirely (used by
the CI leg that proves the repo works with no compiler present).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import Optional

from repro.crypto.des import Des, TripleDes
from repro.crypto.xtea import Xtea

C_SOURCE = r"""
#include <stddef.h>
#include <stdint.h>

/* ------------------------------------------------------------------ */
/* byte order helpers (the wire format is big-endian)                  */
/* ------------------------------------------------------------------ */
static uint32_t load_be32(const uint8_t *p) {
    return ((uint32_t)p[0] << 24) | ((uint32_t)p[1] << 16)
         | ((uint32_t)p[2] << 8) | (uint32_t)p[3];
}

static void store_be32(uint8_t *p, uint32_t v) {
    p[0] = (uint8_t)(v >> 24);
    p[1] = (uint8_t)(v >> 16);
    p[2] = (uint8_t)(v >> 8);
    p[3] = (uint8_t)v;
}

static uint64_t load_be64(const uint8_t *p) {
    return ((uint64_t)load_be32(p) << 32) | load_be32(p + 4);
}

static void store_be64(uint8_t *p, uint64_t v) {
    store_be32(p, (uint32_t)(v >> 32));
    store_be32(p + 4, (uint32_t)v);
}

/* ------------------------------------------------------------------ */
/* XTEA: the schedule (rounds x {first, second}) is precomputed by     */
/* Python exactly as repro.crypto.xtea does, so the data path below    */
/* matches Xtea.encrypt_block bit for bit.                             */
/* ------------------------------------------------------------------ */
void xtea_encrypt_blocks(uint8_t *buf, size_t nblocks,
                         const uint32_t *schedule, int rounds) {
    for (size_t b = 0; b < nblocks; b++) {
        uint8_t *p = buf + 8 * b;
        uint32_t v0 = load_be32(p);
        uint32_t v1 = load_be32(p + 4);
        for (int r = 0; r < rounds; r++) {
            v0 += ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ schedule[2 * r]);
            v1 += ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ schedule[2 * r + 1]);
        }
        store_be32(p, v0);
        store_be32(p + 4, v1);
    }
}

/* schedule here is the REVERSED cycle order (Python's _schedule_rev), */
/* still flattened as {first, second} pairs.                           */
void xtea_decrypt_blocks(uint8_t *buf, size_t nblocks,
                         const uint32_t *schedule, int rounds) {
    for (size_t b = 0; b < nblocks; b++) {
        uint8_t *p = buf + 8 * b;
        uint32_t v0 = load_be32(p);
        uint32_t v1 = load_be32(p + 4);
        for (int r = 0; r < rounds; r++) {
            v1 -= ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ schedule[2 * r + 1]);
            v0 -= ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ schedule[2 * r]);
        }
        store_be32(p, v0);
        store_be32(p + 4, v1);
    }
}

/* Positioned mode E_k(b XOR p): each block is XORed with its absolute  */
/* big-endian 64-bit byte position before encryption (after, for        */
/* decryption).  Positions advance by 8 per block and wrap modulo 2^64  */
/* exactly like the Python mask arithmetic.                             */
void xtea_encrypt_positioned(uint8_t *buf, size_t nblocks,
                             const uint32_t *schedule, int rounds,
                             uint64_t position) {
    for (size_t b = 0; b < nblocks; b++, position += 8) {
        uint8_t *p = buf + 8 * b;
        uint32_t v0 = load_be32(p) ^ (uint32_t)(position >> 32);
        uint32_t v1 = load_be32(p + 4) ^ (uint32_t)position;
        for (int r = 0; r < rounds; r++) {
            v0 += ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ schedule[2 * r]);
            v1 += ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ schedule[2 * r + 1]);
        }
        store_be32(p, v0);
        store_be32(p + 4, v1);
    }
}

void xtea_decrypt_positioned(uint8_t *buf, size_t nblocks,
                             const uint32_t *schedule, int rounds,
                             uint64_t position) {
    for (size_t b = 0; b < nblocks; b++, position += 8) {
        uint8_t *p = buf + 8 * b;
        uint32_t v0 = load_be32(p);
        uint32_t v1 = load_be32(p + 4);
        for (int r = 0; r < rounds; r++) {
            v1 -= ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ schedule[2 * r + 1]);
            v0 -= ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ schedule[2 * r]);
        }
        store_be32(p, v0 ^ (uint32_t)(position >> 32));
        store_be32(p + 4, v1 ^ (uint32_t)position);
    }
}

/* CBC is inherently sequential, which is exactly why it belongs in C:  */
/* the chain dependency defeats the SWAR trick but costs nothing here.  */
void xtea_encrypt_cbc(uint8_t *buf, size_t nblocks,
                      const uint32_t *schedule, int rounds,
                      const uint8_t *iv) {
    uint32_t c0 = load_be32(iv);
    uint32_t c1 = load_be32(iv + 4);
    for (size_t b = 0; b < nblocks; b++) {
        uint8_t *p = buf + 8 * b;
        uint32_t v0 = load_be32(p) ^ c0;
        uint32_t v1 = load_be32(p + 4) ^ c1;
        for (int r = 0; r < rounds; r++) {
            v0 += ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ schedule[2 * r]);
            v1 += ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ schedule[2 * r + 1]);
        }
        store_be32(p, v0);
        store_be32(p + 4, v1);
        c0 = v0;
        c1 = v1;
    }
}

/* ------------------------------------------------------------------ */
/* DES (FIPS 46-3).  Tables mirror repro.crypto.des; the 16 48-bit     */
/* subkeys per pass come precomputed from Python, so the C side never  */
/* touches PC-1/PC-2.  passes=1 is single DES; passes=3 with the       */
/* appropriate subkey ordering is 3DES EDE (see NativeTripleDes).      */
/* ------------------------------------------------------------------ */
static const uint8_t DES_IP[64] = {
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
};
static const uint8_t DES_FP[64] = {
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9, 49, 17, 57, 25,
};
static const uint8_t DES_E[48] = {
    32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9, 8, 9, 10, 11,
    12, 13, 12, 13, 14, 15, 16, 17, 16, 17, 18, 19, 20, 21, 20, 21,
    22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
};
static const uint8_t DES_P[32] = {
    16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10,
    2, 8, 24, 14, 32, 27, 3, 9, 19, 13, 30, 6, 22, 11, 4, 25,
};
static const uint8_t DES_SBOX[8][64] = {
    {
        14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7,
        0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8,
        4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0,
        15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
    },
    {
        15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10,
        3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5,
        0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15,
        13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
    },
    {
        10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8,
        13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1,
        13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7,
        1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
    },
    {
        7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15,
        13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9,
        10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4,
        3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
    },
    {
        2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9,
        14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6,
        4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14,
        11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
    },
    {
        12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11,
        10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8,
        9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6,
        4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
    },
    {
        4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1,
        13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6,
        1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2,
        6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
    },
    {
        13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7,
        1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2,
        7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8,
        2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11,
    },
};

/* Combined S-box + P permutation, built once by repro_native_init().  */
static uint32_t des_sp[8][64];

static uint64_t permute64(uint64_t value, const uint8_t *table, int n) {
    uint64_t out = 0;
    for (int i = 0; i < n; i++)
        out = (out << 1) | ((value >> (64 - table[i])) & 1);
    return out;
}

void repro_native_init(void) {
    for (int box = 0; box < 8; box++) {
        for (int chunk = 0; chunk < 64; chunk++) {
            int row = ((chunk & 0x20) >> 4) | (chunk & 1);
            int col = (chunk >> 1) & 0xF;
            uint32_t val =
                (uint32_t)DES_SBOX[box][16 * row + col] << (28 - 4 * box);
            uint32_t out = 0;
            for (int i = 0; i < 32; i++)
                out = (out << 1) | ((val >> (32 - DES_P[i])) & 1);
            des_sp[box][chunk] = out;
        }
    }
}

static uint32_t des_feistel(uint32_t half, uint64_t subkey) {
    uint64_t expanded = 0;
    for (int i = 0; i < 48; i++)
        expanded = (expanded << 1) | ((half >> (32 - DES_E[i])) & 1);
    expanded ^= subkey;
    return des_sp[0][(expanded >> 42) & 0x3F]
         | des_sp[1][(expanded >> 36) & 0x3F]
         | des_sp[2][(expanded >> 30) & 0x3F]
         | des_sp[3][(expanded >> 24) & 0x3F]
         | des_sp[4][(expanded >> 18) & 0x3F]
         | des_sp[5][(expanded >> 12) & 0x3F]
         | des_sp[6][(expanded >> 6) & 0x3F]
         | des_sp[7][expanded & 0x3F];
}

/* subkeys holds `passes` consecutive groups of 16; encryption vs       */
/* decryption (and the EDE composition) is purely a matter of which     */
/* groups the caller passes and in what order.                          */
static uint64_t des_crypt_one(uint64_t value,
                              const uint64_t *subkeys, int passes) {
    for (int pass = 0; pass < passes; pass++) {
        const uint64_t *keys = subkeys + 16 * pass;
        uint64_t v = permute64(value, DES_IP, 64);
        uint32_t left = (uint32_t)(v >> 32);
        uint32_t right = (uint32_t)v;
        for (int r = 0; r < 16; r++) {
            uint32_t next = left ^ des_feistel(right, keys[r]);
            left = right;
            right = next;
        }
        value = permute64(((uint64_t)right << 32) | left, DES_FP, 64);
    }
    return value;
}

void des_crypt_blocks(uint8_t *buf, size_t nblocks,
                      const uint64_t *subkeys, int passes) {
    for (size_t b = 0; b < nblocks; b++) {
        uint8_t *p = buf + 8 * b;
        store_be64(p, des_crypt_one(load_be64(p), subkeys, passes));
    }
}

/* xor_after=0 XORs the position before the cipher (encrypt direction); */
/* xor_after=1 XORs it after (decrypt direction).                       */
void des_crypt_positioned(uint8_t *buf, size_t nblocks,
                          const uint64_t *subkeys, int passes,
                          uint64_t position, int xor_after) {
    for (size_t b = 0; b < nblocks; b++, position += 8) {
        uint8_t *p = buf + 8 * b;
        uint64_t value = load_be64(p);
        if (!xor_after)
            value ^= position;
        value = des_crypt_one(value, subkeys, passes);
        if (xor_after)
            value ^= position;
        store_be64(p, value);
    }
}
"""

#: Set to any non-empty value to refuse the native path (CI fallback leg).
NO_NATIVE_ENV = "REPRO_NO_NATIVE"

_UNSET = object()
_LIB = _UNSET
_LIB_LOCK = threading.Lock()


def _cache_dir() -> Path:
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return Path(tempfile.gettempdir()) / ("repro-native-%d" % uid)


def _compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _build_library() -> Optional[ctypes.CDLL]:
    if os.environ.get(NO_NATIVE_ENV):
        return None
    cc = _compiler()
    if cc is None:
        return None
    digest = hashlib.sha256(C_SOURCE.encode("utf-8")).hexdigest()[:16]
    directory = _cache_dir()
    try:
        directory.mkdir(mode=0o700, parents=True, exist_ok=True)
    except OSError:
        return None
    lib_path = directory / ("repro_kernels_%s.so" % digest)
    if not lib_path.exists():
        source_path = directory / ("repro_kernels_%s.c" % digest)
        build_path = directory / (
            "repro_kernels_%s.%d.tmp" % (digest, os.getpid())
        )
        try:
            source_path.write_text(C_SOURCE)
            result = subprocess.run(
                [cc, "-O2", "-shared", "-fPIC", "-o", str(build_path),
                 str(source_path)],
                capture_output=True,
                timeout=120,
            )
            if result.returncode != 0:
                return None
            # Atomic publish: concurrent builders race harmlessly, the
            # last replace wins and every .so is equivalent.
            os.replace(build_path, lib_path)
        except (OSError, subprocess.SubprocessError):
            return None
        finally:
            if build_path.exists():
                try:
                    build_path.unlink()
                except OSError:
                    pass
    try:
        lib = ctypes.CDLL(str(lib_path))
    except OSError:
        return None
    lib.xtea_encrypt_blocks.argtypes = (
        ctypes.c_char_p, ctypes.c_size_t,
        ctypes.POINTER(ctypes.c_uint32), ctypes.c_int,
    )
    lib.xtea_encrypt_blocks.restype = None
    lib.xtea_decrypt_blocks.argtypes = lib.xtea_encrypt_blocks.argtypes
    lib.xtea_decrypt_blocks.restype = None
    lib.xtea_encrypt_cbc.argtypes = (
        ctypes.c_char_p, ctypes.c_size_t,
        ctypes.POINTER(ctypes.c_uint32), ctypes.c_int, ctypes.c_char_p,
    )
    lib.xtea_encrypt_cbc.restype = None
    lib.xtea_encrypt_positioned.argtypes = (
        ctypes.c_char_p, ctypes.c_size_t,
        ctypes.POINTER(ctypes.c_uint32), ctypes.c_int, ctypes.c_uint64,
    )
    lib.xtea_encrypt_positioned.restype = None
    lib.xtea_decrypt_positioned.argtypes = lib.xtea_encrypt_positioned.argtypes
    lib.xtea_decrypt_positioned.restype = None
    lib.des_crypt_blocks.argtypes = (
        ctypes.c_char_p, ctypes.c_size_t,
        ctypes.POINTER(ctypes.c_uint64), ctypes.c_int,
    )
    lib.des_crypt_blocks.restype = None
    lib.des_crypt_positioned.argtypes = (
        ctypes.c_char_p, ctypes.c_size_t,
        ctypes.POINTER(ctypes.c_uint64), ctypes.c_int,
        ctypes.c_uint64, ctypes.c_int,
    )
    lib.des_crypt_positioned.restype = None
    lib.repro_native_init.argtypes = ()
    lib.repro_native_init.restype = None
    lib.repro_native_init()
    return lib


def load_library() -> Optional[ctypes.CDLL]:
    """The compiled kernel library, or ``None`` when unavailable.

    The result (including a failed build) is memoized; use
    :func:`reset_native_cache` to re-probe after changing the
    environment (tests do this around ``REPRO_NO_NATIVE``).
    """
    global _LIB
    if _LIB is _UNSET:
        with _LIB_LOCK:
            if _LIB is _UNSET:
                _LIB = _build_library()
    return _LIB  # type: ignore[return-value]


def native_available() -> bool:
    return load_library() is not None


def library_path() -> Optional[str]:
    lib = load_library()
    return getattr(lib, "_name", None) if lib is not None else None


def reset_native_cache() -> None:
    """Forget the memoized library so the next call re-probes."""
    global _LIB
    with _LIB_LOCK:
        _LIB = _UNSET


def _flatten_schedule(schedule) -> "ctypes.Array":
    flat = []
    for first, second in schedule:
        flat.append(first)
        flat.append(second)
    return (ctypes.c_uint32 * len(flat))(*flat)


class NativeXtea(Xtea):
    """XTEA whose whole-buffer paths run in the C kernel.

    The schedule comes from the pure-Python constructor, so per-block
    output is bit-identical to :class:`~repro.crypto.xtea.Xtea`; only
    the buffer loops move to C.
    """

    def __init__(self, key: bytes, rounds: int = 32):
        super().__init__(key, rounds)
        lib = load_library()
        if lib is None:
            raise RuntimeError("native kernels are not available")
        self._lib = lib
        self._c_schedule = _flatten_schedule(self._schedule)
        self._c_schedule_rev = _flatten_schedule(self._schedule_rev)

    def encrypt_blocks(self, data: bytes) -> bytes:
        if len(data) % 8:
            raise ValueError("buffer length must be a multiple of 8")
        if not data:
            return b""
        buf = ctypes.create_string_buffer(bytes(data), len(data))
        self._lib.xtea_encrypt_blocks(
            buf, len(data) // 8, self._c_schedule, self.rounds
        )
        return buf.raw

    def decrypt_blocks(self, data: bytes) -> bytes:
        if len(data) % 8:
            raise ValueError("buffer length must be a multiple of 8")
        if not data:
            return b""
        buf = ctypes.create_string_buffer(bytes(data), len(data))
        self._lib.xtea_decrypt_blocks(
            buf, len(data) // 8, self._c_schedule_rev, self.rounds
        )
        return buf.raw

    def encrypt_cbc(self, data: bytes, iv: bytes) -> bytes:
        """Whole-buffer CBC chain (hooked by :func:`modes.encrypt_cbc`)."""
        if len(data) % 8:
            raise ValueError("buffer length must be a multiple of 8")
        if len(iv) != 8:
            raise ValueError("IV must be 8 bytes")
        if not data:
            return b""
        buf = ctypes.create_string_buffer(bytes(data), len(data))
        self._lib.xtea_encrypt_cbc(
            buf, len(data) // 8, self._c_schedule, self.rounds, bytes(iv)
        )
        return buf.raw

    def encrypt_positioned(self, data: bytes, start_position: int) -> bytes:
        """Whole-buffer E_k(b XOR p) (hooked by
        :func:`modes.encrypt_positioned`)."""
        if len(data) % 8:
            raise ValueError("buffer length must be a multiple of 8")
        if not data:
            return b""
        buf = ctypes.create_string_buffer(bytes(data), len(data))
        self._lib.xtea_encrypt_positioned(
            buf, len(data) // 8, self._c_schedule, self.rounds,
            start_position & 0xFFFFFFFFFFFFFFFF,
        )
        return buf.raw

    def decrypt_positioned(self, data: bytes, start_position: int) -> bytes:
        if len(data) % 8:
            raise ValueError("buffer length must be a multiple of 8")
        if not data:
            return b""
        buf = ctypes.create_string_buffer(bytes(data), len(data))
        self._lib.xtea_decrypt_positioned(
            buf, len(data) // 8, self._c_schedule_rev, self.rounds,
            start_position & 0xFFFFFFFFFFFFFFFF,
        )
        return buf.raw


def _subkey_array(*groups) -> "ctypes.Array":
    flat = [subkey for group in groups for subkey in group]
    return (ctypes.c_uint64 * len(flat))(*flat)


class NativeDes(Des):
    """Single DES with whole-buffer kernels (subkeys from Python)."""

    def __init__(self, key: bytes):
        super().__init__(key)
        lib = load_library()
        if lib is None:
            raise RuntimeError("native kernels are not available")
        self._lib = lib
        self._c_enc = _subkey_array(self._subkeys)
        self._c_dec = _subkey_array(self._subkeys_rev)

    def _crypt_blocks(self, data: bytes, subkeys, passes: int) -> bytes:
        if len(data) % 8:
            raise ValueError("buffer length must be a multiple of 8")
        if not data:
            return b""
        buf = ctypes.create_string_buffer(bytes(data), len(data))
        self._lib.des_crypt_blocks(buf, len(data) // 8, subkeys, passes)
        return buf.raw

    def _crypt_positioned(
        self, data: bytes, subkeys, passes: int, position: int, xor_after: int
    ) -> bytes:
        if len(data) % 8:
            raise ValueError("buffer length must be a multiple of 8")
        if not data:
            return b""
        buf = ctypes.create_string_buffer(bytes(data), len(data))
        self._lib.des_crypt_positioned(
            buf, len(data) // 8, subkeys, passes,
            position & 0xFFFFFFFFFFFFFFFF, xor_after,
        )
        return buf.raw

    def encrypt_blocks(self, data: bytes) -> bytes:
        return self._crypt_blocks(data, self._c_enc, 1)

    def decrypt_blocks(self, data: bytes) -> bytes:
        return self._crypt_blocks(data, self._c_dec, 1)

    def encrypt_positioned(self, data: bytes, start_position: int) -> bytes:
        return self._crypt_positioned(data, self._c_enc, 1, start_position, 0)

    def decrypt_positioned(self, data: bytes, start_position: int) -> bytes:
        return self._crypt_positioned(data, self._c_dec, 1, start_position, 1)


class NativeTripleDes(TripleDes):
    """3DES EDE as three native passes with the composed subkey order."""

    def __init__(self, key: bytes):
        super().__init__(key)
        lib = load_library()
        if lib is None:
            raise RuntimeError("native kernels are not available")
        self._lib = lib
        # encrypt: E(k1) then D(k2) then E(k3); decrypt reverses it.
        self._c_enc = _subkey_array(
            self._first._subkeys,
            self._second._subkeys_rev,
            self._third._subkeys,
        )
        self._c_dec = _subkey_array(
            self._third._subkeys_rev,
            self._second._subkeys,
            self._first._subkeys_rev,
        )

    def _crypt_blocks(self, data: bytes, subkeys) -> bytes:
        if len(data) % 8:
            raise ValueError("buffer length must be a multiple of 8")
        if not data:
            return b""
        buf = ctypes.create_string_buffer(bytes(data), len(data))
        self._lib.des_crypt_blocks(buf, len(data) // 8, subkeys, 3)
        return buf.raw

    def _crypt_positioned(
        self, data: bytes, subkeys, position: int, xor_after: int
    ) -> bytes:
        if len(data) % 8:
            raise ValueError("buffer length must be a multiple of 8")
        if not data:
            return b""
        buf = ctypes.create_string_buffer(bytes(data), len(data))
        self._lib.des_crypt_positioned(
            buf, len(data) // 8, subkeys, 3,
            position & 0xFFFFFFFFFFFFFFFF, xor_after,
        )
        return buf.raw

    def encrypt_blocks(self, data: bytes) -> bytes:
        return self._crypt_blocks(data, self._c_enc)

    def decrypt_blocks(self, data: bytes) -> bytes:
        return self._crypt_blocks(data, self._c_dec)

    def encrypt_positioned(self, data: bytes, start_position: int) -> bytes:
        return self._crypt_positioned(data, self._c_enc, start_position, 0)

    def decrypt_positioned(self, data: bytes, start_position: int) -> bytes:
        return self._crypt_positioned(data, self._c_dec, start_position, 1)


_NATIVE_CLASSES = {Xtea: NativeXtea, Des: NativeDes, TripleDes: NativeTripleDes}


def native_factory(base):
    """Map a pure cipher factory to its native twin when one exists.

    Unknown factories (and the native classes themselves) pass through
    unchanged, so a custom cipher plugged into ``make_scheme`` keeps
    working on every backend.
    """
    if not native_available():
        return base
    return _NATIVE_CLASSES.get(base, base)
