"""The pluggable compute backends behind the crypto hot paths.

Three implementations of one small contract (:class:`ComputeBackend`):

* :class:`PureBackend` — the existing pure-Python SWAR fast paths,
  always available, and the oracle every other backend is fuzzed
  against;
* :class:`NativeBackend` — same call graph, but cipher factories are
  swapped for the C-kernel twins of :mod:`repro.compute.native`;
* :class:`PoolBackend` — fans whole-document work (publish
  re-encryption, chunk decryption, the decode feeding
  ``evaluate_many``) across a pre-forked ``ProcessPoolExecutor``.

The fallback ladder is strict and silent in production: a pool crash
or pickling failure makes the hook return ``None`` and the caller
reruns the exact same work on the serial in-process path, so a dying
worker can never fail a request — it only costs the speedup (and
increments ``stats["fallbacks"]`` so tests and benches can see it).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Optional

from repro.compute.native import native_available, native_factory
from repro.crypto.chunks import partition_chunks


class BackendUnavailable(RuntimeError):
    """An explicitly requested backend cannot run here."""


class ComputeBackend:
    """Contract between the schemes/station and an execution strategy.

    ``cipher_factory`` may substitute an accelerated cipher class;
    ``protect_document`` / ``decrypt_document`` may take over a whole
    document's worth of work and return its result, or return ``None``
    to decline — in which case the caller runs the serial path.  All
    backends are byte-identical by construction; only speed differs.
    """

    name = "base"

    def __init__(self):
        self.stats: Dict[str, int] = {"batches": 0, "fallbacks": 0, "chunks": 0}

    def cipher_factory(self, base):
        return base

    def protect_document(self, scheme, plaintext: bytes, version: int):
        return None

    def decrypt_document(self, scheme, document, meter):
        return None

    def close(self) -> None:
        pass

    def describe(self) -> Dict[str, object]:
        """Wire-safe self-description: backend name, counters, and
        whether the C kernels are actually loadable *here* — surfaced
        through the STATS frame so a gateway (and ``repro top``) can
        show a backend silently degraded to the serial/pure path."""
        info: Dict[str, object] = {"name": self.name}
        info.update(self.stats)
        info["native_kernels"] = bool(native_available())
        return info

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "%s(%r)" % (type(self).__name__, self.name)


class PureBackend(ComputeBackend):
    """The in-process pure-Python fast paths — the universal fallback."""

    name = "pure"


class NativeBackend(ComputeBackend):
    """In-process execution on the compiled C kernels."""

    name = "native"

    def __init__(self):
        super().__init__()
        if not native_available():
            raise BackendUnavailable(
                "native kernels unavailable (no C compiler, build failure, "
                "or REPRO_NO_NATIVE set)"
            )

    def cipher_factory(self, base):
        return native_factory(base)


class PoolBackend(ComputeBackend):
    """Pre-forked worker pool for whole-document fan-out.

    Work units are contiguous chunk ranges (chunk records are
    independent for every scheme whose ``spec()`` is picklable), sized
    at a few units per worker so stragglers even out, and reassembled
    in order by plain concatenation.  Ciphers in the parent still use
    the native kernels when available, so small documents that stay
    below the fan-out threshold lose nothing.
    """

    name = "pool"

    #: Documents below this many chunks are not worth a round of IPC.
    min_chunks = 8
    #: Work units submitted per worker (keeps the pool busy to the end).
    units_per_worker = 4

    def __init__(self, workers: Optional[int] = None):
        super().__init__()
        self.workers = workers if workers else (os.cpu_count() or 2)
        self._executor: Optional[ProcessPoolExecutor] = None

    def cipher_factory(self, base):
        return native_factory(base)

    # ------------------------------------------------------------------
    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            from repro.compute.worker import init_worker

            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, initializer=init_worker
            )
        return self._executor

    def _discard_pool(self) -> None:
        executor = self._executor
        self._executor = None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        self._discard_pool()

    def _ranges(self, chunk_count: int):
        if chunk_count < self.min_chunks:
            return None
        ranges = partition_chunks(chunk_count, self.workers * self.units_per_worker)
        return ranges if len(ranges) > 1 else None

    # ------------------------------------------------------------------
    def protect_document(self, scheme, plaintext: bytes, version: int):
        spec = scheme.spec()
        if spec is None:
            return None
        count = scheme.layout.chunk_count(len(plaintext))
        ranges = self._ranges(count)
        if ranges is None:
            return None
        from repro.compute.worker import protect_range
        from repro.crypto.integrity import SecureDocument

        plaintext = bytes(plaintext)
        try:
            futures = [
                self._pool().submit(
                    protect_range, spec, plaintext, first, last, version
                )
                for first, last in ranges
            ]
            parts = [future.result() for future in futures]
        except Exception:
            # BrokenProcessPool, pickling trouble, … — the caller
            # reruns serially; the dead pool is replaced lazily.
            self.stats["fallbacks"] += 1
            self._discard_pool()
            return None
        self.stats["batches"] += 1
        self.stats["chunks"] += count
        return SecureDocument(
            scheme, b"".join(parts), len(plaintext), version=version
        )

    def decrypt_document(self, scheme, document, meter):
        spec = scheme.spec()
        if spec is None:
            return None
        count = scheme.layout.chunk_count(document.plaintext_size)
        ranges = self._ranges(count)
        if ranges is None:
            return None
        from repro.compute.worker import decrypt_range

        stored = bytes(document.stored)
        chunk_versions = list(document.chunk_versions)
        try:
            futures = [
                self._pool().submit(
                    decrypt_range,
                    spec,
                    stored,
                    document.plaintext_size,
                    document.version,
                    chunk_versions,
                    first,
                    last,
                )
                for first, last in ranges
            ]
            results = [future.result() for future in futures]
        except Exception:
            self.stats["fallbacks"] += 1
            self._discard_pool()
            return None
        out = bytearray()
        for data, counts in results:
            out.extend(data)
            for field, value in counts.items():
                setattr(meter, field, getattr(meter, field) + value)
        self.stats["batches"] += 1
        self.stats["chunks"] += count
        return bytes(out)
