"""Pluggable execution backends for the crypto/evaluation hot paths.

Selection: ``SecureStation(backend=...)`` / ``repro serve --backend``
accept ``"pure"``, ``"native"``, ``"pool"``, ``"auto"`` (or ``None``),
or an already-constructed :class:`ComputeBackend`.  Auto-detection
prefers the native C kernels when a compiler is (or was) available and
falls back to pure Python otherwise; the pool backend is never
auto-selected — fan-out across processes is a deployment decision.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.compute.backends import (
    BackendUnavailable,
    ComputeBackend,
    NativeBackend,
    PoolBackend,
    PureBackend,
)
from repro.compute.native import native_available, reset_native_cache

BACKEND_NAMES = ("pure", "native", "pool")


def auto_backend() -> ComputeBackend:
    """Fastest always-safe in-process backend for this machine."""
    if native_available():
        return NativeBackend()
    return PureBackend()


def resolve_backend(
    spec: Union[None, str, ComputeBackend],
) -> ComputeBackend:
    """Turn a backend selector into a live backend instance.

    ``None`` / ``"auto"`` auto-detect; explicit names are strict —
    asking for ``"native"`` on a machine without the kernels raises
    :class:`BackendUnavailable` instead of silently degrading.
    """
    if isinstance(spec, ComputeBackend):
        return spec
    if spec is None or spec == "auto":
        return auto_backend()
    if spec == "pure":
        return PureBackend()
    if spec == "native":
        return NativeBackend()
    if spec == "pool":
        return PoolBackend()
    raise ValueError(
        "unknown compute backend %r (expected one of %s, 'auto', or a "
        "ComputeBackend instance)" % (spec, ", ".join(BACKEND_NAMES))
    )


def available_backends() -> List[str]:
    """Names of the backends constructible on this machine."""
    names = ["pure"]
    if native_available():
        names.append("native")
    names.append("pool")
    return names


__all__ = [
    "BACKEND_NAMES",
    "BackendUnavailable",
    "ComputeBackend",
    "NativeBackend",
    "PoolBackend",
    "PureBackend",
    "auto_backend",
    "available_backends",
    "native_available",
    "reset_native_cache",
    "resolve_backend",
]
