"""Consistent-hash ring with virtual nodes (the cluster's placement).

The partition key of the whole cluster layer is the *document id*: the
paper's server is untrusted and stateless per request, so any backend
holding a copy of the encrypted document can serve it, and the only
placement question is "which R of the N backends hold document d?".
A consistent-hash ring answers it with the two properties the gateway
needs:

* **determinism** — every component (gateway, topology bootstrap,
  tests) derives the same placement from the same member set, with no
  coordination;
* **minimal movement** — a node joining or leaving moves only the keys
  that hash between it and its ring predecessor, i.e. ~1/N of the key
  space, instead of reshuffling everything (the classic argument from
  consistent hashing; see also the warehouse auto-partitioning line of
  work in PAPERS.md).

Virtual nodes smooth the load: each member is hashed ``vnodes`` times
onto the ring, so the arc a single member owns is the union of many
small arcs and the per-member key share concentrates around 1/N.

The hash is SHA-1 over UTF-8 — stable across processes and Python
versions (``hash()`` is salted per process and would desynchronize the
gateway from the bootstrap).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple


def stable_hash(data: str) -> int:
    """64-bit stable hash of ``data`` (SHA-1 prefix)."""
    return int.from_bytes(
        hashlib.sha1(data.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Consistent-hash ring mapping keys to an ordered preference list.

    ``preference(key, n)`` returns the first ``n`` *distinct* members
    clockwise from the key's position: entry 0 is the primary, the
    rest are the replicas in failover order.  Removing a member makes
    the next member in the preference list the new primary for the
    keys it owned — exactly the failover the gateway performs.
    """

    def __init__(self, members: Iterable[str] = (), vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: List[Tuple[int, str]] = []
        self._hashes: List[int] = []
        self._members: Dict[str, None] = {}
        for member in members:
            self.add(member)

    # ------------------------------------------------------------------
    @property
    def members(self) -> List[str]:
        """Current members, in insertion order."""
        return list(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    # ------------------------------------------------------------------
    def add(self, member: str) -> None:
        """Add ``member`` (``vnodes`` points); no-op when present."""
        if member in self._members:
            return
        self._members[member] = None
        for index in range(self.vnodes):
            point = stable_hash("%s#%d" % (member, index))
            at = bisect.bisect_left(self._hashes, point)
            # SHA-1 collisions between distinct vnode labels are not a
            # practical concern; ties break by insertion position.
            self._hashes.insert(at, point)
            self._points.insert(at, (point, member))

    def remove(self, member: str) -> None:
        """Remove ``member`` and all its points; no-op when absent."""
        if member not in self._members:
            return
        del self._members[member]
        keep = [entry for entry in self._points if entry[1] != member]
        self._points = keep
        self._hashes = [point for point, _member in keep]

    # ------------------------------------------------------------------
    def primary(self, key: str) -> str:
        """The member owning ``key`` (first clockwise point)."""
        preference = self.preference(key, 1)
        if not preference:
            raise LookupError("hash ring is empty")
        return preference[0]

    def preference(self, key: str, n: int) -> List[str]:
        """The first ``n`` distinct members clockwise from ``key``.

        Fewer than ``n`` members on the ring returns them all; an
        empty ring returns ``[]``.
        """
        if not self._points or n < 1:
            return []
        want = min(n, len(self._members))
        start = bisect.bisect_right(self._hashes, stable_hash(key))
        chosen: List[str] = []
        seen = set()
        total = len(self._points)
        for step in range(total):
            member = self._points[(start + step) % total][1]
            if member not in seen:
                seen.add(member)
                chosen.append(member)
                if len(chosen) == want:
                    break
        return chosen

    def assignments(
        self, keys: Iterable[str], n: int = 1
    ) -> Dict[str, List[str]]:
        """Preference list of every key — the rebalance diff helper."""
        return {key: self.preference(key, n) for key in keys}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "HashRing(%d members, %d vnodes)" % (
            len(self._members),
            self.vnodes,
        )
