"""Sharded station cluster: consistent-hash gateway over N backends.

The paper's server tier is untrusted and stateless per request — the
natural unit to scale horizontally.  This package shards documents
across N :class:`~repro.server.service.StationServer` backends by
consistent hash of the document id, replicates each document to R of
them, and fronts the whole thing with a gateway speaking the ordinary
wire protocol, so existing clients work unchanged:

* :mod:`repro.cluster.ring` — the consistent-hash ring with virtual
  nodes (:class:`HashRing`): deterministic placement, minimal movement
  on membership change;
* :mod:`repro.cluster.gateway` — :class:`ClusterGateway`: routing,
  pooled FORWARD links, update replication, read failover, background
  repair with version-floor re-publication, TOPOLOGY/REBALANCE/PING
  control frames and aggregated STATS;
* :mod:`repro.cluster.topology` — :class:`StationCluster` /
  :func:`hospital_cluster`: the in-process N-backends-plus-gateway
  bootstrap behind ``repro cluster``, ``repro loadgen --cluster`` and
  the failover tests.

Layering: ``repro.cluster`` sits above :mod:`repro.server`; nothing
below imports it.
"""

from repro.cluster.gateway import BackendRefused, ClusterGateway
from repro.cluster.ring import HashRing, stable_hash
from repro.cluster.topology import (
    ClusterError,
    ClusterNode,
    StationCluster,
    hospital_cluster,
)

__all__ = [
    "HashRing",
    "stable_hash",
    "ClusterGateway",
    "BackendRefused",
    "StationCluster",
    "ClusterNode",
    "ClusterError",
    "hospital_cluster",
]
