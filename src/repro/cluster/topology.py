"""In-process cluster topology: N backends + gateway in one process.

This is the harness the whole cluster layer is tested, benchmarked and
demoed through: :class:`StationCluster` spawns N
:class:`~repro.server.service.StationServer` backends (each its own
:class:`~repro.engine.station.SecureStation` on its own asyncio loop
thread, listening on a real ephemeral TCP port) plus one
:class:`~repro.cluster.gateway.ClusterGateway` fronting them, wires up
document placement over the same consistent-hash ring the gateway
routes with, and implements the gateway's repair ``republisher``
callback: on failover (or a REBALANCE join) it copies the encrypted
document from a surviving replica onto the target node, passing the
last served version as the ``version_floor`` of
:meth:`SecureStation.publish` so the version chain continues across
the move.

Everything crosses real sockets — only process boundaries are
simulated — so the cluster the CI smoke step boots via ``repro
cluster`` and the one the tests kill backends in are the same code.
"""

from __future__ import annotations

import hashlib
import os
import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.accesscontrol.model import Policy
from repro.cluster.gateway import ClusterGateway
from repro.cluster.ring import HashRing
from repro.engine.pipeline import DocumentPipeline
from repro.engine.station import SecureStation, StationConfig, StationError
from repro.server.client import RemoteSession
from repro.server.service import ServerThread, StationServer
from repro.soe.session import PreparedDocument
from repro.store import open_store
from repro.xmlkit.dom import Node


class ClusterError(RuntimeError):
    """Topology misuse: unknown node, publish after gateway start, ..."""


class ClusterNode:
    """One backend: a station served over TCP on a daemon thread."""

    __slots__ = ("name", "station", "server", "thread", "address", "alive")

    def __init__(
        self,
        name: str,
        station: SecureStation,
        server: StationServer,
        thread: ServerThread,
        address: Tuple[str, int],
    ):
        self.name = name
        self.station = station
        self.server = server
        self.thread = thread
        self.address = address
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ClusterNode(%s @ %s:%d%s)" % (
            self.name,
            self.address[0],
            self.address[1],
            "" if self.alive else ", dead",
        )


class StationCluster:
    """Bootstrap and drive an in-process sharded station cluster.

    Usage::

        cluster = StationCluster(replicas=2)
        cluster.start_backends(3)
        cluster.publish("doc", tree, policies)
        cluster.start_gateway()
        ... RemoteSession(*cluster.gateway_address, subject) ...
        cluster.kill_backend(cluster.primary_of("doc"))   # failover drill
        cluster.stop()

    Documents are prepared (encoded + encrypted) once and the same
    :class:`PreparedDocument` is registered on every replica — the
    paper's untrusted-store model makes the encrypted bytes freely
    copyable, which is exactly what replication is.  Updates applied
    through the gateway re-encrypt dirty chunks on each replica
    independently but deterministically (same op, same base snapshot,
    same key), so replicas stay in version lockstep.
    """

    def __init__(
        self,
        *,
        replicas: int = 2,
        vnodes: int = 64,
        context: str = "smartcard",
        use_skip_index: bool = True,
        host: str = "127.0.0.1",
        gateway_port: int = 0,
        pool_size: int = 4,
        chunk_size: int = 4096,
        master_secret: bytes = b"cluster-master-secret",
        slow_ms: Optional[float] = None,
        trace: bool = False,
        store_dir: Optional[str] = None,
        cache_mb: Optional[int] = None,
    ):
        self.replicas = replicas
        self.vnodes = vnodes
        self.context = context
        self.use_skip_index = use_skip_index
        self.host = host
        self.gateway_port = gateway_port
        self.pool_size = pool_size
        self.chunk_size = chunk_size
        #: Root directory for per-backend persistent stores: each
        #: backend gets ``store_dir/<node name>``, so a restarted
        #: cluster re-serves its corpus (and repair can source chunks
        #: from a surviving replica's log).  ``None`` keeps every
        #: backend on the in-memory store.
        self.store_dir = store_dir
        self.cache_mb = cache_mb
        #: Observability knobs, applied to the gateway at
        #: :meth:`start_gateway` (the gateway owns the combined
        #: cross-process span tree, so its slow log is the one that
        #: matters; backends keep their own tracers for direct use).
        self.slow_ms = slow_ms
        self.trace = trace
        self._secret = master_secret
        self.nodes: Dict[str, ClusterNode] = {}
        self.gateway: Optional[ClusterGateway] = None
        self.gateway_thread: Optional[ServerThread] = None
        self.gateway_address: Optional[Tuple[str, int]] = None
        #: Cluster-side placement mirror used only for bootstrap and
        #: for helper queries (``primary_of``); after start the
        #: gateway's ring is authoritative for routing.
        self._ring = HashRing(vnodes=vnodes)
        self._placement: Dict[str, List[str]] = {}
        #: Per-document grant records, needed to re-grant on repair.
        self._policies: Dict[str, List[Policy]] = {}
        self._counter = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Backends
    # ------------------------------------------------------------------
    def add_backend(self, name: Optional[str] = None) -> ClusterNode:
        """Start one backend station server on an ephemeral port."""
        with self._lock:
            if name is None:
                name = "node%d" % self._counter
            if name in self.nodes and self.nodes[name].alive:
                raise ClusterError("backend %r already running" % name)
            self._counter += 1
        store = None
        if self.store_dir is not None:
            store = open_store(
                os.path.join(self.store_dir, name),
                cache_bytes=(
                    self.cache_mb * 1024 * 1024
                    if self.cache_mb is not None
                    else None
                ),
            )
        station = SecureStation(
            StationConfig(
                master_secret=self._derive(name),
                context=self.context,
                use_skip_index=self.use_skip_index,
                store=store,
            )
        )
        server = StationServer(
            station,
            host=self.host,
            port=0,
            chunk_size=self.chunk_size,
            allow_forward=True,
        )
        thread = ServerThread(server)
        address = thread.start()
        node = ClusterNode(name, station, server, thread, address)
        with self._lock:
            self.nodes[name] = node
            self._ring.add(name)
        return node

    def start_backends(self, count: int) -> List[ClusterNode]:
        return [self.add_backend() for _ in range(count)]

    def _derive(self, label: str) -> bytes:
        return hashlib.sha1(self._secret + b"|" + label.encode("utf-8")).digest()[
            :16
        ]

    def live_nodes(self) -> List[ClusterNode]:
        return [node for node in self.nodes.values() if node.alive]

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------
    def publish(
        self,
        document_id: str,
        document: Union[str, Node, PreparedDocument],
        policies: Sequence[Policy] = (),
        scheme: str = "ECB-MHT",
    ) -> List[str]:
        """Prepare ``document`` once and place it on R preference nodes.

        Returns the node names holding a copy.  Must run before
        :meth:`start_gateway` (the gateway takes the placement map as
        bootstrap state; later placement changes go through REBALANCE
        or repair).
        """
        if self.gateway is not None:
            raise ClusterError(
                "publish before start_gateway(); later placement changes "
                "go through REBALANCE"
            )
        if not self.nodes:
            raise ClusterError("no backends started")
        if isinstance(document, PreparedDocument):
            prepared = document
        else:
            pipeline = DocumentPipeline.publisher(
                scheme=scheme, key=self._derive("document|%s" % document_id)
            )
            if isinstance(document, Node):
                prepared = pipeline.run(tree=document).prepared
            else:
                prepared = pipeline.run(source=document).prepared
        placed = self._ring.preference(document_id, self.replicas)
        for name in placed:
            station = self.nodes[name].station
            station.publish(document_id, prepared)
            for policy in policies:
                station.grant(document_id, policy)
        with self._lock:
            self._placement[document_id] = list(placed)
            self._policies[document_id] = list(policies)
        return list(placed)

    def primary_of(self, document_id: str) -> str:
        """The current primary by the cluster's own ring mirror."""
        preference = self._ring.preference(document_id, 1)
        if not preference:
            raise ClusterError("no live backends")
        return preference[0]

    def documents(self) -> List[str]:
        with self._lock:
            return list(self._placement)

    # ------------------------------------------------------------------
    # Gateway
    # ------------------------------------------------------------------
    def start_gateway(self) -> Tuple[str, int]:
        if self.gateway is not None:
            raise ClusterError("gateway already started")
        versions: Dict[str, int] = {}
        for document_id, holders in self._placement.items():
            version = 0
            for name in holders:
                try:
                    version = max(
                        version,
                        self.nodes[name].station.document_version(document_id),
                    )
                except StationError:
                    pass
            versions[document_id] = version
        self.gateway = ClusterGateway(
            {
                name: node.address
                for name, node in self.nodes.items()
                if node.alive
            },
            replicas=self.replicas,
            vnodes=self.vnodes,
            host=self.host,
            port=self.gateway_port,
            documents=versions,
            placement={
                document_id: set(holders)
                for document_id, holders in self._placement.items()
            },
            republisher=self._republish,
            pool_size=self.pool_size,
            slow_ms=self.slow_ms,
            trace=self.trace,
        )
        self.gateway_thread = ServerThread(self.gateway)
        self.gateway_address = self.gateway_thread.start()
        return self.gateway_address

    def _republish(
        self, document_id: str, node_name: str, version_floor: int
    ) -> int:
        """Gateway repair callback (runs in an executor thread).

        Copies the encrypted document from the most advanced surviving
        replica onto ``node_name``, publishing with ``version_floor``
        so the version chain continues, and re-grants the document's
        policies there.  The copy sources chunks from the replica's
        *store*: ``station.document()`` on a persistent backend is a
        pager-backed handle, so the target's ``put`` drains chunk
        records straight out of the survivor's log through its page
        cache — no caller-side re-publish, no full in-memory copy.
        """
        target = self.nodes.get(node_name)
        if target is None or not target.alive:
            raise ClusterError("backend %r is not running" % node_name)
        source_prepared = None
        source_version = -1
        for node in self.nodes.values():
            if not node.alive or node.name == node_name:
                continue
            try:
                version = node.station.document_version(document_id)
            except StationError:
                continue
            if version > source_version:
                source_version = version
                source_prepared = node.station.document(document_id)
        if source_prepared is None:
            raise ClusterError(
                "no surviving replica of %r to copy from" % document_id
            )
        target.station.publish(
            document_id,
            source_prepared,
            version_floor=max(version_floor, source_version),
        )
        for policy in self._policies.get(document_id, ()):
            target.station.grant(document_id, policy)
        return target.station.document_version(document_id)

    # ------------------------------------------------------------------
    # Drills: kill / join
    # ------------------------------------------------------------------
    def kill_backend(self, name: str) -> ClusterNode:
        """Stop a backend abruptly (the failover drill).

        The gateway is *not* told: it discovers the death on its next
        forward attempt, exactly like a crashed process.
        """
        node = self.nodes.get(name)
        if node is None or not node.alive:
            raise ClusterError("backend %r is not running" % name)
        node.thread.stop()
        node.alive = False
        # Release the station's store (file lock, mmaps) so the same
        # node name — or another process — can reopen the directory;
        # the gateway still discovers the death by its failed forward.
        node.station.close()
        with self._lock:
            self._ring.remove(name)
        return node

    def join_backend(self, name: Optional[str] = None) -> ClusterNode:
        """Start a fresh backend and REBALANCE it into the live gateway.

        Returns once the gateway has re-placed every document whose
        preference list now includes the new node.
        """
        if self.gateway_address is None:
            raise ClusterError("gateway not started")
        node = self.add_backend(name)
        with self.control_session() as control:
            reply = control.rebalance("join", node.name, node.address)
        if reply.get("action") != "join":  # pragma: no cover - defensive
            raise ClusterError("gateway refused the join: %r" % reply)
        return node

    def control_session(self) -> RemoteSession:
        """An admin session against the gateway (topology/rebalance)."""
        if self.gateway_address is None:
            raise ClusterError("gateway not started")
        host, port = self.gateway_address
        return RemoteSession(host, port, "@admin", connect_retry=5.0)

    # ------------------------------------------------------------------
    def stop(self) -> None:
        if self.gateway_thread is not None:
            self.gateway_thread.stop()
            self.gateway_thread = None
            self.gateway = None
        for node in self.nodes.values():
            if node.alive:
                node.thread.stop()
                node.alive = False
            node.station.close()  # idempotent; flushes persistent stores

    def __enter__(self) -> "StationCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "StationCluster(%d/%d backends alive, R=%d)" % (
            len(self.live_nodes()),
            len(self.nodes),
            self.replicas,
        )


# ----------------------------------------------------------------------
# Bootstrap: the hospital cluster
# ----------------------------------------------------------------------
def hospital_cluster(
    backends: int = 3,
    replicas: int = 2,
    documents: int = 2,
    folders: int = 3,
    seed: int = 7,
    context: str = "smartcard",
    vnodes: int = 64,
    host: str = "127.0.0.1",
    gateway_port: int = 0,
    slow_ms: Optional[float] = None,
    trace: bool = False,
    store_dir: Optional[str] = None,
    cache_mb: Optional[int] = None,
) -> Tuple[StationCluster, List[str], List[str]]:
    """A running cluster serving ``documents`` hospital documents.

    Document 0 is the id ``"hospital"`` generated with *exactly* the
    :func:`~repro.server.service.hospital_station` defaults (same
    folders, same seed, same policies), so a view through the gateway
    can be byte-compared against a direct single-station server.
    Further documents are ``"hospital2"``, ``"hospital3"``, ... with
    shifted seeds — distinct ids spread over distinct primaries, which
    is what makes per-backend throughput/skew reporting meaningful.

    Returns ``(cluster, document ids, granted subjects)``.
    """
    from repro.datasets.hospital import (
        GROUPS,
        HospitalConfig,
        doctor_policy,
        generate_hospital,
        researcher_policy,
        secretary_policy,
    )

    cluster = StationCluster(
        replicas=replicas,
        vnodes=vnodes,
        context=context,
        host=host,
        gateway_port=gateway_port,
        slow_ms=slow_ms,
        trace=trace,
        store_dir=store_dir,
        cache_mb=cache_mb,
    )
    cluster.start_backends(backends)
    document_ids: List[str] = []
    subjects: List[str] = []
    for index in range(max(1, documents)):
        document_id = "hospital" if index == 0 else "hospital%d" % (index + 1)
        config = HospitalConfig(
            folders=folders,
            doctors=4,
            acts_per_folder=3,
            labresults_per_folder=2,
            seed=seed + index,
        )
        doctor = config.doctor_names()[0]
        policies = [
            secretary_policy(),
            doctor_policy(doctor),
            researcher_policy(GROUPS[:3]),
        ]
        placed = cluster._ring.preference(document_id, replicas)
        if store_dir is not None and placed and all(
            document_id in cluster.nodes[name].station.store for name in placed
        ):
            # Restarted persistent cluster: every preference replica
            # already holds the document at its pre-restart version —
            # re-publishing would needlessly bump the version chain.
            # Grants are derived state and are always re-applied.
            for name in placed:
                station = cluster.nodes[name].station
                for policy in policies:
                    station.grant(document_id, policy)
            with cluster._lock:
                cluster._placement[document_id] = list(placed)
                cluster._policies[document_id] = list(policies)
        else:
            tree = generate_hospital(config)
            cluster.publish(document_id, tree, policies)
        document_ids.append(document_id)
        if not subjects:
            subjects = [policy.subject for policy in policies]
    cluster.start_gateway()
    return cluster, document_ids, subjects
