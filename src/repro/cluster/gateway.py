"""The cluster gateway: one address fronting N station backends.

Clients speak the ordinary :mod:`repro.server.protocol` to the gateway
— HELLO/QUERY/UPDATE/STATS/BYE, unchanged — so a
:class:`~repro.server.client.RemoteSession` pointed at a gateway works
without modification and returns byte-identical views.  Behind the
address, the gateway:

* **routes by document id** — a consistent-hash ring with virtual
  nodes (:class:`~repro.cluster.ring.HashRing`) maps every document to
  an ordered preference list of backends; entry 0 is the primary, the
  next ``replicas - 1`` hold copies.  Repeat queries for a document
  always land on the same backend, so the PR 4 view cache keeps its
  hit rate — cache locality is a *routing* property here;
* **forwards over pooled links** — per backend, a small pool of
  persistent connections authenticated as a gateway (HELLO
  ``{"gateway": true}``); requests travel as FORWARD frames carrying
  the end-client's subject, and responses come back in the ordinary
  CHUNK*/RESULT shape.  Responses are collected store-and-forward
  before relaying, so a backend dying mid-response can be retried on a
  replica without the client ever seeing a half stream;
* **replicates updates** — an UPDATE is applied on the primary first,
  then on every replica holding the document; the gateway verifies the
  resulting versions agree (a diverging replica is dropped from the
  placement and repaired) and fans exactly one INVALIDATED per
  ``(document, version)`` out to its own clients;
* **fails over and repairs** — a connection error marks the backend
  dead, removes it from the ring and retries the request on the next
  preference entry; a background repair task then re-publishes every
  under-replicated document onto its new preference nodes through the
  ``republisher`` callback, passing the last served version as the
  *version floor* so the PR 3 version chain (and replay protection)
  survives the move;
* **answers the cluster control frames** — TOPOLOGY (placement map),
  REBALANCE (join/leave a backend at runtime, with deterministic
  re-placement), PING (gateway health) and an aggregated STATS that
  sums backend counters and reports per-backend request counts and
  latency percentiles (the loadgen's skew report).

Trust note: the gateway is part of the *untrusted server* tier of the
paper — it never sees plaintext views in the seal-less configuration
it requires from its backends only because this reproduction leaves
link sealing to the client edge; a deployment wanting sealed
gateway-to-client links would terminate sealing at the gateway exactly
like :class:`~repro.server.service.StationServer` does.  The
``republisher`` callback is the piece that must live with a publisher
(it needs document plaintext or an encrypted copy); in the in-process
topology it is :meth:`repro.cluster.topology.StationCluster._republish`.
"""

from __future__ import annotations

import asyncio
import os
import time
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.cluster.ring import HashRing
from repro.metrics import percentile
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer, format_trace_id, new_trace_id
from repro.server import protocol
from repro.server.protocol import (
    BYE,
    CHUNK,
    ERROR,
    FORWARD,
    HELLO,
    INVALIDATED,
    PING,
    PONG,
    QUERY,
    REBALANCE,
    RESULT,
    STATS,
    STATS_REQUEST,
    TOPOLOGY,
    TOPOLOGY_REQUEST,
    UPDATE,
    WELCOME,
    Frame,
    FrameDecoder,
    ProtocolError,
    encode_frame_parts,
    json_frame,
)

#: Error codes specific to the gateway (backend codes pass through).
E_BAD_FRAME = "bad-frame"
E_PROTOCOL = "protocol"
E_UNAVAILABLE = "unavailable"
E_REBALANCE = "rebalance"

#: Subject the gateway authenticates as on its upstream links.
GATEWAY_SUBJECT = "@gateway"

#: Republisher callback: ``(document_id, node_name, version_floor) ->
#: new version``; raises on failure.  Runs in an executor thread.
Republisher = Callable[[str, str, int], int]


class BackendRefused(Exception):
    """A structured ERROR frame from a backend (app-level, not a
    transport failure — the link stays healthy and there is no
    failover for it, except the placement race noted in routing)."""

    def __init__(self, code: str, message: str):
        super().__init__("%s: %s" % (code, message))
        self.code = code
        self.message = message


class _BackendLink:
    """One pooled gateway -> backend connection (asyncio side)."""

    __slots__ = ("name", "reader", "writer", "decoder", "frames", "session_id")

    def __init__(
        self,
        name: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_payload: int,
    ):
        self.name = name
        self.reader = reader
        self.writer = writer
        self.decoder = FrameDecoder(max_payload)
        self.frames: List[Frame] = []
        self.session_id = 0

    async def handshake(self) -> None:
        await self.send(
            json_frame(HELLO, 0, {"subject": GATEWAY_SUBJECT, "gateway": True})
        )
        frame = await self.read()
        if frame.type == ERROR:
            body = frame.json()
            raise BackendRefused(
                body.get("code", "unknown"), body.get("message", "")
            )
        if frame.type != WELCOME:
            raise ProtocolError(
                "expected WELCOME from backend, got %s" % frame.type_name
            )
        body = frame.json()
        if not body.get("gateway"):
            raise ProtocolError(
                "backend %s did not accept the gateway role "
                "(started without allow_forward?)" % self.name
            )
        self.session_id = int(body.get("session", 0))

    async def send(self, data: bytes) -> None:
        self.writer.write(data)
        await self.writer.drain()

    async def read(self) -> Frame:
        while not self.frames:
            data = await self.reader.read(65536)
            if not data:
                raise ConnectionError("backend %s closed the link" % self.name)
            self.frames.extend(self.decoder.feed(data))
        return self.frames.pop(0)

    def close(self) -> None:
        try:
            self.writer.close()
        except Exception:
            pass


class _Backend:
    """Gateway-side state of one backend: address, pool, counters."""

    __slots__ = (
        "name",
        "host",
        "port",
        "alive",
        "pool",
        "created",
        "pool_size",
        "requests",
        "errors",
        "latencies",
    )

    def __init__(self, name: str, host: str, port: int, pool_size: int):
        self.name = name
        self.host = host
        self.port = port
        self.alive = True
        self.pool: "asyncio.Queue[_BackendLink]" = asyncio.Queue()
        self.created = 0
        self.pool_size = pool_size
        self.requests = 0
        self.errors = 0
        #: Recent per-request wall-clock seconds (gateway-side), for
        #: the skew report; bounded so a long run cannot grow it.
        self.latencies: "deque[float]" = deque(maxlen=2048)

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    def latency_ms(self, q: float) -> float:
        return round(percentile(list(self.latencies), q) * 1000, 3)


class _ClientConn:
    """Per-client-connection state on the gateway."""

    __slots__ = ("subject", "session_id", "peer")

    def __init__(self, peer: str):
        self.subject: Optional[str] = None
        self.session_id = 0
        self.peer = peer


class ClusterGateway:
    """Consistent-hash routing gateway over N :class:`StationServer`
    backends, with R-way replication, read failover and repair.

    Parameters
    ----------
    backends:
        ``{name: (host, port)}`` of the initial members.
    replicas:
        Copies per document (R).  Reads prefer the primary; updates
        are applied to every live replica.
    vnodes:
        Virtual nodes per member on the hash ring.
    documents / placement:
        Bootstrap knowledge: last known version per document id and
        which backends hold a copy (both maintained live afterwards).
    republisher:
        ``(document_id, node_name, version_floor) -> version`` callback
        used by repair and rebalance to place a document copy onto a
        backend; ``None`` disables repair (failover still works while
        replicas survive).
    slow_ms / trace / registry / tracer / slow_sink:
        Observability: requests whose frame header carries a nonzero
        trace id get a gateway-side span tree — a ``gateway.request``
        (or ``gateway.update``) root, one ``forward:<backend>`` child
        per attempt, and the backend's own spans grafted underneath
        (the backend serializes them into its RESULT trailer; the
        gateway adopts them, so one trace spans both processes).
        ``trace=True`` additionally mints an id for *untraced* client
        requests, so a plain old client still shows up in the slow log.
        ``slow_ms`` flags traces at or above the threshold into the
        tracer's slow log (and ``slow_sink``, when given).  ``registry``
        is a :class:`MetricsRegistry` (one is created when omitted)
        exposing gateway counters, ring health and request latency for
        the Prometheus endpoint.
    """

    def __init__(
        self,
        backends: Dict[str, Tuple[str, int]],
        *,
        replicas: int = 2,
        vnodes: int = 64,
        host: str = "127.0.0.1",
        port: int = 0,
        documents: Optional[Dict[str, int]] = None,
        placement: Optional[Dict[str, Iterable[str]]] = None,
        republisher: Optional[Republisher] = None,
        pool_size: int = 4,
        request_timeout: float = 60.0,
        connect_timeout: float = 5.0,
        max_payload: int = protocol.DEFAULT_MAX_PAYLOAD,
        slow_ms: Optional[float] = None,
        trace: bool = False,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        slow_sink: Optional[Callable[[Dict[str, Any]], None]] = None,
    ):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self.request_timeout = request_timeout
        self.connect_timeout = connect_timeout
        self.max_payload = max_payload
        self.republisher = republisher
        self.ring = HashRing(backends, vnodes=vnodes)
        self.backends: Dict[str, _Backend] = {
            name: _Backend(name, address[0], address[1], pool_size)
            for name, address in backends.items()
        }
        #: Last known version per document id.
        self.documents: Dict[str, int] = dict(documents or {})
        #: Which backends hold a copy of each document.
        self.placement: Dict[str, Set[str]] = {
            document_id: set(nodes)
            for document_id, nodes in (placement or {}).items()
        }
        self.gateway_stats: Dict[str, int] = {
            "connections": 0,
            "active": 0,
            "queries": 0,
            "updates": 0,
            "failovers": 0,
            "backends_lost": 0,
            "repairs": 0,
            "repair_failures": 0,
            "rebalances": 0,
            "invalidations_out": 0,
            "errors": 0,
        }
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._tasks: set = set()
        self._writers: Dict[_ClientConn, asyncio.StreamWriter] = {}
        self._session_counter = 0
        self._repair_lock: Optional[asyncio.Lock] = None
        #: Per-document write serialization: concurrent UPDATEs to one
        #: document must reach the primary and every replica in the
        #: same order, or non-commutative ops could diverge replica
        #: content while version counters stay in lockstep.  (Grows
        #: one lock per updated document id — bounded by the corpus.)
        self._update_locks: Dict[str, asyncio.Lock] = {}
        #: Highest version already announced per document (dedupe: R
        #: replicas each push INVALIDATED for the same update).
        self._announced: Dict[str, int] = {}
        self.slow_ms = slow_ms
        self.trace = trace
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = (
            tracer
            if tracer is not None
            else Tracer(slow_ms=slow_ms, slow_sink=slow_sink)
        )
        self._requests_metric = self.registry.counter(
            "repro_requests_total",
            "Frames dispatched by type.",
            labelnames=("type",),
        )
        self._latency_metric = self.registry.histogram(
            "repro_request_ms",
            "End-to-end request latency as seen by the gateway.",
        )
        self.registry.register_collector(self._collect_metrics)

    # ------------------------------------------------------------------
    # Lifecycle (ServerThread-compatible: start/stop/address)
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    async def start(self) -> Tuple[str, int]:
        self._loop = asyncio.get_running_loop()
        self._repair_lock = asyncio.Lock()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.address

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        for backend in self.backends.values():
            while True:
                try:
                    backend.pool.get_nowait().close()
                except asyncio.QueueEmpty:
                    break
            backend.created = 0

    # ------------------------------------------------------------------
    # Upstream links
    # ------------------------------------------------------------------
    async def _open_link(self, backend: _Backend) -> _BackendLink:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(backend.host, backend.port),
            self.connect_timeout,
        )
        link = _BackendLink(backend.name, reader, writer, self.max_payload)
        try:
            await asyncio.wait_for(link.handshake(), self.connect_timeout)
        except BaseException:
            link.close()
            raise
        return link

    async def _acquire(self, backend: _Backend) -> _BackendLink:
        if not backend.alive:
            raise ConnectionError("backend %s is down" % backend.name)
        try:
            return backend.pool.get_nowait()
        except asyncio.QueueEmpty:
            pass
        if backend.created < backend.pool_size:
            backend.created += 1
            try:
                return await self._open_link(backend)
            except BaseException:
                backend.created -= 1
                raise
        return await asyncio.wait_for(backend.pool.get(), self.request_timeout)

    def _release(self, backend: _Backend, link: _BackendLink, ok: bool) -> None:
        if ok and backend.alive:
            backend.pool.put_nowait(link)
        else:
            backend.created = max(0, backend.created - 1)
            link.close()

    async def _request(
        self, backend: _Backend, payload: bytes, final: Tuple[int, ...]
    ) -> Tuple[List[bytes], Frame]:
        """One request/response round-trip on a pooled link.

        Collects CHUNK payloads (store-and-forward: the response is
        complete before anything reaches the client, so failover can
        restart it), consumes INVALIDATED pushes out-of-band, and
        returns on any frame type in ``final``.  A structured ERROR
        raises :class:`BackendRefused`; transport trouble raises the
        underlying exception after poisoning the link.
        """
        link = await self._acquire(backend)
        ok = False
        try:
            await link.send(payload)
            chunks: List[bytes] = []
            while True:
                frame = await asyncio.wait_for(
                    link.read(), self.request_timeout
                )
                if frame.type == INVALIDATED:
                    self._note_push(frame)
                    continue
                if frame.type == CHUNK:
                    chunks.append(frame.payload)
                    continue
                if frame.type in final:
                    ok = True
                    return chunks, frame
                if frame.type == ERROR:
                    ok = True  # clean app-level reply: link is healthy
                    body = frame.json()
                    raise BackendRefused(
                        body.get("code", "unknown"),
                        body.get("message", "backend error"),
                    )
                raise ProtocolError(
                    "unexpected %s frame from backend %s"
                    % (frame.type_name, backend.name)
                )
        finally:
            self._release(backend, link, ok)

    async def _forward_query(
        self,
        backend: _Backend,
        subject: str,
        document_id: str,
        query: Optional[str],
        trace: int = 0,
    ) -> Tuple[List[bytes], Dict[str, Any]]:
        body = {
            "kind": "query",
            "subject": subject,
            "document": document_id,
            "query": query,
        }
        chunks, frame = await self._request(
            backend, json_frame(FORWARD, 0, body, trace=trace), (RESULT,)
        )
        return chunks, frame.json()

    async def _forward_update(
        self,
        backend: _Backend,
        subject: str,
        document_id: str,
        op_body: Dict[str, Any],
        trace: int = 0,
    ) -> Dict[str, Any]:
        body = {
            "kind": "update",
            "subject": subject,
            "document": document_id,
            "op": op_body,
        }
        _chunks, frame = await self._request(
            backend, json_frame(FORWARD, 0, body, trace=trace), (RESULT,)
        )
        return frame.json()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _candidates(self, document_id: str) -> List[str]:
        """Live backends to try for ``document_id``, in order.

        Preference-listed nodes already holding a copy first, then the
        rest of the preference list (covers the window where repair has
        not yet placed a copy on a new preference node), then any
        stray live holder outside the preference list (a just-joined
        ring can shift preference away from existing copies before
        repair catches up).
        """
        preference = self.ring.preference(document_id, self.replicas)
        placed = self.placement.get(document_id)
        if not placed:
            return preference
        first = [name for name in preference if name in placed]
        second = [name for name in preference if name not in placed]
        extra = [
            name
            for name in placed
            if name not in preference
            and name in self.backends
            and self.backends[name].alive
        ]
        return first + second + extra

    _TRANSPORT_ERRORS = (
        ConnectionError,
        OSError,
        asyncio.TimeoutError,
        asyncio.IncompleteReadError,
        ProtocolError,
    )

    async def _mark_dead(self, name: str) -> None:
        backend = self.backends.get(name)
        if backend is None or not backend.alive:
            return
        backend.alive = False
        backend.errors += 1
        self.ring.remove(name)
        self.gateway_stats["backends_lost"] += 1
        while True:
            try:
                backend.pool.get_nowait().close()
            except asyncio.QueueEmpty:
                break
        backend.created = 0
        self._schedule_repair()

    def _schedule_repair(self) -> None:
        if self.republisher is None or self._loop is None:
            return
        task = asyncio.ensure_future(self._repair())
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _repair(self) -> None:
        """Re-place every under-replicated document (idempotent).

        For each registered document: drop dead holders from the
        placement view, then publish a copy onto every preference node
        that lacks one, passing the last served version as the floor so
        the replacement continues the version chain.
        """
        if self.republisher is None:
            return
        loop = asyncio.get_running_loop()
        async with self._repair_lock:
            for document_id in list(self.placement):
                holders = {
                    name
                    for name in self.placement[document_id]
                    if name in self.backends and self.backends[name].alive
                }
                self.placement[document_id] = holders
                version = self.documents.get(document_id, 0)
                for name in self.ring.preference(document_id, self.replicas):
                    if name in holders:
                        continue
                    try:
                        new_version = await loop.run_in_executor(
                            None,
                            self.republisher,
                            document_id,
                            name,
                            version,
                        )
                    except Exception:
                        self.gateway_stats["repair_failures"] += 1
                        continue
                    holders.add(name)
                    self.placement[document_id] = holders
                    self.gateway_stats["repairs"] += 1
                    if new_version is not None:
                        self._note_version(document_id, int(new_version))

    def _note_version(self, document_id: str, version: int) -> None:
        if version > self.documents.get(document_id, -1):
            self.documents[document_id] = version

    def _note_push(self, frame: Frame) -> None:
        """An INVALIDATED push read off an upstream link."""
        try:
            body = frame.json()
            document_id = body["document"]
            version = int(body["version"])
        except (ProtocolError, KeyError, TypeError, ValueError):
            return
        self._note_version(document_id, version)
        self._announce(document_id, version)

    def _announce(self, document_id: str, version: int) -> None:
        """Fan one INVALIDATED out to every gateway client — exactly
        once per (document, version), however many replicas pushed it."""
        if version <= self._announced.get(document_id, -1):
            return
        self._announced[document_id] = version
        body = {"document": document_id, "version": version}
        for conn, writer in list(self._writers.items()):
            try:
                writer.write(json_frame(INVALIDATED, conn.session_id, body))
                self.gateway_stats["invalidations_out"] += 1
            except Exception:
                pass

    # ------------------------------------------------------------------
    # Client-facing server
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._tasks.add(task)
        peername = writer.get_extra_info("peername")
        conn = _ClientConn(
            "%s:%s" % (peername[0], peername[1]) if peername else "?"
        )
        decoder = FrameDecoder(self.max_payload)
        self.gateway_stats["connections"] += 1
        self.gateway_stats["active"] += 1
        self._writers[conn] = writer
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    return
                try:
                    frames = decoder.feed(data)
                except ProtocolError as exc:
                    await self._send_error(writer, conn, E_BAD_FRAME, str(exc))
                    return
                for frame in frames:
                    if not await self._dispatch(frame, conn, writer):
                        return
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            self._tasks.discard(task)
            self._writers.pop(conn, None)
            self.gateway_stats["active"] -= 1
            writer.close()

    async def _dispatch(
        self, frame: Frame, conn: _ClientConn, writer: asyncio.StreamWriter
    ) -> bool:
        self._requests_metric.labels(type=frame.type_name).inc()
        if frame.type == BYE:
            return False
        if frame.type == PING:
            return await self._on_ping(conn, writer)
        if frame.type == HELLO:
            return await self._on_hello(frame, conn, writer)
        if conn.subject is None:
            await self._send_error(
                writer, conn, E_PROTOCOL, "first frame must be HELLO"
            )
            return False
        if frame.type == QUERY:
            return await self._on_query(frame, conn, writer)
        if frame.type == UPDATE:
            return await self._on_update(frame, conn, writer)
        if frame.type == STATS_REQUEST:
            return await self._on_stats(conn, writer)
        if frame.type == TOPOLOGY_REQUEST:
            return await self._on_topology(conn, writer)
        if frame.type == REBALANCE:
            return await self._on_rebalance(frame, conn, writer)
        await self._send_error(
            writer,
            conn,
            E_PROTOCOL,
            "unexpected %s frame at the gateway" % frame.type_name,
        )
        return False

    async def _on_hello(
        self, frame: Frame, conn: _ClientConn, writer: asyncio.StreamWriter
    ) -> bool:
        if conn.subject is not None:
            await self._send_error(writer, conn, E_PROTOCOL, "duplicate HELLO")
            return False
        try:
            subject = str(frame.json()["subject"])
        except (ProtocolError, KeyError):
            await self._send_error(
                writer, conn, E_BAD_FRAME, "HELLO payload must carry a subject"
            )
            return False
        conn.subject = subject
        self._session_counter += 1
        conn.session_id = self._session_counter
        alive = sum(1 for b in self.backends.values() if b.alive)
        welcome = {
            "session": conn.session_id,
            "subject": subject,
            # The gateway terminates sessions itself; the key is a
            # fresh random link key (sealing is off gateway-side, so
            # it only keeps the WELCOME shape identical for clients).
            "key": os.urandom(16).hex(),
            "seal": False,
            "gateway": False,
            "cluster": {"backends": alive, "replicas": self.replicas},
            "limits": {"max_payload": self.max_payload},
        }
        await self._send(writer, json_frame(WELCOME, conn.session_id, welcome))
        return True

    async def _on_query(
        self, frame: Frame, conn: _ClientConn, writer: asyncio.StreamWriter
    ) -> bool:
        try:
            body = frame.json()
            document_id = body["document"]
        except (ProtocolError, KeyError):
            await self._send_error(
                writer, conn, E_BAD_FRAME, "QUERY payload must carry a document"
            )
            return False
        query = body.get("query") or None
        trace = frame.trace or (new_trace_id() if self.trace else 0)
        root = None
        if trace:
            root = self.tracer.start(
                trace, "gateway.request", document=document_id
            )
        tried: Set[str] = set()
        attempts: List[str] = []
        request_started = time.perf_counter()
        while True:
            candidates = [
                name
                for name in self._candidates(document_id)
                if name not in tried
            ]
            if not candidates:
                break
            name = candidates[0]
            tried.add(name)
            backend = self.backends[name]
            started = time.perf_counter()
            fwd = None
            if trace:
                fwd = self.tracer.start(
                    trace, "forward:%s" % name, parent=root.id
                )
            try:
                chunks, trailer = await self._forward_query(
                    backend, conn.subject, document_id, query, trace=trace
                )
            except BackendRefused as exc:
                if fwd is not None:
                    self.tracer.finish(fwd, error=exc.code)
                if exc.code == "unknown-document" and len(candidates) > 1:
                    # Placement race: repair has not copied the
                    # document onto this preference node yet.  Another
                    # candidate may hold it.
                    attempts.append("%s: %s" % (name, exc.message))
                    continue
                if trace:
                    self.tracer.discard(trace)
                await self._send_error(writer, conn, exc.code, exc.message)
                return True
            except self._TRANSPORT_ERRORS as exc:
                if fwd is not None:
                    self.tracer.finish(fwd, error=type(exc).__name__)
                attempts.append("%s: %s" % (name, exc))
                self.gateway_stats["failovers"] += 1
                await self._mark_dead(name)
                continue
            backend.requests += 1
            backend.latencies.append(time.perf_counter() - started)
            # Batched zero-copy relay: each upstream CHUNK payload (a
            # memoryview into the backend link's receive buffers) is
            # written behind a fresh header without re-concatenation,
            # and the whole response drains once — not per frame.
            for chunk in chunks:
                header, payload = encode_frame_parts(
                    CHUNK,
                    conn.session_id,
                    chunk,
                    max_payload=self.max_payload,
                )
                writer.write(header)
                if payload:
                    writer.write(payload)
            if chunks:
                await writer.drain()
            version = trailer.get("version")
            if version is not None:
                self._note_version(document_id, int(version))
            trailer["backend"] = name
            trailer["failover"] = len(tried) - 1
            if trace:
                # Graft the backend's span tree (serialized into its
                # trailer) under this attempt's forward span, then ship
                # the *combined* tree to the client — one trace, both
                # processes.
                remote_spans = trailer.pop("spans", None)
                self.tracer.finish(fwd, backend=name, chunks=len(chunks))
                if remote_spans:
                    self.tracer.adopt(trace, remote_spans, parent=fwd.id)
                self.tracer.finish(
                    root, backend=name, failover=len(tried) - 1
                )
                record = self.tracer.end_trace(trace, root=root)
                trailer["trace"] = format_trace_id(trace)
                if record is not None and record.slow:
                    # Client-facing trees only ship for slow traces
                    # (slow_ms=0 means "every trace"): the combined
                    # tree is already in the gateway's ring/slow log,
                    # and serializing it per-request would blow the
                    # hot-path tracing budget.
                    trailer["spans"] = record.wire_spans()
            self._latency_metric.observe(
                (time.perf_counter() - request_started) * 1000
            )
            await self._send(
                writer,
                json_frame(RESULT, conn.session_id, trailer, trace=trace),
            )
            self.gateway_stats["queries"] += 1
            return True
        if trace:
            self.tracer.discard(trace)
        await self._send_error(
            writer,
            conn,
            E_UNAVAILABLE,
            "no live replica can serve %r (%s)"
            % (document_id, "; ".join(attempts) or "no candidates"),
        )
        return True

    async def _on_update(
        self, frame: Frame, conn: _ClientConn, writer: asyncio.StreamWriter
    ) -> bool:
        try:
            body = frame.json()
            document_id = body["document"]
            op_body = dict(body.get("op") or {})
        except (ProtocolError, KeyError, TypeError):
            await self._send_error(
                writer, conn, E_BAD_FRAME, "UPDATE payload must carry a document"
            )
            return False
        lock = self._update_locks.get(document_id)
        if lock is None:
            lock = self._update_locks[document_id] = asyncio.Lock()
        async with lock:
            return await self._apply_routed_update(
                conn, writer, document_id, op_body, trace=frame.trace
            )

    async def _apply_routed_update(
        self,
        conn: _ClientConn,
        writer: asyncio.StreamWriter,
        document_id: str,
        op_body: Dict[str, Any],
        trace: int = 0,
    ) -> bool:
        trace = trace or (new_trace_id() if self.trace else 0)
        root = None
        if trace:
            root = self.tracer.start(
                trace, "gateway.update", document=document_id
            )
        request_started = time.perf_counter()
        tried: Set[str] = set()
        trailer = None
        primary = None
        while True:
            candidates = [
                name
                for name in self._candidates(document_id)
                if name not in tried
            ]
            if not candidates:
                if trace:
                    self.tracer.discard(trace)
                await self._send_error(
                    writer,
                    conn,
                    E_UNAVAILABLE,
                    "no live replica can apply the update to %r" % document_id,
                )
                return True
            primary = candidates[0]
            tried.add(primary)
            fwd = None
            if trace:
                fwd = self.tracer.start(
                    trace, "forward:%s" % primary, parent=root.id
                )
            try:
                trailer = await self._forward_update(
                    self.backends[primary],
                    conn.subject,
                    document_id,
                    op_body,
                    trace=trace,
                )
            except BackendRefused as exc:
                if trace:
                    self.tracer.discard(trace)
                await self._send_error(writer, conn, exc.code, exc.message)
                return True
            except self._TRANSPORT_ERRORS:
                if fwd is not None:
                    self.tracer.finish(fwd, error="transport")
                self.gateway_stats["failovers"] += 1
                await self._mark_dead(primary)
                continue
            if trace:
                remote_spans = trailer.pop("spans", None)
                trailer.pop("trace", None)
                self.tracer.finish(fwd, backend=primary)
                if remote_spans:
                    self.tracer.adopt(trace, remote_spans, parent=fwd.id)
            break
        version = int(trailer.get("version", 0))
        replicas_ok = 1
        holders = self.placement.get(document_id, set())
        targets = [
            name
            for name in self._candidates(document_id)
            if name != primary and name not in tried and name in holders
        ]
        for name in targets:
            try:
                replica_trailer = await self._forward_update(
                    self.backends[name], conn.subject, document_id, op_body
                )
            except BackendRefused as exc:
                trailer.setdefault("replica_errors", []).append(
                    {"backend": name, "code": exc.code}
                )
                continue
            except self._TRANSPORT_ERRORS:
                await self._mark_dead(name)
                continue
            if int(replica_trailer.get("version", -1)) != version:
                # Diverged replica: its chain no longer matches the
                # primary's.  Drop the copy and let repair re-place a
                # fresh one at the right version floor.
                self.placement.setdefault(document_id, set()).discard(name)
                trailer.setdefault("replica_divergence", []).append(name)
                self._schedule_repair()
                continue
            replicas_ok += 1
        self._note_version(document_id, version)
        self._announce(document_id, version)
        trailer["backend"] = primary
        trailer["replicas"] = replicas_ok
        if trace:
            self.tracer.finish(
                root, backend=primary, version=version, replicas=replicas_ok
            )
            record = self.tracer.end_trace(trace, root=root)
            trailer["trace"] = format_trace_id(trace)
            if record is not None and record.slow:
                trailer["spans"] = record.wire_spans()
        self._latency_metric.observe(
            (time.perf_counter() - request_started) * 1000
        )
        self.gateway_stats["updates"] += 1
        await self._send(
            writer, json_frame(RESULT, conn.session_id, trailer, trace=trace)
        )
        return True

    # ------------------------------------------------------------------
    # Control frames
    # ------------------------------------------------------------------
    async def _on_ping(
        self, conn: _ClientConn, writer: asyncio.StreamWriter
    ) -> bool:
        body = {
            "ok": True,
            "role": "gateway",
            "documents": dict(self.documents),
            "active": self.gateway_stats["active"],
            "backends": {
                name: backend.alive for name, backend in self.backends.items()
            },
        }
        await self._send(writer, json_frame(PONG, conn.session_id, body))
        return True

    async def _on_topology(
        self, conn: _ClientConn, writer: asyncio.StreamWriter
    ) -> bool:
        documents = {}
        for document_id, version in self.documents.items():
            preference = self.ring.preference(document_id, self.replicas)
            documents[document_id] = {
                "version": version,
                "nodes": sorted(self.placement.get(document_id, ())),
                "primary": preference[0] if preference else None,
            }
        body = {
            "role": "gateway",
            "replicas": self.replicas,
            "vnodes": self.ring.vnodes,
            "backends": {
                name: {
                    "address": [backend.host, backend.port],
                    "alive": backend.alive,
                }
                for name, backend in self.backends.items()
            },
            "documents": documents,
        }
        await self._send(writer, json_frame(TOPOLOGY, conn.session_id, body))
        return True

    async def _on_rebalance(
        self, frame: Frame, conn: _ClientConn, writer: asyncio.StreamWriter
    ) -> bool:
        try:
            body = frame.json()
            action = body["action"]
            name = str(body["name"])
        except (ProtocolError, KeyError):
            await self._send_error(
                writer, conn, E_BAD_FRAME, "REBALANCE needs action and name"
            )
            return False
        if action == "join":
            return await self._rebalance_join(body, name, conn, writer)
        if action == "leave":
            return await self._rebalance_leave(name, conn, writer)
        await self._send_error(
            writer, conn, E_BAD_FRAME, "unknown REBALANCE action %r" % action
        )
        return False

    async def _rebalance_join(
        self,
        body: Dict[str, Any],
        name: str,
        conn: _ClientConn,
        writer: asyncio.StreamWriter,
    ) -> bool:
        existing = self.backends.get(name)
        if existing is not None and existing.alive:
            await self._send_error(
                writer, conn, E_REBALANCE, "backend %r is already a member" % name
            )
            return True
        host = str(body.get("host", "127.0.0.1"))
        try:
            port = int(body["port"])
        except (KeyError, TypeError, ValueError):
            await self._send_error(
                writer, conn, E_BAD_FRAME, "REBALANCE join needs a port"
            )
            return False
        backend = _Backend(name, host, port, self.pool_size)
        try:
            link = await self._open_link(backend)
        except Exception as exc:
            await self._send_error(
                writer,
                conn,
                E_REBALANCE,
                "cannot reach backend %r at %s:%d: %s" % (name, host, port, exc),
            )
            return True
        backend.created = 1
        backend.pool.put_nowait(link)
        self.backends[name] = backend
        self.ring.add(name)
        self.gateway_stats["rebalances"] += 1
        moved = sorted(
            document_id
            for document_id in self.placement
            if name in self.ring.preference(document_id, self.replicas)
        )
        # Synchronous repair: the RESULT must describe the completed
        # re-placement, so a test (or an operator script) can query the
        # new node the moment the reply lands.
        await self._repair()
        await self._send(
            writer,
            json_frame(
                RESULT,
                conn.session_id,
                {
                    "action": "join",
                    "backend": name,
                    "documents_moved": moved,
                    "backends_alive": sum(
                        1 for b in self.backends.values() if b.alive
                    ),
                },
            ),
        )
        return True

    async def _rebalance_leave(
        self, name: str, conn: _ClientConn, writer: asyncio.StreamWriter
    ) -> bool:
        if name not in self.backends:
            await self._send_error(
                writer, conn, E_REBALANCE, "unknown backend %r" % name
            )
            return True
        affected = sorted(
            document_id
            for document_id, holders in self.placement.items()
            if name in holders
        )
        await self._mark_dead(name)
        self.gateway_stats["rebalances"] += 1
        await self._repair()
        await self._send(
            writer,
            json_frame(
                RESULT,
                conn.session_id,
                {
                    "action": "leave",
                    "backend": name,
                    "documents_moved": affected,
                    "backends_alive": sum(
                        1 for b in self.backends.values() if b.alive
                    ),
                },
            ),
        )
        return True

    async def _on_stats(
        self, conn: _ClientConn, writer: asyncio.StreamWriter
    ) -> bool:
        station_totals: Dict[str, int] = {}
        server_totals: Dict[str, int] = {}
        per_backend: Dict[str, Dict[str, Any]] = {}
        compute_totals = {"batches": 0, "fallbacks": 0, "chunks": 0}
        native_backends = 0
        cached_views = 0
        for name in list(self.backends):
            backend = self.backends[name]
            entry: Dict[str, Any] = {
                "alive": backend.alive,
                "address": [backend.host, backend.port],
                "requests": backend.requests,
                "errors": backend.errors,
                "latency_ms": {
                    "p50": backend.latency_ms(50),
                    "p95": backend.latency_ms(95),
                    "p99": backend.latency_ms(99),
                },
            }
            if backend.alive:
                try:
                    _chunks, frame = await self._request(
                        backend,
                        json_frame(STATS_REQUEST, 0, {}),
                        (STATS,),
                    )
                    stats_body = frame.json()
                    for key, value in (stats_body.get("station") or {}).items():
                        station_totals[key] = station_totals.get(key, 0) + int(
                            value
                        )
                    for key, value in (stats_body.get("server") or {}).items():
                        server_totals[key] = server_totals.get(key, 0) + int(
                            value
                        )
                    cached_views += int(stats_body.get("cached_views") or 0)
                    entry["cached_views"] = stats_body.get("cached_views")
                    entry["cached_plans"] = stats_body.get("cached_plans")
                    entry["station"] = stats_body.get("station")
                    compute = dict(stats_body.get("backend") or {})
                    entry["backend"] = compute
                    entry["store"] = stats_body.get("store")
                    for key in compute_totals:
                        compute_totals[key] += int(compute.get(key) or 0)
                    native_backends += 1 if compute.get("native_kernels") else 0
                except BackendRefused:
                    pass
                except self._TRANSPORT_ERRORS:
                    await self._mark_dead(name)
                    entry["alive"] = False
            per_backend[name] = entry
        # Cluster-wide percentiles are computed over the *pooled* raw
        # samples from every backend, never by averaging per-backend
        # percentiles — an average of p95s is not the p95 of the union
        # (a skewed node's tail would be diluted by quiet ones).
        samples: List[float] = []
        for backend in self.backends.values():
            samples.extend(backend.latencies)
        alive = sum(1 for b in self.backends.values() if b.alive)
        body = {
            "role": "gateway",
            "gateway": dict(self.gateway_stats),
            "per_backend": per_backend,
            "station": station_totals,
            "server": server_totals,
            "cached_views": cached_views,
            "documents": dict(self.documents),
            "replicas": self.replicas,
            "ring": {"alive": alive, "total": len(self.backends)},
            "latency_ms": {
                "p50": round(percentile(samples, 50) * 1000, 3),
                "p95": round(percentile(samples, 95) * 1000, 3),
                "p99": round(percentile(samples, 99) * 1000, 3),
            },
            "compute": dict(
                compute_totals,
                native_backends=native_backends,
            ),
            "observability": dict(
                self.tracer.stats(), slow_log=self.tracer.slow_records()
            ),
        }
        await self._send(writer, json_frame(STATS, conn.session_id, body))
        return True

    # ------------------------------------------------------------------
    def _collect_metrics(self, registry: MetricsRegistry) -> None:
        """Pull-time collector: refresh gauges from the live gateway
        state.  Nothing on the request path mirrors counters into the
        registry — scrapes read them here, so tracing-off requests pay
        zero metric bookkeeping beyond the dispatch counter."""
        for key, value in self.gateway_stats.items():
            registry.gauge(
                "repro_gateway_%s" % key, "Gateway counter %r." % key
            ).set(float(value))
        registry.gauge(
            "repro_ring_alive", "Backends currently on the hash ring."
        ).set(float(sum(1 for b in self.backends.values() if b.alive)))
        registry.gauge(
            "repro_ring_total", "Backends ever registered with the gateway."
        ).set(float(len(self.backends)))
        requests = registry.gauge(
            "repro_backend_requests",
            "Requests forwarded, per backend.",
            labelnames=("backend",),
        )
        for name, backend in self.backends.items():
            requests.labels(backend=name).set(float(backend.requests))
        tracer_stats = self.tracer.stats()
        registry.gauge(
            "repro_traces_finished", "Traces completed end-to-end."
        ).set(float(tracer_stats["finished"]))
        registry.gauge(
            "repro_slow_queries", "Traces at or above the slow threshold."
        ).set(float(tracer_stats["slow_queries"]))

    async def _send(self, writer: asyncio.StreamWriter, data: bytes) -> None:
        writer.write(data)
        await writer.drain()

    async def _send_error(
        self,
        writer: asyncio.StreamWriter,
        conn: _ClientConn,
        code: str,
        message: str,
    ) -> None:
        self.gateway_stats["errors"] += 1
        try:
            await self._send(
                writer,
                json_frame(
                    ERROR, conn.session_id, {"code": code, "message": message}
                ),
            )
        except (ConnectionResetError, BrokenPipeError):
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ClusterGateway(%s:%d, %d/%d backends alive)" % (
            self.host,
            self.port,
            sum(1 for b in self.backends.values() if b.alive),
            len(self.backends),
        )
