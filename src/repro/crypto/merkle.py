"""Merkle hash trees over chunk fragments (Appendix A, Fig. F1).

Each chunk is divided into ``m`` fragments (``m`` a power of two); the
fragments' hashes form the leaves of a binary tree whose root is the
*ChunkDigest*.  When the SOE reads some fragments, the (untrusted)
terminal supplies the *sibling hashes* along the paths to the root; the
SOE hashes only the fragments it received, recombines the path and
compares against the (encrypted, hence trusted) ChunkDigest.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Sequence, Set, Tuple

HASH_SIZE = 20  # SHA-1


def sha1(data: bytes) -> bytes:
    return hashlib.sha1(data).digest()


def combine(left: bytes, right: bytes) -> bytes:
    """Hash of the concatenation of two child hashes."""
    return sha1(left + right)


class MerkleTree:
    """Binary Merkle tree over a fixed list of fragments.

    Node numbering is heap-like: node 1 is the root, node ``i`` has
    children ``2i`` and ``2i+1``; leaves occupy ``m .. 2m-1`` (fragment
    ``f`` is node ``m + f``).
    """

    def __init__(self, fragments: Sequence[bytes]):
        m = len(fragments)
        if m == 0 or m & (m - 1):
            raise ValueError("fragment count must be a power of two, got %d" % m)
        self.fragment_count = m
        self._nodes: List[bytes] = [b""] * (2 * m)
        for index, fragment in enumerate(fragments):
            self._nodes[m + index] = sha1(fragment)
        for index in range(m - 1, 0, -1):
            self._nodes[index] = combine(
                self._nodes[2 * index], self._nodes[2 * index + 1]
            )

    @property
    def root(self) -> bytes:
        """The ChunkDigest."""
        return self._nodes[1]

    def leaf(self, fragment_index: int) -> bytes:
        return self._nodes[self.fragment_count + fragment_index]

    def sibling_hashes(self, fragment_indexes: Iterable[int]) -> Dict[int, bytes]:
        """Hashes the terminal must supply so the SOE can recompute the
        root knowing only the fragments in ``fragment_indexes``.

        Returns ``{node_number: hash}`` for the frontier of subtrees
        containing none of the requested fragments.
        """
        m = self.fragment_count
        known: Set[int] = {m + f for f in fragment_indexes}
        if not known:
            return {1: self.root}
        needed: Dict[int, bytes] = {}
        for leaf in sorted(known):
            node = leaf
            while node > 1:
                sibling = node ^ 1
                if sibling not in needed and not self._subtree_contains(
                    sibling, known
                ):
                    # Sibling subtrees holding a known fragment will be
                    # recombined by the SOE instead of being supplied.
                    needed[sibling] = self._nodes[sibling]
                node //= 2
        return needed

    def _subtree_contains(self, node: int, leaves: Set[int]) -> bool:
        m = self.fragment_count
        low, high = node, node
        while low < m:
            low *= 2
            high = high * 2 + 1
        return any(low <= leaf <= high for leaf in leaves)


def verify_with_siblings(
    fragment_count: int,
    fragments: Dict[int, bytes],
    siblings: Dict[int, bytes],
    expected_root: bytes,
) -> Tuple[bool, int]:
    """SOE-side verification.

    ``fragments`` maps fragment index -> fragment bytes (hashed here);
    ``siblings`` maps node number -> hash (supplied by the terminal).
    Returns ``(ok, recombinations)`` where ``recombinations`` counts the
    internal hash-combine operations performed in the SOE (charged by
    the cost model).
    """
    m = fragment_count
    known: Dict[int, bytes] = dict(siblings)
    for index, data in fragments.items():
        known[m + index] = sha1(data)
    recombinations = 0
    changed = True
    while changed and 1 not in known:
        changed = False
        for node in sorted(known.keys(), reverse=True):
            parent = node // 2
            if parent < 1 or parent in known:
                continue
            sibling = node ^ 1
            if sibling in known:
                left, right = (node, sibling) if node < sibling else (sibling, node)
                known[parent] = combine(known[left], known[right])
                recombinations += 1
                changed = True
    root = known.get(1)
    return (root == expected_root, recombinations)
