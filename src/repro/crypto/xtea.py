"""XTEA block cipher (Needham & Wheeler), 8-byte blocks, 16-byte key.

Used as the default cipher in benches: it has the same 64-bit block
geometry as (3)DES — so the chunk/fragment/block layout of Appendix A
is unchanged — but runs an order of magnitude faster in pure Python.
The architecture is cipher-agnostic (Section 6), and the SOE cost model
charges decryption per byte at the Table 1 throughput regardless of the
cipher doing the work.
"""

from __future__ import annotations

import struct

_DELTA = 0x9E3779B9
_MASK = 0xFFFFFFFF


class Xtea:
    """XTEA with the standard 64 Feistel half-rounds (32 cycles)."""

    block_size = 8
    key_size = 16

    def __init__(self, key: bytes, rounds: int = 32):
        if len(key) != 16:
            raise ValueError("XTEA key must be 16 bytes")
        self._key = struct.unpack(">4L", key)
        self.rounds = rounds

    def encrypt_block(self, block: bytes) -> bytes:
        v0, v1 = struct.unpack(">2L", block)
        k = self._key
        total = 0
        for _ in range(self.rounds):
            v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (total + k[total & 3]))) & _MASK
            total = (total + _DELTA) & _MASK
            v1 = (
                v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (total + k[(total >> 11) & 3]))
            ) & _MASK
        return struct.pack(">2L", v0, v1)

    def decrypt_block(self, block: bytes) -> bytes:
        v0, v1 = struct.unpack(">2L", block)
        k = self._key
        total = (_DELTA * self.rounds) & _MASK
        for _ in range(self.rounds):
            v1 = (
                v1 - ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (total + k[(total >> 11) & 3]))
            ) & _MASK
            total = (total - _DELTA) & _MASK
            v0 = (v0 - ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (total + k[total & 3]))) & _MASK
        return struct.pack(">2L", v0, v1)
