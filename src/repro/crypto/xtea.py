"""XTEA block cipher (Needham & Wheeler), 8-byte blocks, 16-byte key.

Used as the default cipher in benches: it has the same 64-bit block
geometry as (3)DES — so the chunk/fragment/block layout of Appendix A
is unchanged — but runs an order of magnitude faster in pure Python.
The architecture is cipher-agnostic (Section 6), and the SOE cost model
charges decryption per byte at the Table 1 throughput regardless of the
cipher doing the work.

The round schedule (``total + k[total & 3]`` / ``total + k[(total >>
11) & 3]``) is data-independent, so it is precomputed once per cipher
instance instead of being re-derived 32 times per block.  On top of the
per-block API, :meth:`Xtea.encrypt_blocks` / :meth:`Xtea.decrypt_blocks`
process a whole multi-block buffer in one call — no per-block function
dispatch, no struct round-trips — which is what the vectorized modes in
:mod:`repro.crypto.modes` build on.
"""

from __future__ import annotations

import struct
import threading
from collections import OrderedDict

_DELTA = 0x9E3779B9
_MASK = 0xFFFFFFFF

# Lane constants depend only on the block count, and buffer sizes repeat
# heavily (every chunk of a layout has the same block count), so they
# are memoized module-wide with a small LRU instead of being re-derived
# by big-int division on every encrypt_blocks/decrypt_blocks call.
_LANE_CONSTANTS: "OrderedDict[int, tuple]" = OrderedDict()
_LANE_CONSTANTS_SIZE = 64
_LANE_CONSTANTS_LOCK = threading.Lock()


def _lane_constants(count: int):
    with _LANE_CONSTANTS_LOCK:
        cached = _LANE_CONSTANTS.get(count)
        if cached is not None:
            _LANE_CONSTANTS.move_to_end(count)
            return cached
    ones = (1 << (64 * count)) // ((1 << 64) - 1)  # 1 in every lane
    lanes32 = _MASK * ones
    cached = (ones, lanes32)
    with _LANE_CONSTANTS_LOCK:
        _LANE_CONSTANTS[count] = cached
        while len(_LANE_CONSTANTS) > _LANE_CONSTANTS_SIZE:
            _LANE_CONSTANTS.popitem(last=False)
    return cached


def lane_constants_cache_info():
    with _LANE_CONSTANTS_LOCK:
        return {
            "size": len(_LANE_CONSTANTS),
            "maxsize": _LANE_CONSTANTS_SIZE,
        }


class Xtea:
    """XTEA with the standard 64 Feistel half-rounds (32 cycles)."""

    block_size = 8
    key_size = 16

    def __init__(self, key: bytes, rounds: int = 32):
        if len(key) != 16:
            raise ValueError("XTEA key must be 16 bytes")
        self._key = struct.unpack(">4L", key)
        self.rounds = rounds
        # Data-independent round schedule: the two key/sum mixes of each
        # cycle depend only on the round counter.  Masking to 32 bits is
        # safe — the XOR's high bits never reach the low 32 bits of the
        # subsequent masked add/subtract.
        k = self._key
        total = 0
        schedule = []
        for _ in range(rounds):
            first = (total + k[total & 3]) & _MASK
            total = (total + _DELTA) & _MASK
            second = (total + k[(total >> 11) & 3]) & _MASK
            schedule.append((first, second))
        self._schedule = tuple(schedule)
        self._schedule_rev = tuple(reversed(schedule))

    def encrypt_block(self, block: bytes) -> bytes:
        value = int.from_bytes(block, "big")
        v0 = value >> 32
        v1 = value & _MASK
        for first, second in self._schedule:
            v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ first)) & _MASK
            v1 = (v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ second)) & _MASK
        return ((v0 << 32) | v1).to_bytes(8, "big")

    def decrypt_block(self, block: bytes) -> bytes:
        value = int.from_bytes(block, "big")
        v0 = value >> 32
        v1 = value & _MASK
        for first, second in self._schedule_rev:
            v1 = (v1 - ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ second)) & _MASK
            v0 = (v0 - ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ first)) & _MASK
        return ((v0 << 32) | v1).to_bytes(8, "big")

    # -- whole-buffer fast paths ---------------------------------------
    # SIMD-within-a-register over Python big ints: every block's v0 (and
    # v1) word is packed into a 64-bit lane of one arbitrary-precision
    # integer, so each of the 64 half-rounds runs as a handful of
    # whole-buffer int operations instead of per-block arithmetic.  The
    # 32-bit values sit in the low half of each lane; the high half
    # absorbs add carries (< 2^38) and is cleared by the lane mask, so
    # lanes never contaminate each other:
    #
    #   shift <<4  : stays inside the lane (36 < 64 bits)
    #   shift >>5  : spills a lane's low bits into the neighbour's high
    #                half — removed by the & lanes32 mask
    #   add        : per-lane sums < 2^38, no carry across lanes
    #   subtract   : biased by 2^37 per lane (a multiple of 2^32, so
    #                the mod-2^32 result is unchanged) to avoid borrows
    def _lane_constants(self, count: int):
        return _lane_constants(count)

    def encrypt_blocks(self, data: bytes) -> bytes:
        """ECB-encrypt a whole multiple-of-8 buffer in one pass."""
        if len(data) % 8:
            raise ValueError("buffer length must be a multiple of 8")
        if len(data) == 8:
            return self.encrypt_block(data)
        if not data:
            return b""
        count = len(data) // 8
        ones, lanes32 = self._lane_constants(count)
        packed = int.from_bytes(data, "big")
        v0 = (packed >> 32) & lanes32
        v1 = packed & lanes32
        for first, second in self._schedule:
            v0 = (
                v0 + (((((v1 << 4) ^ ((v1 >> 5) & lanes32)) + v1)) ^ (first * ones))
            ) & lanes32
            v1 = (
                v1 + (((((v0 << 4) ^ ((v0 >> 5) & lanes32)) + v0)) ^ (second * ones))
            ) & lanes32
        return ((v0 << 32) | v1).to_bytes(len(data), "big")

    def decrypt_blocks(self, data: bytes) -> bytes:
        """ECB-decrypt a whole multiple-of-8 buffer in one pass."""
        if len(data) % 8:
            raise ValueError("buffer length must be a multiple of 8")
        if len(data) == 8:
            return self.decrypt_block(data)
        if not data:
            return b""
        count = len(data) // 8
        ones, lanes32 = self._lane_constants(count)
        bias = ones << 37  # > any per-lane subtrahend, and ≡ 0 mod 2^32
        packed = int.from_bytes(data, "big")
        v0 = (packed >> 32) & lanes32
        v1 = packed & lanes32
        for first, second in self._schedule_rev:
            v1 = (
                v1
                + bias
                - (((((v0 << 4) ^ ((v0 >> 5) & lanes32)) + v0)) ^ (second * ones))
            ) & lanes32
            v0 = (
                v0
                + bias
                - (((((v1 << 4) ^ ((v1 >> 5) & lanes32)) + v1)) ^ (first * ones))
            ) & lanes32
        return ((v0 << 32) | v1).to_bytes(len(data), "big")
