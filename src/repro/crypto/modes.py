"""Block cipher modes: ECB, CBC and the paper's position-XOR ECB.

Section 6 / Appendix A: plain ECB leaks equal blocks; CBC fixes that
but penalizes random access (each block needs its predecessor).  The
paper instead XORs each 8-byte block with its *absolute position* in
the document before ECB encryption: ``E_k(b XOR p)``.  Equal plaintext
blocks at different positions produce different ciphertexts, and any
single block can be decrypted independently given its position — which
also defeats block-substitution attacks (a moved block decrypts to
garbage because the position no longer matches).

Two implementations live side by side:

* the **default functions** (``encrypt_ecb`` & co.) are whole-buffer
  fast paths: they hand the entire buffer to the cipher's
  ``encrypt_blocks``/``decrypt_blocks`` when it has one, and XOR
  chains/position masks via ``int.from_bytes`` over the full buffer
  instead of a per-byte generator per block.  Position masks are
  memoized across calls (chunk base positions repeat on every read);
* the ``*_reference`` functions are the original block-at-a-time
  forms, kept as the differential-fuzz oracle
  (``tests/test_crypto.py``) and as the baseline of the crypto
  microbench (``repro bench hotpath``).
"""

from __future__ import annotations

import struct
import threading
from collections import OrderedDict
from typing import Protocol


class BlockCipher(Protocol):
    """Anything encrypting/decrypting fixed 8-byte blocks."""

    block_size: int

    def encrypt_block(self, block: bytes) -> bytes:
        ...

    def decrypt_block(self, block: bytes) -> bytes:
        ...


class NullCipher:
    """Identity cipher — for tests and cost-only simulations."""

    block_size = 8
    key_size = 0

    def __init__(self, key: bytes = b""):
        del key

    def encrypt_block(self, block: bytes) -> bytes:
        return bytes(block)

    def decrypt_block(self, block: bytes) -> bytes:
        return bytes(block)

    def encrypt_blocks(self, data: bytes) -> bytes:
        return bytes(data)

    def decrypt_blocks(self, data: bytes) -> bytes:
        return bytes(data)


def _check(data: bytes, block_size: int) -> None:
    if len(data) % block_size:
        raise ValueError(
            "data length %d is not a multiple of the %d-byte block size"
            % (len(data), block_size)
        )


def pad_to_block(data: bytes, block_size: int = 8) -> bytes:
    """Zero-pad to a whole number of blocks (sizes travel out of band)."""
    remainder = len(data) % block_size
    if remainder:
        return data + b"\x00" * (block_size - remainder)
    return data


def _encrypt_blocks(cipher: BlockCipher, data: bytes) -> bytes:
    fast = getattr(cipher, "encrypt_blocks", None)
    if fast is not None:
        return fast(data)
    size = cipher.block_size
    return b"".join(
        cipher.encrypt_block(data[i : i + size]) for i in range(0, len(data), size)
    )


def _decrypt_blocks(cipher: BlockCipher, data: bytes) -> bytes:
    fast = getattr(cipher, "decrypt_blocks", None)
    if fast is not None:
        return fast(data)
    size = cipher.block_size
    return b"".join(
        cipher.decrypt_block(data[i : i + size]) for i in range(0, len(data), size)
    )


# ----------------------------------------------------------------------
# ECB
# ----------------------------------------------------------------------
def encrypt_ecb(cipher: BlockCipher, data: bytes) -> bytes:
    _check(data, cipher.block_size)
    return _encrypt_blocks(cipher, data)


def decrypt_ecb(cipher: BlockCipher, data: bytes) -> bytes:
    _check(data, cipher.block_size)
    return _decrypt_blocks(cipher, data)


def encrypt_ecb_reference(cipher: BlockCipher, data: bytes) -> bytes:
    """Block-at-a-time oracle for :func:`encrypt_ecb`."""
    _check(data, cipher.block_size)
    size = cipher.block_size
    return b"".join(
        cipher.encrypt_block(data[i : i + size]) for i in range(0, len(data), size)
    )


def decrypt_ecb_reference(cipher: BlockCipher, data: bytes) -> bytes:
    """Block-at-a-time oracle for :func:`decrypt_ecb`."""
    _check(data, cipher.block_size)
    size = cipher.block_size
    return b"".join(
        cipher.decrypt_block(data[i : i + size]) for i in range(0, len(data), size)
    )


# ----------------------------------------------------------------------
# CBC
# ----------------------------------------------------------------------
def encrypt_cbc(cipher: BlockCipher, data: bytes, iv: bytes) -> bytes:
    _check(data, cipher.block_size)
    size = cipher.block_size
    if len(iv) != size:
        raise ValueError("IV must be one block")
    # A cipher may run the whole chain itself (the native kernels do:
    # CBC's serial dependency defeats the SWAR trick but costs nothing
    # in C).
    fast = getattr(cipher, "encrypt_cbc", None)
    if fast is not None:
        return fast(data, iv)
    out = bytearray()
    previous = int.from_bytes(iv, "big")
    encrypt_block = cipher.encrypt_block
    from_bytes = int.from_bytes
    for i in range(0, len(data), size):
        block = (from_bytes(data[i : i + size], "big") ^ previous).to_bytes(
            size, "big"
        )
        cipher_block = encrypt_block(block)
        previous = from_bytes(cipher_block, "big")
        out.extend(cipher_block)
    return bytes(out)


def decrypt_cbc(cipher: BlockCipher, data: bytes, iv: bytes) -> bytes:
    _check(data, cipher.block_size)
    size = cipher.block_size
    if len(iv) != size:
        raise ValueError("IV must be one block")
    if not data:
        return b""
    # Decrypt the whole buffer in one pass, then XOR with the shifted
    # ciphertext chain (iv || c_0 .. c_{n-2}) as one big-int operation.
    plain = _decrypt_blocks(cipher, data)
    chain = iv + data[:-size]
    return (
        int.from_bytes(plain, "big") ^ int.from_bytes(chain, "big")
    ).to_bytes(len(data), "big")


def encrypt_cbc_reference(cipher: BlockCipher, data: bytes, iv: bytes) -> bytes:
    """Block-at-a-time oracle for :func:`encrypt_cbc`."""
    _check(data, cipher.block_size)
    size = cipher.block_size
    if len(iv) != size:
        raise ValueError("IV must be one block")
    out = bytearray()
    previous = iv
    for i in range(0, len(data), size):
        block = bytes(a ^ b for a, b in zip(data[i : i + size], previous))
        previous = cipher.encrypt_block(block)
        out.extend(previous)
    return bytes(out)


def decrypt_cbc_reference(cipher: BlockCipher, data: bytes, iv: bytes) -> bytes:
    """Block-at-a-time oracle for :func:`decrypt_cbc`."""
    _check(data, cipher.block_size)
    size = cipher.block_size
    if len(iv) != size:
        raise ValueError("IV must be one block")
    out = bytearray()
    previous = iv
    for i in range(0, len(data), size):
        block = data[i : i + size]
        plain = cipher.decrypt_block(block)
        out.extend(a ^ b for a, b in zip(plain, previous))
        previous = block
    return bytes(out)


def encrypt_cbc_chunked(cipher, chunks, ivs):
    """CBC-encrypt many equal-sized chunks, each under its own IV.

    Every chunk is an independent CBC chain (the paper's integrity unit
    is the chunk, and :func:`make_iv` already derives the IV from the
    versioned chunk position), so the chains can advance *in lockstep*:
    step ``j`` gathers block ``j`` of every chunk into one buffer, XORs
    it with the previous step's ciphertext lanes as a single big-int
    operation, and makes one vectorized ``encrypt_blocks`` call for all
    chunks.  That turns ``chunks x blocks`` per-block cipher calls into
    ``blocks`` whole-buffer calls — the fix for cbc-encrypt's historic
    ~1x "speedup".

    Returns the list of ciphertext chunks, in order.  Falls back to
    per-chunk :func:`encrypt_cbc` whenever the lockstep layout does not
    apply (odd block size, unequal chunk lengths, a cipher without
    ``encrypt_blocks``, or a cipher with its own whole-chain
    ``encrypt_cbc`` — the native kernels — where per-chunk is already
    optimal).
    """
    chunks = list(chunks)
    ivs = list(ivs)
    if len(chunks) != len(ivs):
        raise ValueError("need exactly one IV per chunk")
    if not chunks:
        return []
    size = cipher.block_size
    length = len(chunks[0])
    lockstep = (
        size == 8
        and len(chunks) > 1
        and length % 8 == 0
        and getattr(cipher, "encrypt_cbc", None) is None
        and getattr(cipher, "encrypt_blocks", None) is not None
        and all(len(chunk) == length for chunk in chunks)
        and all(len(iv) == 8 for iv in ivs)
    )
    if not lockstep:
        return [encrypt_cbc(cipher, chunk, iv) for chunk, iv in zip(chunks, ivs)]
    count = len(chunks)
    out = [bytearray() for _ in range(count)]
    previous = int.from_bytes(b"".join(ivs), "big")
    encrypt_blocks = cipher.encrypt_blocks
    from_bytes = int.from_bytes
    for j in range(0, length, 8):
        gathered = b"".join(chunk[j : j + 8] for chunk in chunks)
        mixed = from_bytes(gathered, "big") ^ previous
        encrypted = encrypt_blocks(mixed.to_bytes(count * 8, "big"))
        previous = from_bytes(encrypted, "big")
        for index in range(count):
            out[index] += encrypted[index * 8 : index * 8 + 8]
    return [bytes(chunk) for chunk in out]


def encrypt_cbc_chunked_reference(cipher, chunks, ivs):
    """Per-chunk block-at-a-time oracle for :func:`encrypt_cbc_chunked`."""
    chunks = list(chunks)
    ivs = list(ivs)
    if len(chunks) != len(ivs):
        raise ValueError("need exactly one IV per chunk")
    return [
        encrypt_cbc_reference(cipher, chunk, iv)
        for chunk, iv in zip(chunks, ivs)
    ]


def make_iv(index: int, block_size: int = 8) -> bytes:
    """Deterministic per-chunk IV derived from the chunk index."""
    return struct.pack(">Q", index)[:block_size].rjust(block_size, b"\x00")


# ----------------------------------------------------------------------
# Position-XOR ECB (the paper's scheme)
# ----------------------------------------------------------------------
#: Byte positions live below this bit; document versions above it (and
#: below bit 62, the digest position space of repro.crypto.integrity).
VERSION_SHIFT = 40


def versioned_position(position: int, version: int) -> int:
    """Fold a document version into the position space.

    The paper binds each block to its *location*; a live update path
    must also bind it to *time*, or a terminal can splice back a chunk
    captured before the update and it would still decrypt and verify.
    Folding the version counter into the high bits of the position
    makes every re-encryption a fresh position space: a stale-version
    chunk decrypts to garbage and its digest no longer matches.
    Version 0 is the identity, so pre-update stores are unchanged.
    """
    if version < 0:
        raise ValueError("document version must be >= 0")
    if version:
        return position + (version << VERSION_SHIFT)
    return position


def _position_mask(position: int) -> bytes:
    return struct.pack(">Q", position & 0xFFFFFFFFFFFFFFFF)


#: Memoized whole-buffer position masks.  Chunk reads re-derive the
#: same (base position, block count) pairs on every request, so the
#: concatenated 64-bit position words are computed once and reused;
#: version bumps change the base position and simply mint new entries.
_POSITION_MASKS: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
_POSITION_MASKS_SIZE = 256
_POSITION_MASKS_LOCK = threading.Lock()
_POSITION_MASK_HITS = 0
_POSITION_MASK_MISSES = 0

_Q64 = 0xFFFFFFFFFFFFFFFF


def _positions_int(start_position: int, block_count: int) -> int:
    """Big-int concatenation of the 64-bit positions of `block_count`
    consecutive 8-byte blocks starting at `start_position`."""
    global _POSITION_MASK_HITS, _POSITION_MASK_MISSES
    key = (start_position, block_count)
    with _POSITION_MASKS_LOCK:
        mask = _POSITION_MASKS.get(key)
        if mask is not None:
            _POSITION_MASKS.move_to_end(key)
            _POSITION_MASK_HITS += 1
            return mask
    mask = 0
    position = start_position
    for _ in range(block_count):
        mask = (mask << 64) | (position & _Q64)
        position += 8
    with _POSITION_MASKS_LOCK:
        _POSITION_MASKS[key] = mask
        _POSITION_MASK_MISSES += 1
        while len(_POSITION_MASKS) > _POSITION_MASKS_SIZE:
            _POSITION_MASKS.popitem(last=False)
    return mask


def position_mask_cache_info():
    """Hit/miss/size counters of the bounded position-mask LRU.

    The memo is capped at ``_POSITION_MASKS_SIZE`` entries so a
    long-lived station churning document versions (each version mints a
    fresh position space) cannot grow it without bound; eviction is
    least-recently-used.
    """
    with _POSITION_MASKS_LOCK:
        return {
            "hits": _POSITION_MASK_HITS,
            "misses": _POSITION_MASK_MISSES,
            "size": len(_POSITION_MASKS),
            "maxsize": _POSITION_MASKS_SIZE,
        }


def encrypt_positioned(cipher: BlockCipher, data: bytes, start_position: int) -> bytes:
    """Encrypt ``E_k(b XOR p)`` where ``p`` is the absolute byte
    position of each block in the document (``start_position`` for the
    first block, +8 per block)."""
    _check(data, cipher.block_size)
    if cipher.block_size != 8:
        return encrypt_positioned_reference(cipher, data, start_position)
    if not data:
        return b""
    fast = getattr(cipher, "encrypt_positioned", None)
    if fast is not None:
        return fast(data, start_position)
    mask = _positions_int(start_position, len(data) // 8)
    xored = (int.from_bytes(data, "big") ^ mask).to_bytes(len(data), "big")
    return _encrypt_blocks(cipher, xored)


def decrypt_positioned(cipher: BlockCipher, data: bytes, start_position: int) -> bytes:
    """Inverse of :func:`encrypt_positioned` — any block decrypts
    independently given its position (random access)."""
    _check(data, cipher.block_size)
    if cipher.block_size != 8:
        return decrypt_positioned_reference(cipher, data, start_position)
    if not data:
        return b""
    fast = getattr(cipher, "decrypt_positioned", None)
    if fast is not None:
        return fast(data, start_position)
    plain = _decrypt_blocks(cipher, data)
    mask = _positions_int(start_position, len(data) // 8)
    return (int.from_bytes(plain, "big") ^ mask).to_bytes(len(data), "big")


def encrypt_positioned_reference(
    cipher: BlockCipher, data: bytes, start_position: int
) -> bytes:
    """Block-at-a-time oracle for :func:`encrypt_positioned`."""
    _check(data, cipher.block_size)
    size = cipher.block_size
    out = bytearray()
    for i in range(0, len(data), size):
        mask = _position_mask(start_position + i)
        block = bytes(a ^ b for a, b in zip(data[i : i + size], mask))
        out.extend(cipher.encrypt_block(block))
    return bytes(out)


def decrypt_positioned_reference(
    cipher: BlockCipher, data: bytes, start_position: int
) -> bytes:
    """Block-at-a-time oracle for :func:`decrypt_positioned`."""
    _check(data, cipher.block_size)
    size = cipher.block_size
    out = bytearray()
    for i in range(0, len(data), size):
        mask = _position_mask(start_position + i)
        plain = cipher.decrypt_block(data[i : i + size])
        out.extend(a ^ b for a, b in zip(plain, mask))
    return bytes(out)
