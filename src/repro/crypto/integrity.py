"""Confidentiality + integrity schemes compared in Fig. 11.

Four ways of protecting the encoded document at the untrusted terminal:

* **ECB** — position-XOR ECB encryption only: confidentiality without
  tamper resistance (the baseline of Fig. 11);
* **CBC-SHA** — CBC encryption + SHA-1 digest of each chunk's
  *plaintext*: the direct state-of-the-art combination.  Any access
  forces the SOE to transfer and decrypt the whole chunk to recompute
  the digest;
* **CBC-SHAC** — same, but the digest covers the *ciphertext*: the SOE
  still transfers the whole chunk but only decrypts the blocks it
  needs;
* **ECB-MHT** — the paper's proposal: position-XOR ECB + a Merkle hash
  tree over the chunk's fragments (hashing the ciphertext).  The SOE
  transfers only the fragments it reads plus the sibling hashes the
  terminal computes, recombines the root and checks it against the
  encrypted ChunkDigest.

All schemes expose the same interface: :meth:`BaseScheme.protect` turns
an encoded plaintext into a :class:`SecureDocument` (what the terminal
stores) and :meth:`BaseScheme.reader` opens an SOE-side random-access
reader that decrypts, verifies and charges every primitive cost to a
:class:`~repro.metrics.Meter`.  :class:`SecureBytes` adapts a reader to
the bytes-like interface the Skip-index decoder expects, so the whole
pipeline (decrypt -> verify -> decode -> evaluate) composes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.crypto.chunks import ChunkLayout
from repro.crypto.des import Des, TripleDes
from repro.crypto.merkle import HASH_SIZE, MerkleTree, sha1, verify_with_siblings
from repro.crypto.modes import (
    BlockCipher,
    NullCipher,
    decrypt_cbc,
    decrypt_positioned,
    encrypt_cbc,
    encrypt_cbc_chunked,
    encrypt_positioned,
    make_iv,
    versioned_position,
)
from repro.crypto.xtea import Xtea
from repro.metrics import Meter


class IntegrityError(Exception):
    """Raised when tampering is detected."""


class SecureDocument:
    """One protected document: chunk records (digest + payload).

    ``stored`` is what the untrusted terminal holds and may tamper
    with.  ``version`` / ``chunk_versions`` are *trusted* metadata that
    travel with the document key over the secure channel (Section 2):
    the document-level update counter and, per chunk, the version it
    was last (re-)encrypted under.  Both feed the position/MAC
    derivation, so a chunk record captured before an update no longer
    verifies once the chunk has been re-encrypted — the cross-version
    replay the original scheme could not detect.
    """

    def __init__(
        self,
        scheme: "BaseScheme",
        stored: bytes,
        plaintext_size: int,
        version: int = 0,
        chunk_versions: Optional[List[int]] = None,
    ):
        self.scheme = scheme
        if isinstance(stored, (bytes, bytearray, memoryview)):
            stored = bytearray(stored)  # mutable so tests can tamper
        # Anything else is a store pager (len + contiguous slicing):
        # keep it as-is so chunk records page in from disk on demand.
        self.stored = stored
        self.plaintext_size = plaintext_size
        self.layout = scheme.layout
        self.version = version
        if chunk_versions is None:
            chunk_versions = [version] * self.layout.chunk_count(plaintext_size)
        self.chunk_versions = list(chunk_versions)

    def chunk_version(self, chunk_index: int) -> int:
        """Version chunk ``chunk_index`` was last encrypted under."""
        if 0 <= chunk_index < len(self.chunk_versions):
            return self.chunk_versions[chunk_index]
        return self.version

    def stored_size(self) -> int:
        return len(self.stored)

    def chunk_record(self, chunk_index: int) -> Tuple[bytes, bytes]:
        """(digest header, encrypted payload) of one chunk record."""
        layout = self.layout
        digest_size = layout.digest_size if self.scheme.has_digest else 0
        record_size = digest_size + layout.chunk_size
        start = chunk_index * record_size
        record = bytes(self.stored[start : start + record_size])
        return record[:digest_size], record[digest_size:]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SecureDocument(%s, %d bytes stored)" % (
            self.scheme.name,
            len(self.stored),
        )


class BaseScheme:
    """Common machinery: chunking, digest encryption, reader factory."""

    name = "base"
    has_digest = True

    def __init__(
        self,
        key: bytes = b"\x00" * 16,
        cipher_factory: Callable[[bytes], BlockCipher] = Xtea,
        layout: Optional[ChunkLayout] = None,
        backend=None,
    ):
        self._key = key
        self._cipher_factory = cipher_factory
        self.backend = backend
        if backend is not None:
            # The backend may swap the factory for an accelerated twin
            # (native kernels); output stays byte-identical.
            cipher_factory = backend.cipher_factory(cipher_factory)
        self.cipher = cipher_factory(key)
        self.layout = layout if layout is not None else ChunkLayout()
        if self.cipher.block_size != self.layout.block_size:
            raise ValueError("cipher block size does not match the layout")

    def spec(self):
        """A picklable description a pool worker can rebuild the scheme
        from (:func:`scheme_from_spec`), or ``None`` when the scheme
        cannot be reconstructed remotely (custom cipher factory, or a
        scheme whose chunk records are not independent)."""
        kind = _cipher_kind(self._cipher_factory)
        if kind is None:
            return None
        layout = self.layout
        return (
            self.name,
            self._key,
            kind,
            layout.chunk_size,
            layout.fragment_size,
            layout.block_size,
            layout.digest_size,
        )

    # -- scheme-specific hooks -----------------------------------------
    def _encrypt_chunk(self, chunk: bytes, chunk_index: int, version: int = 0) -> bytes:
        raise NotImplementedError

    def _digest_input(self, plaintext_chunk: bytes, cipher_chunk: bytes) -> bytes:
        raise NotImplementedError

    # -- digest encryption (shared) ------------------------------------
    def _encrypt_digest(
        self, digest: bytes, chunk_index: int, version: int = 0
    ) -> bytes:
        padded = digest + b"\x00" * (self.layout.digest_size - len(digest))
        # A distinct position space (high bit set) keeps digest blocks
        # unlinkable to payload blocks; the version folds in below it,
        # binding each digest record to the update that produced it.
        position = versioned_position(
            (1 << 62) + chunk_index * self.layout.digest_size, version
        )
        return encrypt_positioned(self.cipher, padded, position)

    def _decrypt_digest(
        self, encrypted: bytes, chunk_index: int, version: int = 0
    ) -> bytes:
        position = versioned_position(
            (1 << 62) + chunk_index * self.layout.digest_size, version
        )
        return decrypt_positioned(self.cipher, encrypted, position)[:HASH_SIZE]

    # -- public API -------------------------------------------------------
    def protect(self, plaintext: bytes, version: int = 0) -> SecureDocument:
        """Encrypt (and digest) ``plaintext`` for storage at the terminal."""
        if self.backend is not None:
            document = self.backend.protect_document(self, plaintext, version)
            if document is not None:
                return document
        layout = self.layout
        stored = bytearray()
        count = layout.chunk_count(len(plaintext))
        for record in self._chunk_records(plaintext, range(count), version):
            stored.extend(record)
        return SecureDocument(self, bytes(stored), len(plaintext), version=version)

    def record_stream(self, plaintext: bytes, version: int = 0):
        """Yield the document's stored chunk records in order, without
        materializing the concatenated ciphertext — the streaming
        publish path of a disk store buffers at most one log segment of
        these at a time."""
        count = self.layout.chunk_count(len(plaintext))
        return self._chunk_records(plaintext, range(count), version)

    def _chunk_records(self, plaintext: bytes, indexes, version: int):
        """Yield the stored records for ``indexes``, in order.

        The batching hook behind both serial :meth:`protect` and the
        pool backend's work units: schemes whose chunk records are
        independent may override it to vectorize across chunks (the CBC
        schemes do), and a worker process calls it with just its
        assigned index range.
        """
        for chunk_index in indexes:
            yield self._chunk_record(plaintext, chunk_index, version)

    def _chunk_record(self, plaintext: bytes, chunk_index: int, version: int) -> bytes:
        """One stored chunk record ([digest header +] encrypted payload)."""
        layout = self.layout
        start, end = layout.chunk_range(chunk_index, len(plaintext))
        chunk = layout.pad_chunk(plaintext[start:end])
        cipher_chunk = self._encrypt_chunk(chunk, chunk_index, version)
        if not self.has_digest:
            return cipher_chunk
        digest = self._chunk_digest(chunk, cipher_chunk)
        return self._encrypt_digest(digest, chunk_index, version) + cipher_chunk

    def reencrypt(
        self,
        document: SecureDocument,
        new_plaintext: bytes,
        dirty_chunks: Set[int],
        version: int,
    ) -> Tuple[SecureDocument, int]:
        """Copy-on-write update: rebuild only the dirty chunk records.

        Returns ``(new document, chunks re-encrypted)``.  The input
        ``document`` is left byte-for-byte untouched, so in-flight
        readers holding it finish against a consistent pre-update
        snapshot.  Dirty chunks (plus any chunk the new plaintext adds
        beyond the old chunk count) are re-encrypted under ``version``;
        clean chunk records are shared as-is and keep their recorded
        versions, so the whole store stays verifiable chunk by chunk.
        The caller is responsible for ``dirty_chunks`` covering every
        byte range that actually changed.
        """
        layout = self.layout
        record = (layout.digest_size if self.has_digest else 0) + layout.chunk_size
        old_count = layout.chunk_count(document.plaintext_size)
        new_count = layout.chunk_count(len(new_plaintext))
        keep = min(old_count, new_count)
        stored = bytearray(document.stored[: keep * record])
        stored.extend(b"\x00" * ((new_count - keep) * record))
        versions = list(document.chunk_versions[:keep])
        versions.extend([version] * (new_count - keep))
        dirty = {index for index in dirty_chunks if 0 <= index < new_count}
        dirty.update(range(keep, new_count))
        for chunk_index in sorted(dirty):
            start = chunk_index * record
            stored[start : start + record] = self._chunk_record(
                new_plaintext, chunk_index, version
            )
            versions[chunk_index] = version
        updated = SecureDocument(
            self,
            bytes(stored),
            len(new_plaintext),
            version=version,
            chunk_versions=versions,
        )
        return updated, len(dirty)

    def _chunk_digest(self, plaintext_chunk: bytes, cipher_chunk: bytes) -> bytes:
        return sha1(self._digest_input(plaintext_chunk, cipher_chunk))

    def reader(self, document: SecureDocument, meter: Optional[Meter] = None):
        raise NotImplementedError


class _ChunkCache:
    """Single-chunk SOE cache (the SOE RAM holds one chunk at a time;
    non-contiguous accesses re-pay the chunk work, as in the paper's
    worst case of one digest per visited chunk)."""

    def __init__(self):
        self.chunk_index: Optional[int] = None
        self.plain: Optional[bytearray] = None
        self.have_blocks: Set[int] = set()
        self.have_fragments: Set[int] = set()
        self.cipher_chunk: Optional[bytes] = None
        self.digest: Optional[bytes] = None

    def switch_to(self, chunk_index: int) -> bool:
        """Focus the cache on ``chunk_index``; True if it was a miss."""
        if self.chunk_index == chunk_index:
            return False
        self.chunk_index = chunk_index
        self.plain = None
        self.have_blocks = set()
        self.have_fragments = set()
        self.cipher_chunk = None
        self.digest = None
        return True


class BaseReader:
    """SOE-side random-access reader: scheme-specific per-chunk work is
    delegated to ``_prepare_chunk`` / ``_materialize_blocks``."""

    def __init__(self, scheme: BaseScheme, document: SecureDocument, meter: Meter):
        self.scheme = scheme
        self.document = document
        self.meter = meter
        self.layout = scheme.layout
        self.cache = _ChunkCache()

    # ------------------------------------------------------------------
    def read(self, offset: int, length: int) -> bytes:
        """Plaintext bytes ``[offset, offset+length)``, decrypted and
        verified; every primitive cost is charged to the meter."""
        if length <= 0:
            return b""
        end = min(offset + length, self.document.plaintext_size)
        if offset >= end:
            return b""
        out = bytearray()
        layout = self.layout
        for chunk_index in layout.chunks_covering(offset, end - offset):
            chunk_start, chunk_end = layout.chunk_range(
                chunk_index, self.document.plaintext_size
            )
            lo = max(offset, chunk_start) - chunk_start
            hi = min(end, chunk_end) - chunk_start
            if self.cache.switch_to(chunk_index):
                self.meter.chunks_accessed += 1
                self._prepare_chunk(chunk_index)
            self._ensure_range(chunk_index, lo, hi)
            assert self.cache.plain is not None
            out.extend(self.cache.plain[lo:hi])
        return bytes(out)

    # -- hooks ----------------------------------------------------------
    def _prepare_chunk(self, chunk_index: int) -> None:
        """Chunk-granularity work on first touch (transfer/verify)."""
        raise NotImplementedError

    def _ensure_range(self, chunk_index: int, lo: int, hi: int) -> None:
        """Make plaintext bytes ``[lo, hi)`` of the chunk available."""
        raise NotImplementedError


def _decrypt_block_runs(
    cipher,
    payload: bytes,
    base_position: int,
    first: int,
    last: int,
    cache: _ChunkCache,
    meter: Meter,
    block: int,
    charge_transfer: bool = True,
) -> None:
    """Decrypt the not-yet-cached blocks in ``[first, last]`` as
    contiguous runs (one positioned-mode call per run instead of one
    per 8-byte block); charges are identical to the per-block form.

    ``charge_transfer=False`` for readers whose transfer was already
    charged at fragment granularity (ECB-MHT).
    """
    have = cache.have_blocks
    plain_buffer = cache.plain
    index = first
    while index <= last:
        if index in have:
            index += 1
            continue
        run_start = index
        while index <= last and index not in have:
            index += 1
        span = payload[run_start * block : index * block]
        if charge_transfer:
            meter.bytes_transferred += len(span)
        plain = decrypt_positioned(cipher, span, base_position + run_start * block)
        meter.bytes_decrypted += len(span)
        plain_buffer[run_start * block : index * block] = plain
        have.update(range(run_start, index))


# ----------------------------------------------------------------------
# ECB: confidentiality only
# ----------------------------------------------------------------------
class EcbScheme(BaseScheme):
    """Position-XOR ECB without integrity (Fig. 11's 'ECB')."""

    name = "ECB"
    has_digest = False

    def _encrypt_chunk(self, chunk: bytes, chunk_index: int, version: int = 0) -> bytes:
        return encrypt_positioned(
            self.cipher,
            chunk,
            versioned_position(chunk_index * self.layout.chunk_size, version),
        )

    def reader(self, document: SecureDocument, meter: Optional[Meter] = None):
        return _EcbReader(self, document, meter if meter is not None else Meter())


class _EcbReader(BaseReader):
    def _prepare_chunk(self, chunk_index: int) -> None:
        self.cache.plain = bytearray(self.layout.chunk_size)

    def _ensure_range(self, chunk_index: int, lo: int, hi: int) -> None:
        layout = self.layout
        block = layout.block_size
        _digest, payload = self.document.chunk_record(chunk_index)
        first = lo // block
        last = (hi - 1) // block
        base = versioned_position(
            chunk_index * layout.chunk_size,
            self.document.chunk_version(chunk_index),
        )
        _decrypt_block_runs(
            self.scheme.cipher,
            payload,
            base,
            first,
            last,
            self.cache,
            self.meter,
            block,
        )


class _CbcChunkedProtect:
    """Vectorized protect for the per-chunk CBC schemes.

    Each chunk is its own CBC chain (the IV comes from the versioned
    chunk position), so chains are independent and can run in lockstep
    through :func:`encrypt_cbc_chunked` — one vectorized cipher call
    per block *step* instead of one per block.  Byte-identical to the
    per-chunk form.
    """

    def _chunk_records(self, plaintext, indexes, version):
        indexes = list(indexes)
        layout = self.layout
        chunks = []
        for chunk_index in indexes:
            start, end = layout.chunk_range(chunk_index, len(plaintext))
            chunks.append(layout.pad_chunk(plaintext[start:end]))
        ivs = [
            make_iv(versioned_position(chunk_index, version))
            for chunk_index in indexes
        ]
        cipher_chunks = encrypt_cbc_chunked(self.cipher, chunks, ivs)
        for chunk_index, chunk, cipher_chunk in zip(indexes, chunks, cipher_chunks):
            digest = self._chunk_digest(chunk, cipher_chunk)
            yield self._encrypt_digest(digest, chunk_index, version) + cipher_chunk


# ----------------------------------------------------------------------
# CBC-SHA: CBC + digest over the plaintext chunk
# ----------------------------------------------------------------------
class CbcShaScheme(_CbcChunkedProtect, BaseScheme):
    """CBC encryption, SHA-1 of the *plaintext* chunk (Fig. 11's
    'CBC-SHA'): every access costs a full chunk transfer + decrypt +
    hash."""

    name = "CBC-SHA"

    def _encrypt_chunk(self, chunk: bytes, chunk_index: int, version: int = 0) -> bytes:
        return encrypt_cbc(
            self.cipher, chunk, make_iv(versioned_position(chunk_index, version))
        )

    def _digest_input(self, plaintext_chunk: bytes, cipher_chunk: bytes) -> bytes:
        return plaintext_chunk

    def reader(self, document: SecureDocument, meter: Optional[Meter] = None):
        return _CbcShaReader(self, document, meter if meter is not None else Meter())


class _CbcShaReader(BaseReader):
    def _prepare_chunk(self, chunk_index: int) -> None:
        layout = self.layout
        version = self.document.chunk_version(chunk_index)
        encrypted_digest, payload = self.document.chunk_record(chunk_index)
        self.meter.bytes_transferred += layout.digest_size + layout.chunk_size
        plain = decrypt_cbc(
            self.scheme.cipher,
            payload,
            make_iv(versioned_position(chunk_index, version)),
        )
        self.meter.bytes_decrypted += layout.chunk_size
        self.meter.bytes_hashed += layout.chunk_size
        digest = self.scheme._decrypt_digest(encrypted_digest, chunk_index, version)
        self.meter.bytes_decrypted += layout.digest_size
        self.meter.digest_decrypts += 1
        if sha1(plain) != digest:
            raise IntegrityError("chunk %d digest mismatch" % chunk_index)
        self.cache.plain = bytearray(plain)
        self.cache.have_blocks = set(range(layout.chunk_size // layout.block_size))

    def _ensure_range(self, chunk_index: int, lo: int, hi: int) -> None:
        pass  # the whole chunk was materialized in _prepare_chunk


# ----------------------------------------------------------------------
# CBC-SHAC: CBC + digest over the ciphertext chunk
# ----------------------------------------------------------------------
class CbcShacScheme(_CbcChunkedProtect, BaseScheme):
    """CBC encryption, SHA-1 of the *ciphertext* chunk: the SOE checks
    integrity without decrypting the chunk (only the needed blocks)."""

    name = "CBC-SHAC"

    def _encrypt_chunk(self, chunk: bytes, chunk_index: int, version: int = 0) -> bytes:
        return encrypt_cbc(
            self.cipher, chunk, make_iv(versioned_position(chunk_index, version))
        )

    def _digest_input(self, plaintext_chunk: bytes, cipher_chunk: bytes) -> bytes:
        return cipher_chunk

    def reader(self, document: SecureDocument, meter: Optional[Meter] = None):
        return _CbcShacReader(self, document, meter if meter is not None else Meter())


class _CbcShacReader(BaseReader):
    def _prepare_chunk(self, chunk_index: int) -> None:
        layout = self.layout
        version = self.document.chunk_version(chunk_index)
        encrypted_digest, payload = self.document.chunk_record(chunk_index)
        self.meter.bytes_transferred += layout.digest_size + layout.chunk_size
        self.meter.bytes_hashed += layout.chunk_size
        digest = self.scheme._decrypt_digest(encrypted_digest, chunk_index, version)
        self.meter.bytes_decrypted += layout.digest_size
        self.meter.digest_decrypts += 1
        if sha1(payload) != digest:
            raise IntegrityError("chunk %d digest mismatch" % chunk_index)
        self.cache.cipher_chunk = payload
        self.cache.plain = bytearray(layout.chunk_size)

    def _ensure_range(self, chunk_index: int, lo: int, hi: int) -> None:
        layout = self.layout
        block = layout.block_size
        payload = self.cache.cipher_chunk
        assert payload is not None
        first = lo // block
        last = (hi - 1) // block
        for index in range(first, last + 1):
            if index in self.cache.have_blocks:
                continue
            previous = (
                make_iv(
                    versioned_position(
                        chunk_index, self.document.chunk_version(chunk_index)
                    )
                )
                if index == 0
                else payload[(index - 1) * block : index * block]
            )
            cipher_block = payload[index * block : (index + 1) * block]
            plain_block = self.scheme.cipher.decrypt_block(cipher_block)
            plain = (
                int.from_bytes(plain_block, "big") ^ int.from_bytes(previous, "big")
            ).to_bytes(block, "big")
            self.meter.bytes_decrypted += block
            self.cache.plain[index * block : (index + 1) * block] = plain
            self.cache.have_blocks.add(index)


# ----------------------------------------------------------------------
# CBC-SHA-DOC: one CBC chain over the whole document (compat variant)
# ----------------------------------------------------------------------
class CbcShaDocScheme(BaseScheme):
    """CBC-SHA with a single document-wide CBC chain.

    The per-chunk CBC schemes restart the chain at every chunk, which
    is what makes their encryption parallelizable; this variant keeps
    the classic whole-document chain — chunk ``i``'s IV is the last
    ciphertext block of chunk ``i-1`` — for interoperability with
    stores written that way.  The price is inherent: encryption is
    sequential (``spec()`` returns ``None`` so the pool backend leaves
    it serial) and any update cascades re-encryption from the first
    dirty chunk to the end of the document.
    """

    name = "CBC-SHA-DOC"

    def _digest_input(self, plaintext_chunk: bytes, cipher_chunk: bytes) -> bytes:
        return plaintext_chunk

    def spec(self):
        return None  # chunk records are chained, not independent

    def record_stream(self, plaintext: bytes, version: int = 0):
        count = self.layout.chunk_count(len(plaintext))
        previous = make_iv(versioned_position(0, version))
        return self._iter_records(plaintext, 0, count, version, previous)

    def _iter_records(self, plaintext: bytes, first: int, count: int,
                      version: int, previous: bytes):
        """Records for chunks ``[first, count)`` given the chain state
        ``previous`` (the IV for chunk ``first``)."""
        layout = self.layout
        for chunk_index in range(first, count):
            start, end = layout.chunk_range(chunk_index, len(plaintext))
            chunk = layout.pad_chunk(plaintext[start:end])
            cipher_chunk = encrypt_cbc(self.cipher, chunk, previous)
            digest = self._chunk_digest(chunk, cipher_chunk)
            yield self._encrypt_digest(digest, chunk_index, version) + cipher_chunk
            previous = cipher_chunk[-layout.block_size :]

    def protect(self, plaintext: bytes, version: int = 0) -> SecureDocument:
        layout = self.layout
        stored = bytearray()
        count = layout.chunk_count(len(plaintext))
        previous = make_iv(versioned_position(0, version))
        for record in self._iter_records(plaintext, 0, count, version, previous):
            stored.extend(record)
        return SecureDocument(self, bytes(stored), len(plaintext), version=version)

    def reencrypt(
        self,
        document: SecureDocument,
        new_plaintext: bytes,
        dirty_chunks: Set[int],
        version: int,
    ) -> Tuple[SecureDocument, int]:
        layout = self.layout
        record = layout.digest_size + layout.chunk_size
        old_count = layout.chunk_count(document.plaintext_size)
        new_count = layout.chunk_count(len(new_plaintext))
        keep = min(old_count, new_count)
        dirty = {index for index in dirty_chunks if 0 <= index < new_count}
        dirty.update(range(keep, new_count))
        # The chain makes every chunk after the first dirty one depend
        # on re-encrypted ciphertext, so the rewrite cascades to the
        # end of the document.
        first = min(dirty) if dirty else new_count
        stored = bytearray(document.stored[: first * record])
        versions = list(document.chunk_versions[:first])
        if first == 0:
            previous = make_iv(versioned_position(0, version))
        else:
            previous = bytes(
                document.stored[first * record - layout.block_size : first * record]
            )
        for rec in self._iter_records(new_plaintext, first, new_count,
                                      version, previous):
            stored.extend(rec)
            versions.append(version)
        updated = SecureDocument(
            self,
            bytes(stored),
            len(new_plaintext),
            version=version,
            chunk_versions=versions,
        )
        return updated, new_count - first

    def reader(self, document: SecureDocument, meter: Optional[Meter] = None):
        return _CbcShaDocReader(
            self, document, meter if meter is not None else Meter()
        )


class _CbcShaDocReader(BaseReader):
    def _prepare_chunk(self, chunk_index: int) -> None:
        layout = self.layout
        version = self.document.chunk_version(chunk_index)
        encrypted_digest, payload = self.document.chunk_record(chunk_index)
        self.meter.bytes_transferred += layout.digest_size + layout.chunk_size
        if chunk_index == 0:
            iv = make_iv(
                versioned_position(0, self.document.chunk_version(0))
            )
        else:
            # The chain IV is the previous chunk's last ciphertext
            # block, fetched from the (untrusted) store; tampering with
            # it garbles this chunk's first block and fails the digest.
            _prev_digest, prev_payload = self.document.chunk_record(
                chunk_index - 1
            )
            iv = prev_payload[-layout.block_size :]
            self.meter.bytes_transferred += layout.block_size
        plain = decrypt_cbc(self.scheme.cipher, payload, iv)
        self.meter.bytes_decrypted += layout.chunk_size
        self.meter.bytes_hashed += layout.chunk_size
        digest = self.scheme._decrypt_digest(
            encrypted_digest, chunk_index, version
        )
        self.meter.bytes_decrypted += layout.digest_size
        self.meter.digest_decrypts += 1
        if sha1(plain) != digest:
            raise IntegrityError("chunk %d digest mismatch" % chunk_index)
        self.cache.plain = bytearray(plain)
        self.cache.have_blocks = set(range(layout.chunk_size // layout.block_size))

    def _ensure_range(self, chunk_index: int, lo: int, hi: int) -> None:
        pass  # the whole chunk was materialized in _prepare_chunk


# ----------------------------------------------------------------------
# ECB-MHT: the paper's proposal
# ----------------------------------------------------------------------
class EcbMhtScheme(BaseScheme):
    """Position-XOR ECB + Merkle hash tree per chunk (Fig. 11's
    'ECB-MHT'): only the touched fragments enter the SOE; the terminal
    cooperates by sending sibling hashes (Fig. F1)."""

    name = "ECB-MHT"

    def _encrypt_chunk(self, chunk: bytes, chunk_index: int, version: int = 0) -> bytes:
        return encrypt_positioned(
            self.cipher,
            chunk,
            versioned_position(chunk_index * self.layout.chunk_size, version),
        )

    def _digest_input(self, plaintext_chunk: bytes, cipher_chunk: bytes) -> bytes:
        raise NotImplementedError  # the digest is the Merkle root instead

    def _chunk_digest(self, plaintext_chunk: bytes, cipher_chunk: bytes) -> bytes:
        tree = MerkleTree(self.layout.split_fragments(cipher_chunk))
        return tree.root

    def reader(self, document: SecureDocument, meter: Optional[Meter] = None):
        return _EcbMhtReader(self, document, meter if meter is not None else Meter())


class _EcbMhtReader(BaseReader):
    def __init__(self, scheme, document, meter):
        super().__init__(scheme, document, meter)
        self._tree_cache: Dict[int, MerkleTree] = {}

    def _terminal_tree(self, chunk_index: int) -> MerkleTree:
        """The terminal's Merkle tree for a chunk (untrusted side; built
        over the ciphertext it stores)."""
        tree = self._tree_cache.get(chunk_index)
        if tree is None:
            _digest, payload = self.document.chunk_record(chunk_index)
            tree = MerkleTree(self.layout.split_fragments(payload))
            self._tree_cache[chunk_index] = tree
        return tree

    def _prepare_chunk(self, chunk_index: int) -> None:
        layout = self.layout
        encrypted_digest, _payload = self.document.chunk_record(chunk_index)
        self.meter.bytes_transferred += layout.digest_size
        self.cache.digest = self.scheme._decrypt_digest(
            encrypted_digest, chunk_index, self.document.chunk_version(chunk_index)
        )
        self.meter.bytes_decrypted += layout.digest_size
        self.meter.digest_decrypts += 1
        self.cache.plain = bytearray(layout.chunk_size)

    def _ensure_range(self, chunk_index: int, lo: int, hi: int) -> None:
        layout = self.layout
        needed_fragments = [
            f
            for f in layout.fragments_covering(lo, hi - lo)
            if f not in self.cache.have_fragments
        ]
        _digest, payload = self.document.chunk_record(chunk_index)
        if needed_fragments:
            fragment_size = layout.fragment_size
            fragments: Dict[int, bytes] = {}
            for f in needed_fragments:
                data = payload[f * fragment_size : (f + 1) * fragment_size]
                fragments[f] = data
                self.meter.bytes_transferred += fragment_size
                self.meter.bytes_hashed += fragment_size
            siblings = self._terminal_tree(chunk_index).sibling_hashes(
                needed_fragments
            )
            self.meter.bytes_transferred += HASH_SIZE * len(siblings)
            ok, recombinations = verify_with_siblings(
                layout.fragments_per_chunk,
                fragments,
                siblings,
                self.cache.digest,
            )
            self.meter.hash_nodes += recombinations
            if not ok:
                raise IntegrityError(
                    "chunk %d Merkle verification failed" % chunk_index
                )
            self.cache.have_fragments.update(needed_fragments)
        # Decrypt only the blocks of the requested range (batched into
        # contiguous runs; the transfer was already charged per
        # fragment above).
        block = layout.block_size
        base = versioned_position(
            chunk_index * layout.chunk_size,
            self.document.chunk_version(chunk_index),
        )
        _decrypt_block_runs(
            self.scheme.cipher,
            payload,
            base,
            lo // block,
            (hi - 1) // block,
            self.cache,
            self.meter,
            block,
            charge_transfer=False,
        )


# ----------------------------------------------------------------------
# Bytes-like adapter for the Skip-index decoder
# ----------------------------------------------------------------------
class SecureBytes:
    """Random-access bytes view over a scheme reader.

    Supports ``len``, integer indexing and slicing — exactly what the
    Skip-index :class:`~repro.skipindex.bitio.BitReader` needs.  Every
    access flows through the scheme's decrypt-and-verify path, so costs
    and integrity checks apply transparently to the decoding pipeline.
    """

    def __init__(self, reader: BaseReader):
        self._reader = reader
        self._size = reader.document.plaintext_size

    def __len__(self) -> int:
        return self._size

    def __getitem__(self, item):
        if isinstance(item, slice):
            start, stop, step = item.indices(self._size)
            if step != 1:
                raise ValueError("SecureBytes slices must be contiguous")
            return self._reader.read(start, stop - start)
        if item < 0:
            item += self._size
        data = self._reader.read(item, 1)
        if not data:
            raise IndexError("SecureBytes index out of range")
        return data[0]


SCHEMES = {
    "ECB": EcbScheme,
    "CBC-SHA": CbcShaScheme,
    "CBC-SHAC": CbcShacScheme,
    "CBC-SHA-DOC": CbcShaDocScheme,
    "ECB-MHT": EcbMhtScheme,
}

#: Cipher factories a pool worker knows how to rebuild by name.
_CIPHER_FACTORIES = {
    "xtea": Xtea,
    "des": Des,
    "3des": TripleDes,
    "null": NullCipher,
}


def _cipher_kind(factory) -> Optional[str]:
    """The spec name of a cipher factory, or ``None`` for custom ones.

    Native subclasses resolve to their base kind — the worker picks its
    own (possibly native) implementation for that kind, and all
    implementations are byte-identical by construction.
    """
    if isinstance(factory, type):
        for kind, base in _CIPHER_FACTORIES.items():
            if issubclass(factory, base):
                return kind
    return None


def storage_spec(scheme: BaseScheme):
    """What a persistent store must record to rebuild ``scheme``:
    ``(name, key, cipher kind, (chunk, fragment, block, digest) sizes)``.

    The key is the scheme's *cipher* key — the one the chunk records
    were actually encrypted under — which may differ from the
    provisioning key a station hands to its store (an externally
    prepared document arrives with its own encryption key).

    Unlike :meth:`BaseScheme.spec` this works for CBC-SHA-DOC too —
    record *storage* only needs the scheme reconstructible at load
    time, not its chunk records independently re-encryptable by a pool
    worker.  ``None`` when the cipher factory is custom (unknown by
    name), in which case only the in-memory store can hold it.
    """
    kind = _cipher_kind(scheme._cipher_factory)
    if kind is None:
        return None
    layout = scheme.layout
    return (
        scheme.name,
        scheme._key,
        kind,
        (
            layout.chunk_size,
            layout.fragment_size,
            layout.block_size,
            layout.digest_size,
        ),
    )


def scheme_from_spec(spec) -> BaseScheme:
    """Rebuild a scheme from :meth:`BaseScheme.spec` (pool workers)."""
    name, key, kind, chunk_size, fragment_size, block_size, digest_size = spec
    factory = _CIPHER_FACTORIES[kind]
    try:
        from repro.compute.native import native_factory

        factory = native_factory(factory)
    except Exception:
        pass
    layout = ChunkLayout(
        chunk_size=chunk_size,
        fragment_size=fragment_size,
        block_size=block_size,
        digest_size=digest_size,
    )
    return make_scheme(name, key=key, cipher_factory=factory, layout=layout)


def make_scheme(
    name: str,
    key: bytes = b"\x00" * 16,
    backend=None,
    **kwargs,
) -> BaseScheme:
    """Factory by Fig. 11 scheme name."""
    try:
        cls = SCHEMES[name]
    except KeyError:
        raise ValueError(
            "unknown scheme %r (expected one of %s)" % (name, sorted(SCHEMES))
        )
    return cls(key=key, backend=backend, **kwargs)
