"""Chunk / fragment / block layout (Appendix A).

"We consider an XML document of any size, split in chunks (e.g., 2 KB),
divided in small fragments (e.g., 256 bytes), and in turn subdivided in
blocks of 8 bytes.  The chunk partition is required to make the
integrity checking compatible with the memory capacity of the SOE,
fragments are introduced to allow random accesses inside a chunk and
the block is the unit of encryption."
"""

from __future__ import annotations

from typing import Iterator, List, Tuple


class ChunkLayout:
    """Geometry of the protected document.

    All sizes are bytes; ``chunk_size`` must be a multiple of
    ``fragment_size`` (a power-of-two multiple so fragments form a
    complete Merkle tree) and ``fragment_size`` a multiple of
    ``block_size``.
    """

    def __init__(
        self,
        chunk_size: int = 2048,
        fragment_size: int = 256,
        block_size: int = 8,
        digest_size: int = 24,
    ):
        if chunk_size % fragment_size:
            raise ValueError("chunk size must be a multiple of the fragment size")
        if fragment_size % block_size:
            raise ValueError("fragment size must be a multiple of the block size")
        fragments = chunk_size // fragment_size
        if fragments & (fragments - 1):
            raise ValueError("fragments per chunk must be a power of two")
        if digest_size % block_size:
            raise ValueError("digest size must be a multiple of the block size")
        self.chunk_size = chunk_size
        self.fragment_size = fragment_size
        self.block_size = block_size
        self.digest_size = digest_size  # encrypted ChunkDigest (SHA-1 padded)
        self.fragments_per_chunk = fragments
        self.blocks_per_chunk = chunk_size // block_size

    # ------------------------------------------------------------------
    def chunk_count(self, plaintext_size: int) -> int:
        if plaintext_size == 0:
            return 0
        return (plaintext_size + self.chunk_size - 1) // self.chunk_size

    def chunk_of(self, offset: int) -> int:
        return offset // self.chunk_size

    def fragment_of(self, offset_in_chunk: int) -> int:
        return offset_in_chunk // self.fragment_size

    def chunk_range(self, chunk_index: int, plaintext_size: int) -> Tuple[int, int]:
        """Plaintext byte range ``[start, end)`` covered by the chunk."""
        start = chunk_index * self.chunk_size
        end = min(start + self.chunk_size, plaintext_size)
        return start, end

    def chunks_covering(self, offset: int, length: int) -> Iterator[int]:
        """Chunk indexes intersecting ``[offset, offset + length)``."""
        if length <= 0:
            return
        first = self.chunk_of(offset)
        last = self.chunk_of(offset + length - 1)
        yield from range(first, last + 1)

    def fragments_covering(
        self, start_in_chunk: int, length: int
    ) -> Iterator[int]:
        """Fragment indexes (within one chunk) intersecting the range."""
        if length <= 0:
            return
        first = self.fragment_of(start_in_chunk)
        last = self.fragment_of(start_in_chunk + length - 1)
        yield from range(first, min(last, self.fragments_per_chunk - 1) + 1)

    # ------------------------------------------------------------------
    def stored_chunk_size(self) -> int:
        """Bytes a full chunk occupies at the terminal (digest header +
        encrypted payload)."""
        return self.digest_size + self.chunk_size

    def stored_offset(self, chunk_index: int) -> int:
        """Offset of the chunk's stored record (digest header first)."""
        return chunk_index * self.stored_chunk_size()

    def pad_chunk(self, data: bytes) -> bytes:
        """Zero-pad a (possibly last, short) chunk to the full size."""
        if len(data) > self.chunk_size:
            raise ValueError("chunk payload too large")
        if len(data) == self.chunk_size:
            return data
        return data + b"\x00" * (self.chunk_size - len(data))

    def split_fragments(self, chunk: bytes) -> List[bytes]:
        if len(chunk) != self.chunk_size:
            raise ValueError("fragment split requires a full chunk")
        size = self.fragment_size
        return [chunk[i : i + size] for i in range(0, len(chunk), size)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ChunkLayout(chunk=%d, fragment=%d, block=%d)" % (
            self.chunk_size,
            self.fragment_size,
            self.block_size,
        )


def partition_chunks(count: int, groups: int) -> List[Tuple[int, int]]:
    """Split ``count`` chunks into at most ``groups`` contiguous,
    order-preserving ``(first, last_exclusive)`` ranges of near-equal
    size — the work units of the pool compute backend (sized off the
    chunk map so results reassemble by simple concatenation)."""
    if count <= 0:
        return []
    groups = max(1, min(groups, count))
    base, extra = divmod(count, groups)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for index in range(groups):
        size = base + (1 if index < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges
