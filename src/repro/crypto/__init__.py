"""Cryptographic substrate (Section 6 + Appendix A).

Pure-Python implementations of everything the paper's security layer
needs — the environment is offline, so no external crypto library is
used:

* :mod:`repro.crypto.des` — DES and 3DES (the paper's cipher, hardwired
  in the target smart card);
* :mod:`repro.crypto.xtea` — XTEA, a faster 8-byte block cipher used as
  the default in benches (the architecture is cipher-agnostic, as the
  paper stresses; simulated decryption time always uses the Table 1
  throughput);
* :mod:`repro.crypto.modes` — ECB, CBC and the paper's position-XOR ECB
  (``E_k(b XOR p)``) that makes equal plaintext blocks encrypt
  differently without CBC's random-access penalty;
* :mod:`repro.crypto.merkle` — Merkle hash trees over chunk fragments
  with sibling-path proofs (Fig. F1);
* :mod:`repro.crypto.chunks` — the chunk / fragment / block layout of
  Appendix A;
* :mod:`repro.crypto.integrity` — the four protection schemes compared
  in Fig. 11: ECB (confidentiality only), CBC-SHA, CBC-SHAC and
  ECB-MHT (the paper's proposal), all exposing random-access reads with
  per-scheme cost accounting.
"""

from repro.crypto.des import Des, TripleDes
from repro.crypto.xtea import Xtea
from repro.crypto.modes import (
    BlockCipher,
    NullCipher,
    decrypt_cbc,
    decrypt_ecb,
    decrypt_positioned,
    encrypt_cbc,
    encrypt_ecb,
    encrypt_positioned,
)
from repro.crypto.merkle import MerkleTree, verify_with_siblings
from repro.crypto.chunks import ChunkLayout
from repro.crypto.integrity import (
    SCHEMES,
    CbcShaScheme,
    CbcShacScheme,
    EcbMhtScheme,
    EcbScheme,
    IntegrityError,
    SecureDocument,
    make_scheme,
)

__all__ = [
    "Des",
    "TripleDes",
    "Xtea",
    "BlockCipher",
    "NullCipher",
    "encrypt_ecb",
    "decrypt_ecb",
    "encrypt_cbc",
    "decrypt_cbc",
    "encrypt_positioned",
    "decrypt_positioned",
    "MerkleTree",
    "verify_with_siblings",
    "ChunkLayout",
    "IntegrityError",
    "SecureDocument",
    "EcbScheme",
    "CbcShaScheme",
    "CbcShacScheme",
    "EcbMhtScheme",
    "SCHEMES",
    "make_scheme",
]
