"""End-to-end secure pipeline (the architecture of Fig. 2).

``prepare_document`` performs the publisher-side work: Skip-index
encode the XML document, then encrypt/digest it for the untrusted
terminal under one of the Fig. 11 schemes.

:class:`SecureSession` performs the SOE-side work: it opens a
decrypting, integrity-checking view on the stored bytes, drives the
Skip-index decoder and the streaming evaluator over it, and accounts
every primitive cost in a :class:`~repro.metrics.Meter`, converted to
simulated seconds by the :mod:`~repro.soe.costmodel`.  Since the
engine-layer refactor the session compiles its policy into a
:class:`~repro.engine.plans.PolicyPlan` once at construction and each
:meth:`~SecureSession.run` executes the engine's consumer pipeline;
multi-client serving lives in :class:`~repro.engine.station.
SecureStation`.

The tag dictionary and the document key are SOE-resident secrets
(Section 2: delivered over a secured channel), so reading them is not
charged to the terminal link.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.crypto.integrity import BaseScheme, SecureDocument, make_scheme
from repro.crypto.chunks import ChunkLayout
from repro.metrics import Meter
from repro.skipindex.encoder import EncodedDocument, encode_document
from repro.soe.costmodel import CONTEXTS, CostModel, PlatformContext, TimeBreakdown
from repro.xmlkit.dom import Node
from repro.xmlkit.events import OPEN, TEXT, Event, events_to_tree
from repro.xpath.ast import Path


class PreparedDocument:
    """Publisher output: the encoded document + its protected form.

    ``index`` optionally carries the publish-time
    :class:`~repro.skipindex.structural.StructuralIndex`; it travels
    with the document through stores, updates and cluster repair so an
    indexed document stays indexed wherever its chunks go.
    """

    def __init__(
        self,
        encoded: EncodedDocument,
        scheme: BaseScheme,
        secure: SecureDocument,
        index=None,
    ):
        self.encoded = encoded
        self.scheme = scheme
        self.secure = secure
        self.index = index

    @property
    def encoded_size(self) -> int:
        return len(self.encoded.data)

    @property
    def stored_size(self) -> int:
        return self.secure.stored_size()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "PreparedDocument(%s, %d encoded bytes)" % (
            self.scheme.name,
            self.encoded_size,
        )


def prepare_document(
    tree: Node,
    scheme: str = "ECB-MHT",
    key: bytes = b"\x00" * 16,
    layout: Optional[ChunkLayout] = None,
    index: bool = False,
) -> PreparedDocument:
    """Encode ``tree`` with the Skip index and protect it for storage.

    ``index=True`` additionally builds the structural pre/post index
    over the plaintext encoding (see :mod:`repro.skipindex.structural`).
    """
    encoded = encode_document(tree)
    scheme_obj = make_scheme(scheme, key=key, layout=layout)
    secure = scheme_obj.protect(encoded.data)
    structural = None
    if index:
        from repro.skipindex.structural import build_structural_index

        structural = build_structural_index(encoded)
    return PreparedDocument(encoded, scheme_obj, secure, index=structural)


def delivered_bytes(events: List[Event]) -> int:
    """Size estimate of the authorized view leaving the SOE.

    The view leaves in its compact encoded form: tags cost a dictionary
    code (~1 byte in our accounting) and text costs its UTF-8 length —
    comparable to the TC encoding of the result.
    """
    total = 0
    for event in events:
        if event[0] == TEXT:
            total += len(event[1].encode("utf-8"))
        elif event[0] == OPEN:
            total += 2
        else:
            total += 1
    return total


class SessionResult:
    """Authorized view + cost accounting of one SOE run.

    ``document_version`` is stamped by :meth:`SecureStation.evaluate`
    with the update version of the exact snapshot evaluated (read
    atomically with the snapshot itself); ``None`` outside the station
    path.  ``cache_hit`` marks a result served from the station's
    version-keyed view cache — its events/breakdown are then shared
    read-only with the cache entry, and the meter still carries the
    simulated Table-1 costs of the original evaluation (cached and
    uncached responses report identical simulated seconds).
    """

    def __init__(
        self,
        events: List[Event],
        meter: Meter,
        breakdown: TimeBreakdown,
        context: PlatformContext,
    ):
        self.events = events
        self.meter = meter
        self.breakdown = breakdown
        self.context = context
        self.document_version: Optional[int] = None
        self.cache_hit = False
        #: True when the station served this result through the
        #: structural index (indexed navigation or a provably-empty
        #: early exit) instead of full streaming.
        self.indexed = False
        #: Station-internal: the view-cache entry backing this result
        #: (lets :meth:`SecureStation.stream` reuse the serialized
        #: payload).  ``None`` outside the station path.
        self.cache_entry = None

    @property
    def seconds(self) -> float:
        return self.breakdown.total

    @property
    def result_bytes(self) -> int:
        return delivered_bytes(self.events)

    def throughput_bps(self, input_bytes: int) -> float:
        """Input-consumption throughput (the Y-axis of Fig. 12)."""
        if self.seconds == 0:
            return float("inf")
        return input_bytes / self.seconds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SessionResult(%.3fs, %d events)" % (self.seconds, len(self.events))


class SecureSession:
    """One (document, subject) SOE session.

    Parameters
    ----------
    prepared:
        Publisher output (:func:`prepare_document`).
    policy:
        The subject's access-control policy (``USER`` already bound).
    query:
        Optional XPath query intersected with the authorized view.
    context:
        Table 1 platform context name or a custom
        :class:`PlatformContext`.
    use_skip_index:
        ``False`` reproduces the Brute-Force strategy: the evaluator
        sees every event and no subtree is ever skipped.
    """

    def __init__(
        self,
        prepared: PreparedDocument,
        policy: "Union[Policy, PolicyPlan]",
        query: Union[str, Path, None] = None,
        context: Union[str, PlatformContext] = "smartcard",
        use_skip_index: bool = True,
    ):
        # The engine layer sits above the SOE; import lazily (see the
        # layering rule in repro/engine/__init__.py).
        from repro.engine.plans import compile_policy

        self.prepared = prepared
        self.plan = compile_policy(policy)
        self.policy = self.plan.policy
        self.query = self.plan.query_plan(query)
        self.context = (
            CONTEXTS[context] if isinstance(context, str) else context
        )
        self.use_skip_index = use_skip_index

    def run(self) -> SessionResult:
        """One SOE pass, via the engine's consumer pipeline.

        The plan (and any compiled query) is reused across calls, so
        repeated runs of one session never re-touch the XPath parser.
        """
        from repro.engine.pipeline import DocumentPipeline

        pipeline = DocumentPipeline.consumer(
            self.plan,
            query=self.query,
            use_skip_index=self.use_skip_index,
            context=self.context,
        )
        ctx = pipeline.run(prepared=self.prepared)
        return SessionResult(ctx.view, ctx.meter, ctx.breakdown, self.context)


def lwb_bytes(view_events: List[Event]) -> int:
    """Encoded size of the authorized view — what the LWB oracle reads.

    The oracle knows in advance where the authorized fragments are; it
    reads exactly their encoded bytes.  We measure that as the size of
    the Skip-index encoding of the view itself.
    """
    if not view_events:
        return 0
    tree = events_to_tree(view_events)
    return len(encode_document(tree).data)


def lwb_seconds(
    view_events: List[Event],
    context: Union[str, PlatformContext] = "smartcard",
    with_integrity: bool = False,
) -> float:
    """Simulated time of the theoretical LWB oracle (Section 7)."""
    platform = CONTEXTS[context] if isinstance(context, str) else context
    return CostModel(platform).lower_bound_seconds(
        lwb_bytes(view_events), with_integrity=with_integrity
    )
