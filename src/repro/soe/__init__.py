"""Secure Operating Environment simulator.

The paper's prototype is C code running on a *cycle-accurate simulator*
of a forthcoming Axalto smart card (32-bit CPU @ 40 MHz, 8 KB RAM, USB
at 1 MB/s).  Its performance is dominated by two linear costs —
communication into/out of the SOE and 3DES decryption inside it
(Table 1) — plus a small CPU component proportional to the automata
work ("the cost of access control is determined by the number of active
tokens", Section 7).

We reproduce that model exactly: the pipeline counts every primitive
quantity in a :class:`~repro.metrics.Meter`, and
:mod:`repro.soe.costmodel` converts counts into simulated seconds for a
chosen platform context (smart card / software+Internet / software+LAN,
the three rows of Table 1).

:mod:`repro.soe.session` wires the full secure pipeline together:
encrypted Skip-indexed document at the terminal -> scheme reader
(decrypt + integrity) -> Skip-index decoder -> streaming evaluator ->
authorized view.
"""

from repro.soe.costmodel import (
    CONTEXTS,
    CostModel,
    PlatformContext,
    TimeBreakdown,
)
from repro.soe.session import SecureSession, SessionResult, prepare_document

__all__ = [
    "PlatformContext",
    "CONTEXTS",
    "CostModel",
    "TimeBreakdown",
    "SecureSession",
    "SessionResult",
    "prepare_document",
]
