"""Key and policy provisioning over the secured channel (Fig. 2).

"This access control policy as well as the key(s) required to decrypt
the document can be permanently hosted by the SOE, refreshed or
downloaded via a secure channel from different sources (trusted third
party, security server, parent or teacher, etc.)." — Section 2.

This module models that third party: a :class:`ProvisioningServer`
holds document keys and per-``(document, subject)`` policies, and
issues sealed :class:`Credential` blobs that only an SOE knowing the
channel secret can open.  Credentials carry an optional expiry,
supporting the *provisional authorizations* the introduction motivates
("a researcher may be granted an exceptional and time-limited access").

Sealing uses HMAC-SHA1 authentication plus position-XOR XTEA
encryption from the crypto substrate — the same primitives as the
document pipeline, so no new trust assumptions.
"""

from __future__ import annotations

import hashlib
import hmac
import json
from typing import Dict, Optional, Tuple

from repro.accesscontrol.model import AccessRule, Policy
from repro.crypto.modes import decrypt_positioned, encrypt_positioned, pad_to_block
from repro.crypto.xtea import Xtea

_MAC_SIZE = 20


class ProvisioningError(Exception):
    """Credential rejected: tampered, expired or unknown."""


def serialize_policy(policy: Policy) -> str:
    """Stable text form of a policy (rules as ``sign object`` lines)."""
    payload = {
        "subject": policy.subject,
        "dummy_tag": policy.dummy_tag,
        "rules": [
            {"sign": rule.sign, "object": str(rule.object), "name": rule.name}
            for rule in policy.rules
        ],
    }
    return json.dumps(payload, sort_keys=True)


def deserialize_policy(text: str) -> Policy:
    """Inverse of :func:`serialize_policy`.

    Note: the stored rules already have ``USER`` bound (binding happens
    at policy construction), so the subject is carried for reference
    and re-binding is a no-op.
    """
    payload = json.loads(text)
    rules = [
        AccessRule(item["sign"], item["object"], item.get("name") or None)
        for item in payload["rules"]
    ]
    return Policy(
        rules,
        subject=payload.get("subject", ""),
        dummy_tag=payload.get("dummy_tag"),
    )


class Credential:
    """A sealed (document key + policy + expiry) blob."""

    def __init__(self, blob: bytes):
        self.blob = blob

    def __len__(self) -> int:
        return len(self.blob)


class ProvisioningServer:
    """Trusted third party issuing credentials over the secure channel.

    ``channel_secret`` is the long-term secret shared with the SOE
    (certified at SOE personalization time in a real deployment).
    """

    def __init__(self, channel_secret: bytes):
        if len(channel_secret) < 16:
            raise ValueError("channel secret must be at least 16 bytes")
        self._secret = channel_secret
        self._document_keys: Dict[str, bytes] = {}
        self._policies: Dict[Tuple[str, str], Policy] = {}

    # ------------------------------------------------------------------
    def register_document(self, document_id: str, key: bytes) -> None:
        self._document_keys[document_id] = key

    def grant(self, document_id: str, subject: str, policy: Policy) -> None:
        self._policies[(document_id, subject)] = policy

    def revoke(self, document_id: str, subject: str) -> None:
        """Dynamic access control: drop the subject's policy; already-
        issued credentials die at their expiry."""
        self._policies.pop((document_id, subject), None)

    # ------------------------------------------------------------------
    def issue(
        self,
        document_id: str,
        subject: str,
        expires_at: Optional[float] = None,
    ) -> Credential:
        """Issue a sealed credential for ``(document, subject)``."""
        key = self._document_keys.get(document_id)
        if key is None:
            raise ProvisioningError("unknown document %r" % document_id)
        policy = self._policies.get((document_id, subject))
        if policy is None:
            raise ProvisioningError(
                "no grant for subject %r on document %r" % (subject, document_id)
            )
        payload = json.dumps(
            {
                "document": document_id,
                "subject": subject,
                "key": key.hex(),
                "policy": serialize_policy(policy),
                "expires_at": expires_at,
            },
            sort_keys=True,
        ).encode("utf-8")
        return Credential(self._seal(payload))

    # ------------------------------------------------------------------
    def _channel_key(self) -> bytes:
        return hashlib.sha1(b"channel|" + self._secret).digest()[:16]

    def _seal(self, payload: bytes) -> bytes:
        mac = hmac.new(self._secret, payload, hashlib.sha1).digest()
        body = len(payload).to_bytes(4, "big") + payload + mac
        cipher = Xtea(self._channel_key())
        return encrypt_positioned(cipher, pad_to_block(body), 0)

    def unseal(self, credential: Credential) -> bytes:
        """Open a credential (the SOE side shares the secret)."""
        cipher = Xtea(self._channel_key())
        body = decrypt_positioned(cipher, credential.blob, 0)
        if len(body) < 4 + _MAC_SIZE:
            raise ProvisioningError("credential too short")
        length = int.from_bytes(body[:4], "big")
        if length < 0 or 4 + length + _MAC_SIZE > len(body):
            raise ProvisioningError("credential framing corrupted")
        payload = body[4 : 4 + length]
        mac = body[4 + length : 4 + length + _MAC_SIZE]
        expected = hmac.new(self._secret, payload, hashlib.sha1).digest()
        if not hmac.compare_digest(mac, expected):
            raise ProvisioningError("credential authentication failed")
        return payload


class SoeKeyStore:
    """SOE-side credential handling: unseal, validate, expose secrets.

    The store holds the channel secret in the SOE's secure stable
    storage (assumption 2 of Section 2) and validates expiry against
    the time source the caller supplies — the SOE itself has no clock;
    the paper's provisional authorizations rely on the operator feeding
    a trusted time.
    """

    def __init__(self, channel_secret: bytes):
        self._server_view = ProvisioningServer(channel_secret)
        self._unlocked: Dict[str, Tuple[bytes, Policy, Optional[float]]] = {}

    def install(self, credential: Credential, now: float) -> str:
        """Unseal and install a credential; returns the document id."""
        payload = json.loads(self._server_view.unseal(credential))
        expires_at = payload.get("expires_at")
        if expires_at is not None and now > expires_at:
            raise ProvisioningError("credential expired")
        document_id = payload["document"]
        self._unlocked[document_id] = (
            bytes.fromhex(payload["key"]),
            deserialize_policy(payload["policy"]),
            expires_at,
        )
        return document_id

    def key_for(self, document_id: str, now: float) -> bytes:
        key, _policy, expires_at = self._entry(document_id, now)
        return key

    def policy_for(self, document_id: str, now: float) -> Policy:
        _key, policy, _expires_at = self._entry(document_id, now)
        return policy

    def _entry(self, document_id: str, now: float):
        try:
            entry = self._unlocked[document_id]
        except KeyError:
            raise ProvisioningError("no credential for %r" % document_id)
        expires_at = entry[2]
        if expires_at is not None and now > expires_at:
            del self._unlocked[document_id]
            raise ProvisioningError("credential expired")
        return entry
