"""Cost model: Meter counts -> simulated seconds (Table 1).

Table 1 of the paper gives the two dominating linear costs for three
platform contexts:

===================================  ==============  ===========
Context                              Communication   Decryption
===================================  ==============  ===========
Hardware based (future smart card)   0.5 MB/s        0.15 MB/s
Software based - Internet            0.1 MB/s        1.2 MB/s
Software based - LAN                 10 MB/s         1.2 MB/s
===================================  ==============  ===========

On top of these we model:

* hashing (SHA-1) throughput inside the SOE and a fixed cost per Merkle
  recombination — integrity checking adds 32–38 % for ECB-MHT in the
  paper (Fig. 11), which pins the hash throughput around 1 MB/s on the
  card;
* access-control CPU: a per-token-operation and per-event cost.  The
  paper reports the access-control share at 2–15 % of the total
  execution time depending on the policy complexity (Fig. 9); the
  default constants reproduce that share on the Hospital workloads.

The communication cost covers both directions: the paper's bandwidth
figure "corresponds to a worst case where each data entering the SOE
takes part in the result", i.e. authorized output leaves through the
same channel — so delivered bytes are charged too.
"""

from __future__ import annotations

from typing import Dict

from repro.metrics import Meter

MB = 1_000_000.0


class PlatformContext:
    """One row of Table 1 plus SOE CPU constants."""

    def __init__(
        self,
        name: str,
        communication_bps: float,
        decryption_bps: float,
        hash_bps: float = 1.0 * MB,
        token_op_cost_s: float = 2.0e-6,
        event_cost_s: float = 1.0e-6,
        hash_node_cost_s: float = 25.0e-6,
        digest_decrypt_cost_s: float = 0.0,
    ):
        self.name = name
        self.communication_bps = communication_bps
        self.decryption_bps = decryption_bps
        self.hash_bps = hash_bps
        self.token_op_cost_s = token_op_cost_s
        self.event_cost_s = event_cost_s
        self.hash_node_cost_s = hash_node_cost_s
        self.digest_decrypt_cost_s = digest_decrypt_cost_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "PlatformContext(%r)" % self.name


#: The three contexts of Table 1.
CONTEXTS: Dict[str, PlatformContext] = {
    "smartcard": PlatformContext(
        "Hardware based (future smart card)",
        communication_bps=0.5 * MB,
        decryption_bps=0.15 * MB,
        hash_bps=1.0 * MB,
        token_op_cost_s=2.0e-6,
        event_cost_s=1.0e-6,
    ),
    "sw-internet": PlatformContext(
        "Software based - Internet connection",
        communication_bps=0.1 * MB,
        decryption_bps=1.2 * MB,
        hash_bps=8.0 * MB,
        token_op_cost_s=0.2e-6,
        event_cost_s=0.1e-6,
    ),
    "sw-lan": PlatformContext(
        "Software based - LAN connection",
        communication_bps=10.0 * MB,
        decryption_bps=1.2 * MB,
        hash_bps=8.0 * MB,
        token_op_cost_s=0.2e-6,
        event_cost_s=0.1e-6,
    ),
}


class TimeBreakdown:
    """Simulated execution time, split as in Fig. 9's histograms."""

    def __init__(
        self,
        communication: float,
        decryption: float,
        access_control: float,
        integrity: float,
    ):
        self.communication = communication
        self.decryption = decryption
        self.access_control = access_control
        self.integrity = integrity

    @property
    def total(self) -> float:
        return (
            self.communication + self.decryption + self.access_control + self.integrity
        )

    def as_dict(self) -> Dict[str, float]:
        """Seconds per component (report/JSON form)."""
        return {
            "total": self.total,
            "communication": self.communication,
            "decryption": self.decryption,
            "access_control": self.access_control,
            "integrity": self.integrity,
        }

    def shares(self) -> Dict[str, float]:
        """Fractions of the total per component (0 when total is 0)."""
        total = self.total
        if total == 0:
            return {
                "communication": 0.0,
                "decryption": 0.0,
                "access_control": 0.0,
                "integrity": 0.0,
            }
        return {
            "communication": self.communication / total,
            "decryption": self.decryption / total,
            "access_control": self.access_control / total,
            "integrity": self.integrity / total,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            "TimeBreakdown(total=%.3fs, comm=%.3f, dec=%.3f, ac=%.3f, int=%.3f)"
            % (
                self.total,
                self.communication,
                self.decryption,
                self.access_control,
                self.integrity,
            )
        )


class CostModel:
    """Convert a :class:`Meter` into a :class:`TimeBreakdown`."""

    def __init__(self, context: PlatformContext):
        self.context = context

    def breakdown(self, meter: Meter) -> TimeBreakdown:
        ctx = self.context
        communication = (
            meter.bytes_transferred + meter.bytes_delivered
        ) / ctx.communication_bps
        decryption = meter.bytes_decrypted / ctx.decryption_bps
        access_control = (
            meter.token_ops * ctx.token_op_cost_s + meter.events * ctx.event_cost_s
        )
        integrity = (
            meter.bytes_hashed / ctx.hash_bps
            + meter.hash_nodes * ctx.hash_node_cost_s
            + meter.digest_decrypts * ctx.digest_decrypt_cost_s
        )
        return TimeBreakdown(communication, decryption, access_control, integrity)

    def total_seconds(self, meter: Meter) -> float:
        return self.breakdown(meter).total

    def lower_bound_seconds(
        self, authorized_bytes: int, with_integrity: bool = False
    ) -> float:
        """The paper's LWB oracle: read exactly the authorized bytes and
        decrypt them (one pass, no analysis).

        With integrity, the oracle still hashes what it reads and
        decrypts one digest per chunk (the minimum the scheme allows).
        """
        ctx = self.context
        # The oracle both receives the bytes and delivers the result.
        seconds = (2 * authorized_bytes) / ctx.communication_bps
        seconds += authorized_bytes / ctx.decryption_bps
        if with_integrity:
            seconds += authorized_bytes / ctx.hash_bps
        return seconds
