"""Work accounting shared by the evaluator, navigators and the SOE.

The paper's performance is governed by a handful of linear costs
(Table 1 and Section 7): bytes communicated to the SOE, bytes decrypted
inside it, hashing work, and the CPU cost of the access-control
automata (proportional to token operations).  A :class:`Meter` counts
every one of these primitive quantities; the SOE cost model
(:mod:`repro.soe.costmodel`) converts the counts into simulated time.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (q in [0, 100]).

    The smallest sample such that at least ``q`` percent of the data is
    less than or equal to it: ``ordered[ceil(q/100 * n) - 1]``.  Linear
    interpolation would invent latencies no request ever had and, at
    small sample counts, report a "p99" *below* the worst observed
    request; nearest-rank degrades honestly — with 5 samples, p99 is
    the maximum.  Shared by the load generator's reports and the
    cluster gateway's per-backend STATS.
    """
    if not 0 <= q <= 100:
        raise ValueError("percentile q must be in [0, 100], got %r" % (q,))
    if not values:
        return 0.0
    ordered = sorted(values)
    if q == 0:
        return ordered[0]
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[min(rank, len(ordered)) - 1]


class Meter:
    """Mutable counter bundle; every field is a plain integer.

    Communication / crypto quantities are in bytes, the rest are event
    or operation counts.
    """

    FIELDS = (
        # --- communication & crypto -----------------------------------
        "bytes_transferred",  # bytes entering the SOE from the terminal
        "bytes_decrypted",  # bytes block-decrypted inside the SOE
        "bytes_hashed",  # bytes hashed inside the SOE (integrity)
        "bytes_delivered",  # bytes of authorized output leaving the SOE
        "digest_decrypts",  # encrypted chunk digests decrypted
        "hash_nodes",  # Merkle-tree node recombinations in the SOE
        "chunks_accessed",  # distinct chunks touched
        # --- parsing / evaluation --------------------------------------
        "events",  # open/value/close events processed
        "token_ops",  # automaton transition firings
        "auth_pushes",  # Authorization Stack pushes
        "decisions",  # DecideNode computations
        "killed_tokens",  # tokens discarded by Skip-index filtering
        "pruned_subtrees",  # subtrees decided wholesale by skip-pruned replay
        "skipped_subtrees",  # subtrees skipped outright (denied/irrelevant)
        "deferred_subtrees",  # pending subtrees skipped + read back later
        "readback_events",  # events re-fetched when pending parts resolve
        "skipped_bytes",  # encoded bytes never sent to the SOE
        "pending_nodes",  # nodes buffered with an undecided condition
    )

    __slots__ = FIELDS

    def __init__(self):
        for field in self.FIELDS:
            setattr(self, field, 0)

    def reset(self) -> None:
        for field in self.FIELDS:
            setattr(self, field, 0)

    def as_dict(self) -> Dict[str, int]:
        return {field: getattr(self, field) for field in self.FIELDS}

    def merge(self, other: "Meter") -> None:
        for field in self.FIELDS:
            setattr(self, field, getattr(self, field) + getattr(other, field))

    def copy(self) -> "Meter":
        """A fresh plain-:class:`Meter` with the same counts."""
        duplicate = Meter()
        for field in self.FIELDS:
            setattr(duplicate, field, getattr(self, field))
        return duplicate

    @classmethod
    def merged(cls, meters: Iterable["Meter"]) -> "Meter":
        """A fresh meter holding the sum of ``meters``."""
        total = cls()
        for meter in meters:
            total.merge(meter)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        interesting = {k: v for k, v in self.as_dict().items() if v}
        return "Meter(%s)" % interesting


class ThreadSafeMeter(Meter):
    """A :class:`Meter` usable as a cross-thread aggregation point.

    Plain meters are single-owner by design: the hot paths increment
    fields with ``meter.events += 1`` and taking a lock per event would
    be absurd.  Concurrent components (the network server, one
    connection per task/thread) therefore keep a *private* plain
    :class:`Meter` per connection and fold it into one shared
    ``ThreadSafeMeter`` when the connection closes; only the fold and
    the reads are serialized here.
    """

    __slots__ = ("_lock",)

    def __init__(self):
        # The lock must exist before Meter.__init__ zeroes the fields
        # (reset() below takes it).
        object.__setattr__(self, "_lock", threading.Lock())
        super().__init__()

    def merge(self, other: "Meter") -> None:
        with self._lock:
            super().merge(other)

    def reset(self) -> None:
        with self._lock:
            super().reset()

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return super().as_dict()

    def snapshot(self) -> Meter:
        """A point-in-time plain-:class:`Meter` copy."""
        copy = Meter()
        with self._lock:
            for field in self.FIELDS:
                setattr(copy, field, getattr(self, field))
        return copy
