"""Encoding variants compared in Fig. 8: NC, TC, TCS, TCSB (and TCSBR).

The paper evaluates the Skip index's storage overhead by decomposing it
into its constituent techniques:

* **NC** — the original, non-compressed XML text;
* **TC** — classic tag compression: each tag is a ``log2(Nt)``-bit
  dictionary code (opening *and* closing markers are needed);
* **TCS** — TC plus a subtree size per element (``log2(doc size)``
  bits), making closing tags unnecessary and skips possible;
* **TCSB** — TCS plus a descendant-tag bitmap of ``Nt`` bits per
  internal element;
* **TCSBR** — the recursive variant of TCSB: the actual Skip index
  (:mod:`repro.skipindex.encoder`).

The variant encoders here reproduce the *size accounting* of the paper
(every per-element metadata burst is byte-aligned); TCSBR sizes come
from the real encoder.  All functions return an
:class:`~repro.skipindex.encoder.EncodingStats`.
"""

from __future__ import annotations

from typing import Dict

from repro.skipindex.bitio import bits_for, bits_for_count
from repro.skipindex.encoder import EncodingStats, encode_document
from repro.xmlkit.dom import Node
from repro.xmlkit.serializer import serialize


def _varint_size(value: int) -> int:
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size


def _text_bytes(tree: Node) -> int:
    return tree.text_size()


def size_nc(tree: Node) -> EncodingStats:
    """NC: the plain XML serialization."""
    stats = EncodingStats()
    stats.total_bytes = len(serialize(tree).encode("utf-8"))
    stats.text_bytes = _text_bytes(tree)
    return stats


def size_tc(tree: Node) -> EncodingStats:
    """TC: dictionary tag codes + explicit close markers.

    Item codes range over {text} + tags + {close}: ``Nt + 2`` values.
    Every code burst is padded to a byte frontier; text is stored as
    ``varint length + bytes``.
    """
    stats = EncodingStats()
    tag_count = len(tree.distinct_tags())
    code_bytes = (bits_for_count(tag_count + 2) + 7) // 8
    total = 0
    text_total = 0

    def visit(node: Node) -> None:
        nonlocal total, text_total
        total += code_bytes  # open marker
        for child in node.children:
            if isinstance(child, str):
                encoded = child.encode("utf-8")
                total += code_bytes + _varint_size(len(encoded)) + len(encoded)
                text_total += len(encoded)
            else:
                visit(child)
        total += code_bytes  # close marker

    visit(tree)
    stats.total_bytes = total
    stats.text_bytes = text_total
    return stats


def _size_with_subtree_sizes(tree: Node, bitmap_bits: int) -> EncodingStats:
    """Shared sizing for TCS (bitmap 0 bits) and TCSB (bitmap Nt bits).

    Per element: tag code + subtree size (+ bitmap), padded to a byte;
    no close markers (the paper stores the size for *every* element in
    these non-recursive variants).  The size field has the fixed width
    ``log2(compressed document size)``, resolved by fixpoint (the width
    depends on the total size it contributes to).
    """
    stats = EncodingStats()
    tag_count = len(tree.distinct_tags())
    code_bits = bits_for_count(tag_count + 1)  # text marker + tags
    text_total = _text_bytes(tree)

    def total_for(size_bits: int) -> int:
        total = 0

        def visit(node: Node) -> None:
            nonlocal total
            bits = code_bits + bitmap_bits + size_bits
            total += (bits + 7) // 8
            for child in node.children:
                if isinstance(child, str):
                    encoded = child.encode("utf-8")
                    total += (
                        (code_bits + 7) // 8
                        + _varint_size(len(encoded))
                        + len(encoded)
                    )
                else:
                    visit(child)

        visit(tree)
        return total

    size_bits = 8
    while True:
        total = total_for(size_bits)
        needed = bits_for(total)
        if needed <= size_bits:
            break
        size_bits = needed
    stats.total_bytes = total
    stats.text_bytes = text_total
    return stats


def size_tcs(tree: Node) -> EncodingStats:
    """TCS: tag compression + subtree sizes (no bitmaps)."""
    return _size_with_subtree_sizes(tree, bitmap_bits=0)


def size_tcsb(tree: Node) -> EncodingStats:
    """TCSB: TCS + a flat ``Nt``-bit descendant-tag bitmap per element
    (the non-recursive bitmap of Fig. 8)."""
    tag_count = len(tree.distinct_tags())
    return _size_with_subtree_sizes(tree, bitmap_bits=tag_count)


def size_tcsbr(tree: Node) -> EncodingStats:
    """TCSBR: the real Skip-index encoder's accounting."""
    return encode_document(tree).stats


VARIANTS = {
    "NC": size_nc,
    "TC": size_tc,
    "TCS": size_tcs,
    "TCSB": size_tcsb,
    "TCSBR": size_tcsbr,
}


def encoding_report(tree: Node) -> Dict[str, EncodingStats]:
    """Fig. 8 data point for one document: stats per encoding variant."""
    return {name: fn(tree) for name, fn in VARIANTS.items()}
