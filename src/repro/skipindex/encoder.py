"""TCSBR encoder — the Skip index proper (Section 4.1).

The encoded document is self-delimiting and recursively compressed:

* **T**ag compression: an element's tag is a reference into its
  *parent's* descendant-tag set (``log2 |DescTag_parent|`` bits instead
  of ``log2 Nt``);
* **S**ubtree sizes: every internal element stores the byte size of its
  content, with a field width of ``log2 SubtreeSize_parent`` bits —
  closing tags become unnecessary and subtrees can be skipped;
* **B**itmaps: every internal element stores ``TagArray``, the set of
  tags of its subtree, as a bitmap over the parent's set;
* **R**ecursive: all three field widths shrink while descending.

Concrete layout (our concretization of the paper's scheme; DESIGN.md §6)::

    document := magic "XSKP" | version u8 | dictionary | root item
    dictionary := varint count | count * (varint len | utf8 tag)
    item      := code[w_code bits]              (0 = text item)
                 -- text item --
                 | pad | varint len | utf8 bytes
                 -- element item (code c >= 1 names parent_desc[c-1]) --
                 | internal flag (1 bit)
                 -- internal --
                 | TagArray [ |parent_desc| bits ]
                 | SubtreeSize [ w_size bits ] | pad | content bytes
                 -- leaf --
                 | pad | varint len | utf8 bytes

with ``w_code = bits_for_count(|parent_desc| + 1)`` and ``w_size =
bits_for(parent_content_size)`` — except at the root, whose size field
is a fixed 32 bits (it has no parent).  Field widths depend on sizes
that depend on field widths; :func:`encode_document` resolves the
recursion with a bottom-up fixpoint (it converges in a handful of
rounds because sizes grow monotonically).

Byte alignment: every item header is padded to a byte frontier before
raw bytes follow, matching the paper's size accounting.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.skipindex.bitio import BitWriter, bits_for, bits_for_count
from repro.xmlkit.dictionary import TagDictionary
from repro.xmlkit.dom import Node

MAGIC = b"XSKP"
VERSION = 1
ROOT_SIZE_BITS = 32

_TEXT = 0
_ELEM = 1


def _varint_size(value: int) -> int:
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size


class _Elem:
    """Internal analysis node: merged items + descendant tag set."""

    __slots__ = (
        "tag",
        "items",
        "desc_tags",
        "desc_list",
        "content_size",
        "text",
        "header_bytes",
    )

    def __init__(self, tag: str):
        self.tag = tag
        self.items: List[Tuple[int, object]] = []  # (_TEXT, str) | (_ELEM, _Elem)
        self.desc_tags: frozenset = frozenset()
        self.desc_list: Tuple[str, ...] = ()
        self.content_size = 0  # bytes of the children region (internal only)
        self.text = ""  # leaf text
        self.header_bytes = 0

    @property
    def is_internal(self) -> bool:
        return any(kind == _ELEM for kind, _item in self.items)


class EncodingStats:
    """Byte accounting for Fig. 8: structure vs text."""

    def __init__(self):
        self.total_bytes = 0
        self.text_bytes = 0
        self.dictionary_bytes = 0
        self.fixpoint_rounds = 0

    @property
    def structure_bytes(self) -> int:
        """Everything that is not raw text content nor the dictionary."""
        return self.total_bytes - self.text_bytes - self.dictionary_bytes

    def struct_text_ratio(self) -> float:
        """The paper's Y-axis for Fig. 8: structure / text length."""
        if self.text_bytes == 0:
            return float("inf")
        return self.structure_bytes / self.text_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "EncodingStats(total=%d, text=%d, struct=%d)" % (
            self.total_bytes,
            self.text_bytes,
            self.structure_bytes,
        )


class EncodedDocument:
    """The encoded byte stream plus its dictionary and accounting."""

    def __init__(
        self,
        data: bytes,
        dictionary: TagDictionary,
        stats: EncodingStats,
        root_offset: int,
    ):
        self.data = data
        self.dictionary = dictionary
        self.stats = stats
        self.root_offset = root_offset  # offset of the root item

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "EncodedDocument(%d bytes, %d tags)" % (
            len(self.data),
            len(self.dictionary),
        )


def _analyze(node: Node) -> _Elem:
    """Build the analysis tree: merge adjacent text, collect DescTag."""
    elem = _Elem(node.tag)
    tags: set = set()
    pending_text: List[str] = []

    def flush_text() -> None:
        if pending_text:
            elem.items.append((_TEXT, "".join(pending_text)))
            del pending_text[:]

    for child in node.children:
        if isinstance(child, str):
            pending_text.append(child)
        else:
            flush_text()
            sub = _analyze(child)
            elem.items.append((_ELEM, sub))
            tags.add(sub.tag)
            tags |= sub.desc_tags
    flush_text()
    elem.desc_tags = frozenset(tags)
    if not elem.is_internal:
        elem.text = "".join(
            item for kind, item in elem.items if kind == _TEXT  # type: ignore[misc]
        )
    return elem


def _order_desc_list(tags: frozenset, dictionary: TagDictionary) -> Tuple[str, ...]:
    return tuple(sorted(tags, key=dictionary.code))


def _compute_sizes(
    root: _Elem, dictionary: TagDictionary, stats: EncodingStats
) -> None:
    """Bottom-up fixpoint over content sizes and field widths."""
    all_tags = frozenset(dictionary.tags())
    root_parent_desc = _order_desc_list(all_tags, dictionary)

    def sizing_pass() -> bool:
        changed = False

        def visit(
            elem: _Elem, parent_desc: Sequence[str], parent_size_bits: int
        ) -> int:
            """Return the full record size of ``elem``; update content_size."""
            code_width = bits_for_count(len(parent_desc) + 1)
            header_bits = code_width + 1  # code + internal flag
            if elem.is_internal:
                header_bits += len(parent_desc) + parent_size_bits
            header_bytes = (header_bits + 7) // 8
            elem.header_bytes = header_bytes
            if not elem.is_internal:
                text = elem.text.encode("utf-8")
                return header_bytes + _varint_size(len(text)) + len(text)
            desc = _order_desc_list(elem.desc_tags, dictionary)
            elem.desc_list = desc
            child_size_bits = bits_for(elem.content_size)
            child_code_width = bits_for_count(len(desc) + 1)
            content = 0
            for kind, item in elem.items:
                if kind == _TEXT:
                    text = item.encode("utf-8")  # type: ignore[union-attr]
                    content += (
                        (child_code_width + 7) // 8
                        + _varint_size(len(text))
                        + len(text)
                    )
                else:
                    content += visit(  # type: ignore[arg-type]
                        item, desc, child_size_bits
                    )
            if content != elem.content_size:
                elem.content_size = content
                nonlocal_changed[0] = True
            return elem.header_bytes + content

        nonlocal_changed = [False]
        visit(root, root_parent_desc, ROOT_SIZE_BITS)
        changed = nonlocal_changed[0]
        return changed

    rounds = 0
    while sizing_pass():
        rounds += 1
        if rounds > 64:
            raise RuntimeError("Skip-index sizing fixpoint did not converge")
    stats.fixpoint_rounds = rounds


def _emit(
    elem: _Elem,
    writer: BitWriter,
    parent_desc: Sequence[str],
    parent_size_bits: int,
    dictionary: TagDictionary,
    stats: EncodingStats,
) -> None:
    code_width = bits_for_count(len(parent_desc) + 1)
    code = parent_desc.index(elem.tag) + 1
    writer.write_bits(code, code_width)
    internal = elem.is_internal
    writer.write_bit(1 if internal else 0)
    if not internal:
        text = elem.text.encode("utf-8")
        writer.write_varint(len(text))
        writer.write_bytes(text)
        stats.text_bytes += len(text)
        return
    desc = elem.desc_list
    desc_set = elem.desc_tags
    bitmap = 0
    for tag in parent_desc:
        bitmap = (bitmap << 1) | (1 if tag in desc_set else 0)
    writer.write_bits(bitmap, len(parent_desc))
    writer.write_bits(elem.content_size, parent_size_bits)
    writer.align()
    start = writer.tell()
    child_size_bits = bits_for(elem.content_size)
    child_code_width = bits_for_count(len(desc) + 1)
    for kind, item in elem.items:
        if kind == _TEXT:
            writer.write_bits(_TEXT, child_code_width)
            text = item.encode("utf-8")  # type: ignore[union-attr]
            writer.write_varint(len(text))
            writer.write_bytes(text)
            stats.text_bytes += len(text)
        else:
            _emit(  # type: ignore[arg-type]
                item, writer, desc, child_size_bits, dictionary, stats
            )
    emitted = writer.tell() - start
    if emitted != elem.content_size:
        raise AssertionError(
            "size mismatch for <%s>: planned %d, emitted %d"
            % (elem.tag, elem.content_size, emitted)
        )


def encode_document(
    root: Node, dictionary: Optional[TagDictionary] = None
) -> EncodedDocument:
    """Encode a DOM tree into the TCSBR Skip-index format.

    ``dictionary`` defaults to the tree's own tag dictionary (first-seen
    order).  Raises ``KeyError`` if a supplied dictionary misses tags.
    """
    if dictionary is None:
        dictionary = TagDictionary.from_tree(root)
    stats = EncodingStats()
    analyzed = _analyze(root)
    _compute_sizes(analyzed, dictionary, stats)

    writer = BitWriter()
    writer.write_bytes(MAGIC)
    writer.write_bytes(bytes([VERSION]))
    writer.write_varint(len(dictionary))
    for tag in dictionary.tags():
        encoded = tag.encode("utf-8")
        writer.write_varint(len(encoded))
        writer.write_bytes(encoded)
    stats.dictionary_bytes = writer.tell()
    root_offset = writer.tell()

    all_tags = frozenset(dictionary.tags())
    root_parent_desc = _order_desc_list(all_tags, dictionary)
    _emit(analyzed, writer, root_parent_desc, ROOT_SIZE_BITS, dictionary, stats)
    data = writer.getvalue()
    stats.total_bytes = len(data)
    return EncodedDocument(data, dictionary, stats, root_offset)
