"""Bit-level writer/reader used by the Skip-index encodings.

The paper's metadata fields have data-dependent bit widths
(``log2(|DescTag_parent|)`` bits for a tag code, ``log2(SubtreeSize_
parent)`` bits for a size) and "need be aligned on a byte frontier" per
element.  :class:`BitWriter`/:class:`BitReader` provide exactly that:
fixed-width big-endian bit fields, byte alignment, varints and raw
bytes.
"""

from __future__ import annotations



def bits_for(n: int) -> int:
    """Bits needed to represent values in ``[0, n]`` (0 when n == 0).

    This is the paper's ``ceil(log2(.))`` with the convention that a
    field over a singleton domain occupies no bits at all.
    """
    if n <= 0:
        return 0
    return n.bit_length()


def bits_for_count(count: int) -> int:
    """Bits needed to index one of ``count`` values (0 for count <= 1)."""
    if count <= 1:
        return 0
    return (count - 1).bit_length()


class BitWriter:
    """Append-only big-endian bit stream."""

    def __init__(self):
        self._bytes = bytearray()
        self._bit_pos = 0  # bits already used in the last byte (0..7)

    def write_bits(self, value: int, width: int) -> None:
        """Write ``value`` in ``width`` bits (most significant first)."""
        if width < 0:
            raise ValueError("negative width")
        if width == 0:
            return
        if value < 0 or value >> width:
            raise ValueError("value %d does not fit in %d bits" % (value, width))
        remaining = width
        while remaining > 0:
            if self._bit_pos == 0:
                self._bytes.append(0)
            free = 8 - self._bit_pos
            take = min(free, remaining)
            chunk = (value >> (remaining - take)) & ((1 << take) - 1)
            self._bytes[-1] |= chunk << (free - take)
            self._bit_pos = (self._bit_pos + take) % 8
            remaining -= take

    def write_bit(self, bit: int) -> None:
        self.write_bits(1 if bit else 0, 1)

    def align(self) -> None:
        """Pad with zero bits to the next byte frontier."""
        self._bit_pos = 0

    def write_bytes(self, data: bytes) -> None:
        """Write raw bytes (aligns first)."""
        self.align()
        self._bytes.extend(data)

    def write_varint(self, value: int) -> None:
        """LEB128 unsigned varint (aligns first)."""
        if value < 0:
            raise ValueError("varint must be non-negative")
        self.align()
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                self._bytes.append(byte | 0x80)
            else:
                self._bytes.append(byte)
                return

    def tell(self) -> int:
        """Current size in bytes (including a partially filled byte)."""
        return len(self._bytes)

    def getvalue(self) -> bytes:
        return bytes(self._bytes)


class BitReader:
    """Big-endian bit stream reader over a bytes-like object."""

    def __init__(self, data: bytes, offset: int = 0):
        self._data = data
        self._byte_pos = offset
        self._bit_pos = 0

    def read_bits(self, width: int) -> int:
        if width < 0:
            raise ValueError("negative width")
        value = 0
        remaining = width
        while remaining > 0:
            if self._byte_pos >= len(self._data):
                raise EOFError("bit stream exhausted")
            free = 8 - self._bit_pos
            take = min(free, remaining)
            byte = self._data[self._byte_pos]
            chunk = (byte >> (free - take)) & ((1 << take) - 1)
            value = (value << take) | chunk
            self._bit_pos += take
            if self._bit_pos == 8:
                self._bit_pos = 0
                self._byte_pos += 1
            remaining -= take
        return value

    def read_bit(self) -> int:
        return self.read_bits(1)

    def align(self) -> None:
        if self._bit_pos:
            self._bit_pos = 0
            self._byte_pos += 1

    def read_bytes(self, count: int) -> bytes:
        self.align()
        end = self._byte_pos + count
        if end > len(self._data):
            raise EOFError("byte stream exhausted")
        chunk = self._data[self._byte_pos : end]
        self._byte_pos = end
        return bytes(chunk)

    def read_varint(self) -> int:
        self.align()
        shift = 0
        value = 0
        while True:
            if self._byte_pos >= len(self._data):
                raise EOFError("varint exhausted")
            byte = self._data[self._byte_pos]
            self._byte_pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7

    def tell(self) -> int:
        """Byte offset of the next aligned read."""
        return self._byte_pos + (1 if self._bit_pos else 0)

    def seek(self, offset: int) -> None:
        self._byte_pos = offset
        self._bit_pos = 0

    def exhausted(self, end: int) -> bool:
        """True if the aligned position reached ``end``."""
        return self.tell() >= end
