"""Skip index (Section 4): compact recursive structural index.

The Skip index lets the SOE detect rules and queries that cannot apply
inside a subtree and *skip* the subtree — saving decryption and
communication, the two bottlenecks of the architecture.  It encodes,
per element:

* its tag, as a reference into the *parent's* descendant-tag set
  (recursive dictionary compression);
* the set of tags appearing in its subtree (``TagArray``), as a bitmap
  over the parent's set;
* its encoded subtree size, with a field width derived from the
  parent's size.

Modules:

* :mod:`repro.skipindex.bitio` — bit-level readers/writers;
* :mod:`repro.skipindex.encoder` — the TCSBR encoder (the Skip index
  proper) producing a self-delimiting binary document;
* :mod:`repro.skipindex.decoder` — the streaming decoder and the
  :class:`~repro.skipindex.decoder.SkipIndexNavigator` feeding the
  evaluator with events, metadata and physical skips;
* :mod:`repro.skipindex.variants` — the NC, TC, TCS and TCSB encodings
  compared against TCSBR in Fig. 8;
* :mod:`repro.skipindex.structural` — the publish-time pre/post
  structural index and the :class:`~repro.skipindex.structural.
  IndexedNavigator` that serves queries without decrypting structure.
"""

from repro.skipindex.encoder import EncodedDocument, encode_document
from repro.skipindex.decoder import (
    SkipIndexNavigator,
    decode_document,
    iter_decoded_events,
)
from repro.skipindex.structural import (
    IndexedNavigator,
    StructuralIndex,
    StructuralIndexError,
    build_structural_index,
    parse_structural_index,
)
from repro.skipindex.variants import (
    encoding_report,
    size_nc,
    size_tc,
    size_tcs,
    size_tcsb,
)

__all__ = [
    "EncodedDocument",
    "encode_document",
    "decode_document",
    "iter_decoded_events",
    "SkipIndexNavigator",
    "IndexedNavigator",
    "StructuralIndex",
    "StructuralIndexError",
    "build_structural_index",
    "parse_structural_index",
    "encoding_report",
    "size_nc",
    "size_tc",
    "size_tcs",
    "size_tcsb",
]
