"""Streaming decoder for the TCSBR format + the Skip-index navigator.

The decoder mirrors the paper's SOE-side decoding: it keeps a
*SkipStack* of ``(DescTag list, field widths, content end)`` for the
open elements, and reconstructs tags, descendant-tag sets and subtree
sizes while reading forward.  Because sizes are explicit, it can *skip*
a subtree in O(1) by jumping to its content end — the operation the
whole index exists for.

:class:`SkipIndexNavigator` exposes the decoder through the evaluator's
:class:`~repro.accesscontrol.navigation.Navigator` protocol, including
pending-subtree capture (the fetch callback re-decodes the byte span on
demand — the read-back of Section 5).

The decoder reads from any random-access bytes-like object; the secure
pipeline substitutes a lazily decrypting, integrity-checking view
(:mod:`repro.soe.session`) so that skipped bytes are never transferred
nor decrypted.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.accesscontrol.navigation import FetchCallback, Navigator, SubtreeMeta
from repro.metrics import Meter
from repro.skipindex.bitio import BitReader, bits_for, bits_for_count
from repro.skipindex.encoder import MAGIC, ROOT_SIZE_BITS, VERSION, EncodedDocument
from repro.xmlkit.dictionary import TagDictionary
from repro.xmlkit.dom import Node
from repro.xmlkit.events import CLOSE, OPEN, TEXT, Event


class SkipIndexFormatError(ValueError):
    """Raised on malformed encoded documents."""


class _OpenFrame:
    """SkipStack entry: decoding context of one open element."""

    __slots__ = ("tag", "desc_list", "code_width", "size_width", "end", "leaf_text")

    def __init__(
        self,
        tag: str,
        desc_list: Tuple[str, ...],
        size_width: int,
        end: int,
        leaf_text: Optional[int] = None,
    ):
        self.tag = tag
        self.desc_list = desc_list
        self.code_width = bits_for_count(len(desc_list) + 1)
        self.size_width = size_width
        self.end = end
        self.leaf_text = leaf_text  # pending leaf text length, if any


def read_header(data) -> Tuple[TagDictionary, int]:
    """Parse magic, version and dictionary; return (dictionary, offset)."""
    reader = BitReader(data)
    if bytes(reader.read_bytes(4)) != MAGIC:
        raise SkipIndexFormatError("bad magic")
    version = reader.read_bytes(1)[0]
    if version != VERSION:
        raise SkipIndexFormatError("unsupported version %d" % version)
    count = reader.read_varint()
    dictionary = TagDictionary()
    for _ in range(count):
        length = reader.read_varint()
        dictionary.add(reader.read_bytes(length).decode("utf-8"))
    return dictionary, reader.tell()


class SkipIndexNavigator(Navigator):
    """Navigator over an encoded (possibly lazily decrypted) document.

    ``data`` is any random-access bytes-like object (``bytes`` or a
    decrypting view); ``meter`` accumulates skip statistics.
    ``provide_meta=False`` hides the index metadata from the evaluator
    (for ablations: skipping without token filtering).
    """

    __slots__ = (
        "data",
        "dictionary",
        "meter",
        "provide_meta",
        "_offset",
        "_stack",
        "_root_context",
        "_done",
    )

    def __init__(
        self,
        data,
        dictionary: Optional[TagDictionary] = None,
        start_offset: Optional[int] = None,
        meter: Optional[Meter] = None,
        provide_meta: bool = True,
    ):
        if dictionary is None or start_offset is None:
            dictionary, start_offset = read_header(data)
        self.data = data
        self.dictionary = dictionary
        self.meter = meter
        self.provide_meta = provide_meta
        self._offset = start_offset
        self._stack: List[_OpenFrame] = []
        root_desc = tuple(sorted(dictionary.tags(), key=dictionary.code))
        self._root_context = _OpenFrame("", root_desc, ROOT_SIZE_BITS, -1)
        self._done = False

    # ------------------------------------------------------------------
    def next(self):
        if self._done:
            return None
        if self._stack:
            top = self._stack[-1]
            if top.leaf_text is not None:
                length = top.leaf_text
                top.leaf_text = None
                if length:
                    text = bytes(self.data[self._offset : self._offset + length])
                    self._offset += length
                    return (TEXT, text.decode("utf-8"), None)
            if self._offset >= top.end:
                self._stack.pop()
                if not self._stack:
                    self._done = True
                return (CLOSE, top.tag, None)
        context = self._stack[-1] if self._stack else self._root_context
        reader = BitReader(self.data, self._offset)
        code = reader.read_bits(context.code_width)
        if code == 0:
            length = reader.read_varint()
            text = bytes(reader.read_bytes(length)).decode("utf-8")
            self._offset = reader.tell()
            return (TEXT, text, None)
        try:
            tag = context.desc_list[code - 1]
        except IndexError:
            raise SkipIndexFormatError(
                "tag code %d out of range at offset %d" % (code, self._offset)
            )
        internal = reader.read_bit()
        if internal:
            width = len(context.desc_list)
            bitmap = reader.read_bits(width)
            desc = tuple(
                candidate
                for index, candidate in enumerate(context.desc_list)
                if bitmap & (1 << (width - 1 - index))
            )
            size = reader.read_bits(context.size_width)
            reader.align()
            start = reader.tell()
            self._stack.append(_OpenFrame(tag, desc, bits_for(size), start + size))
            self._offset = start
            meta = SubtreeMeta(frozenset(desc), size) if self.provide_meta else None
            return (OPEN, tag, meta)
        # Leaf: one record yields OPEN, then its text, then CLOSE.
        length = reader.read_varint()
        start = reader.tell()
        self._stack.append(_OpenFrame(tag, (), 0, start + length, leaf_text=length))
        self._offset = start
        meta = SubtreeMeta(frozenset(), length) if self.provide_meta else None
        return (OPEN, tag, meta)

    def supports_skip(self) -> bool:
        return True

    def supports_capture(self) -> bool:
        return True

    # ------------------------------------------------------------------
    def skip_subtree(self) -> None:
        frame = self._current_frame()
        if self.meter is not None:
            self.meter.skipped_bytes += max(0, frame.end - self._offset)
        frame.leaf_text = None
        self._offset = frame.end

    def skip_and_capture(self) -> FetchCallback:
        frame = self._current_frame()
        if frame.leaf_text is not None:
            fetch = self._make_leaf_fetch(frame.tag, self._offset, frame.end)
        else:
            fetch = self._make_fetch(self._offset, frame.end, frame, wrap_tag=frame.tag)
        if self.meter is not None:
            self.meter.skipped_bytes += max(0, frame.end - self._offset)
        frame.leaf_text = None
        self._offset = frame.end
        return fetch

    def skip_rest(self) -> bool:
        frame = self._current_frame()
        if frame.leaf_text is None and self._offset >= frame.end:
            return False
        if self.meter is not None:
            self.meter.skipped_bytes += frame.end - self._offset
        frame.leaf_text = None
        self._offset = frame.end
        return True

    def skip_rest_and_capture(self) -> Optional[FetchCallback]:
        frame = self._current_frame()
        if frame.leaf_text is not None:
            fetch = self._make_leaf_fetch(None, self._offset, frame.end)
        elif self._offset >= frame.end:
            return None
        else:
            fetch = self._make_fetch(self._offset, frame.end, frame, wrap_tag=None)
        if self.meter is not None:
            self.meter.skipped_bytes += frame.end - self._offset
        frame.leaf_text = None
        self._offset = frame.end
        return fetch

    # ------------------------------------------------------------------
    def _current_frame(self) -> _OpenFrame:
        if not self._stack:
            raise RuntimeError("no open element to skip")
        return self._stack[-1]

    def _make_leaf_fetch(
        self, tag: Optional[str], start: int, end: int
    ) -> FetchCallback:
        data = self.data
        meter = self.meter

        def fetch() -> Sequence[Event]:
            if meter is not None:
                meter.readback_events += 1
            events: List[Event] = []
            if tag is not None:
                events.append(Event(OPEN, tag))
            if end > start:
                events.append(
                    Event(TEXT, bytes(data[start:end]).decode("utf-8"))
                )
            if tag is not None:
                events.append(Event(CLOSE, tag))
            return events

        return fetch

    def _make_fetch(
        self,
        start: int,
        end: int,
        context: _OpenFrame,
        wrap_tag: Optional[str],
    ) -> FetchCallback:
        data = self.data
        meter = self.meter
        desc_list = context.desc_list
        size_width = context.size_width
        tag = wrap_tag

        def fetch() -> Sequence[Event]:
            if meter is not None:
                meter.readback_events += 1
            events: List[Event] = []
            if tag is not None:
                events.append(Event(OPEN, tag))
            _decode_span(data, start, end, desc_list, size_width, events)
            if tag is not None:
                events.append(Event(CLOSE, tag))
            return events

        return fetch


def _decode_span(
    data,
    start: int,
    end: int,
    desc_list: Tuple[str, ...],
    size_width: int,
    out: List[Event],
) -> None:
    """Decode all items in ``[start, end)`` under the given context."""
    code_width = bits_for_count(len(desc_list) + 1)
    offset = start
    while offset < end:
        reader = BitReader(data, offset)
        code = reader.read_bits(code_width)
        if code == 0:
            length = reader.read_varint()
            out.append(Event(TEXT, bytes(reader.read_bytes(length)).decode("utf-8")))
            offset = reader.tell()
            continue
        tag = desc_list[code - 1]
        internal = reader.read_bit()
        out.append(Event(OPEN, tag))
        if internal:
            width = len(desc_list)
            bitmap = reader.read_bits(width)
            desc = tuple(
                candidate
                for index, candidate in enumerate(desc_list)
                if bitmap & (1 << (width - 1 - index))
            )
            size = reader.read_bits(size_width)
            reader.align()
            content_start = reader.tell()
            _decode_span(
                data, content_start, content_start + size, desc, bits_for(size), out
            )
            offset = content_start + size
        else:
            length = reader.read_varint()
            if length:
                out.append(
                    Event(TEXT, bytes(reader.read_bytes(length)).decode("utf-8"))
                )
            offset = reader.tell()
        out.append(Event(CLOSE, tag))


def iter_decoded_events(document: EncodedDocument) -> Iterator[Event]:
    """Decode a whole document into its event stream."""
    navigator = SkipIndexNavigator(
        document.data, document.dictionary, document.root_offset
    )
    while True:
        item = navigator.next()
        if item is None:
            return
        kind, value, _meta = item
        yield Event(kind, value)


def decode_document(document: EncodedDocument) -> Node:
    """Decode a whole document back into a DOM tree (round-trip test)."""
    from repro.xmlkit.events import events_to_tree

    return events_to_tree(iter_decoded_events(document))
