"""Structural XPath accelerator: a publish-time pre/post index.

The streaming evaluator pays for every byte it *looks at*: even with
skip-pruning, visiting a sibling's header decrypts the whole chunk the
header lives in, so query cost stays linear in document size.  This
module builds, at publish time (over the plaintext TCSBR encoding), a
flat table of every item in the document — offsets, sizes, tags and
descendant-tag bitmaps — plus the classic ``(pre, post, level)``
numbering over elements.

Because the TCSBR encoding is self-delimiting, byte-interval nesting
and pre/post containment coincide: element ``a`` is an ancestor of
``e`` iff ``a.pre < e.pre and e.post < a.post`` iff
``a.start < e.start and e.end <= a.end``.  The index therefore answers
child/descendant path steps as range predicates without touching the
ciphertext, and :class:`IndexedNavigator` replays the exact event
stream of :class:`~repro.skipindex.decoder.SkipIndexNavigator` while
reading (hence decrypting) only text payloads and captured spans — the
structure bytes are served from the index.  The streaming decoder
remains the oracle: for any plan the two navigators are byte-identical.

Components:

* :func:`build_structural_index` — one forward walk of the encoded
  bytes (mirroring the decoder's SkipStack) producing a
  :class:`StructuralIndex`;
* ``StructuralIndex.to_bytes`` / :func:`parse_structural_index` — the
  compact blob persisted next to the document (MemoryStore attribute,
  LogStore index record);
* ``StructuralIndex.match`` — candidate elements for a wildcard-free
  path, ``()`` meaning *provably empty result* (early exit);
* ``StructuralIndex.planned_chunks`` — the minimal contributing chunk
  set for a candidate list (metrics / trailer material);
* :class:`IndexedNavigator` — the drop-in navigator.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from repro.accesscontrol.navigation import SubtreeMeta
from repro.metrics import Meter
from repro.skipindex.bitio import BitReader, bits_for, bits_for_count
from repro.skipindex.decoder import SkipIndexNavigator, _OpenFrame
from repro.skipindex.encoder import ROOT_SIZE_BITS, EncodedDocument
from repro.xmlkit.dictionary import TagDictionary
from repro.xmlkit.events import CLOSE, OPEN, TEXT

#: Blob magic + version ("X Structural IndeX").
INDEX_MAGIC = b"XSIX"
INDEX_VERSION = 1

#: Item kinds in the flat table (document order, strictly increasing
#: start offsets).
ITEM_TEXT = 0
ITEM_LEAF = 1
ITEM_INTERNAL = 2


class StructuralIndexError(ValueError):
    """Raised on malformed or inconsistent index blobs."""


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError("varint must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


class _BlobReader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int = 0):
        self.data = data
        self.pos = pos

    def varint(self) -> int:
        value = 0
        shift = 0
        data = self.data
        pos = self.pos
        while True:
            if pos >= len(data):
                raise StructuralIndexError("truncated index blob")
            byte = data[pos]
            pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                self.pos = pos
                return value
            shift += 7

    def byte(self) -> int:
        if self.pos >= len(self.data):
            raise StructuralIndexError("truncated index blob")
        value = self.data[self.pos]
        self.pos += 1
        return value


class StructuralIndex:
    """Flat item table + pre/post element numbering of one document.

    Parallel per-item arrays (document order)::

        kinds[i]     ITEM_TEXT | ITEM_LEAF | ITEM_INTERNAL
        starts[i]    byte offset of the item header (aligned)
        contents[i]  first content byte (after code/bitmap/size fields)
        sizes[i]     content bytes (subtree size internal, text length
                     for leaf/text items); item ends at contents+sizes
        tags[i]      global dictionary code of the element (-1 for text)
        descs[i]     descendant-tag bitmap over global codes (internal)

    Elements additionally get dense ``pre`` numbers (index into the
    ``elem_*`` arrays), ``post`` numbers (close order) and ``level``
    (root = 0) — derived from the byte intervals, never persisted.

    ``total_size`` / ``root_offset`` / ``tag_count`` fingerprint the
    encoding the index was built from; :meth:`matches_document` is the
    staleness guard the station checks before trusting the index.
    """

    __slots__ = (
        "total_size",
        "root_offset",
        "tag_count",
        "kinds",
        "starts",
        "contents",
        "sizes",
        "tags",
        "descs",
        "elem_items",
        "elem_parent",
        "elem_level",
        "elem_post",
        "_elems_by_tag",
    )

    def __init__(
        self,
        total_size: int,
        root_offset: int,
        tag_count: int,
        kinds: List[int],
        starts: List[int],
        contents: List[int],
        sizes: List[int],
        tags: List[int],
        descs: List[int],
    ):
        self.total_size = total_size
        self.root_offset = root_offset
        self.tag_count = tag_count
        self.kinds = kinds
        self.starts = starts
        self.contents = contents
        self.sizes = sizes
        self.tags = tags
        self.descs = descs
        self._elems_by_tag: Optional[Dict[int, List[int]]] = None
        self._derive_elements()

    # ------------------------------------------------------------------
    def _derive_elements(self) -> None:
        """Replay the item table once to assign pre/post/level/parent."""
        elem_items: List[int] = []
        elem_parent: List[int] = []
        elem_level: List[int] = []
        elem_post: List[int] = []
        open_stack: List[Tuple[int, int]] = []  # (pre, end)
        post = 0
        for item, kind in enumerate(self.kinds):
            start = self.starts[item]
            while open_stack and start >= open_stack[-1][1]:
                elem_post[open_stack.pop()[0]] = post
                post += 1
            if kind == ITEM_TEXT:
                continue
            pre = len(elem_items)
            elem_items.append(item)
            elem_parent.append(open_stack[-1][0] if open_stack else -1)
            elem_level.append(len(open_stack))
            elem_post.append(-1)
            open_stack.append((pre, self.contents[item] + self.sizes[item]))
        while open_stack:
            elem_post[open_stack.pop()[0]] = post
            post += 1
        self.elem_items = elem_items
        self.elem_parent = elem_parent
        self.elem_level = elem_level
        self.elem_post = elem_post

    # ------------------------------------------------------------------
    @property
    def item_count(self) -> int:
        return len(self.kinds)

    @property
    def element_count(self) -> int:
        return len(self.elem_items)

    def elem_span(self, pre: int) -> Tuple[int, int]:
        """Full byte span ``[start, end)`` of element ``pre``'s subtree
        (header included)."""
        item = self.elem_items[pre]
        return self.starts[item], self.contents[item] + self.sizes[item]

    def matches_document(self, encoded: EncodedDocument) -> bool:
        """Staleness guard: does this index describe ``encoded``?

        ``len()`` on a lazily loaded plaintext is metadata-only, so the
        check never forces decryption or a disk read.
        """
        return (
            self.total_size == len(encoded.data)
            and self.root_offset == encoded.root_offset
            and self.tag_count == len(encoded.dictionary)
        )

    # ------------------------------------------------------------------
    def _by_tag(self) -> Dict[int, List[int]]:
        table = self._elems_by_tag
        if table is None:
            table = {}
            for pre, item in enumerate(self.elem_items):
                table.setdefault(self.tags[item], []).append(pre)
            self._elems_by_tag = table
        return table

    def match(
        self,
        steps: Sequence[Tuple[str, str]],
        dictionary: TagDictionary,
    ) -> Tuple[int, ...]:
        """Candidate elements (pre numbers) for a wildcard-free path.

        ``steps`` is the :attr:`QueryPlan.structural` tuple of
        ``(axis, tag)`` pairs.  Predicates are ignored, so the result
        is a *superset* of the real matches — which makes the empty
        result exact: ``()`` proves the query selects nothing, however
        its predicates would evaluate.
        """
        candidates: Optional[set] = None
        by_tag = self._by_tag()
        for position, (axis, tag) in enumerate(steps):
            if tag not in dictionary:
                return ()
            code = dictionary.code(tag)
            with_tag = by_tag.get(code, ())
            if position == 0:
                if axis == "/":
                    candidates = {
                        pre for pre in with_tag if self.elem_level[pre] == 0
                    }
                else:
                    candidates = set(with_tag)
            elif axis == "/":
                previous = candidates
                candidates = {
                    pre for pre in with_tag if self.elem_parent[pre] in previous
                }
            else:
                previous = candidates
                matched = set()
                for pre in with_tag:
                    ancestor = self.elem_parent[pre]
                    while ancestor >= 0:
                        if ancestor in previous:
                            matched.add(pre)
                            break
                        ancestor = self.elem_parent[ancestor]
                candidates = matched
            if not candidates:
                return ()
        return tuple(sorted(candidates))

    def planned_chunks(self, candidates: Sequence[int], layout) -> Tuple[int, ...]:
        """Minimal contributing chunk set for ``candidates``.

        Covers each candidate subtree plus the header fields of its
        ancestors (the spine the evaluator walks to reach it) and the
        document header.  Integrity dependencies (MHT sibling digests,
        CBC predecessor blocks) are *not* expanded here — the scheme
        readers pull them on demand — so this is the plaintext-chunk
        floor the ``repro_index_*`` metrics report.
        """
        chunks = set(layout.chunks_covering(0, self.root_offset))
        seen_spine = set()
        for pre in candidates:
            start, end = self.elem_span(pre)
            chunks.update(layout.chunks_covering(start, end - start))
            ancestor = self.elem_parent[pre]
            while ancestor >= 0 and ancestor not in seen_spine:
                seen_spine.add(ancestor)
                item = self.elem_items[ancestor]
                header = self.contents[item] - self.starts[item]
                chunks.update(layout.chunks_covering(self.starts[item], header))
                ancestor = self.elem_parent[ancestor]
        return tuple(sorted(chunks))

    def ranges_only_touch_text(
        self, ranges: Sequence[Tuple[int, int]]
    ) -> bool:
        """True when every ``[start, end)`` range lies wholly inside one
        text payload (text item or leaf-element content).

        This is the non-cascading-edit test: such a change moves no
        structure field, so the index can be reused verbatim when the
        encoded size is unchanged.
        """
        starts = self.starts
        for range_start, range_end in ranges:
            if range_end <= range_start:
                continue
            item = bisect_right(starts, range_start) - 1
            if item < 0:
                return False
            if self.kinds[item] == ITEM_INTERNAL:
                return False
            content = self.contents[item]
            if range_start < content:
                return False
            if range_end > content + self.sizes[item]:
                return False
        return True

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to the compact persistent blob."""
        out = bytearray()
        out += INDEX_MAGIC
        out.append(INDEX_VERSION)
        _write_varint(out, self.total_size)
        _write_varint(out, self.root_offset)
        _write_varint(out, self.tag_count)
        _write_varint(out, len(self.kinds))
        previous_start = 0
        for item, kind in enumerate(self.kinds):
            start = self.starts[item]
            out.append(kind)
            _write_varint(out, start - previous_start)
            _write_varint(out, self.contents[item] - start)
            _write_varint(out, self.sizes[item])
            if kind != ITEM_TEXT:
                _write_varint(out, self.tags[item])
            if kind == ITEM_INTERNAL:
                _write_varint(out, self.descs[item])
            previous_start = start
        return bytes(out)

    def __eq__(self, other) -> bool:
        if not isinstance(other, StructuralIndex):
            return NotImplemented
        return (
            self.total_size == other.total_size
            and self.root_offset == other.root_offset
            and self.tag_count == other.tag_count
            and self.kinds == other.kinds
            and self.starts == other.starts
            and self.contents == other.contents
            and self.sizes == other.sizes
            and self.tags == other.tags
            and self.descs == other.descs
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "StructuralIndex(%d items, %d elements, %d bytes)" % (
            self.item_count,
            self.element_count,
            self.total_size,
        )


def parse_structural_index(blob: bytes) -> StructuralIndex:
    """Parse a blob produced by :meth:`StructuralIndex.to_bytes`."""
    blob = bytes(blob)
    if blob[:4] != INDEX_MAGIC:
        raise StructuralIndexError("bad index magic")
    reader = _BlobReader(blob, 4)
    version = reader.byte()
    if version != INDEX_VERSION:
        raise StructuralIndexError("unsupported index version %d" % version)
    total_size = reader.varint()
    root_offset = reader.varint()
    tag_count = reader.varint()
    count = reader.varint()
    kinds: List[int] = []
    starts: List[int] = []
    contents: List[int] = []
    sizes: List[int] = []
    tags: List[int] = []
    descs: List[int] = []
    previous_start = 0
    for _ in range(count):
        kind = reader.byte()
        if kind not in (ITEM_TEXT, ITEM_LEAF, ITEM_INTERNAL):
            raise StructuralIndexError("bad item kind %d" % kind)
        start = previous_start + reader.varint()
        header = reader.varint()
        size = reader.varint()
        tag = reader.varint() if kind != ITEM_TEXT else -1
        desc = reader.varint() if kind == ITEM_INTERNAL else 0
        kinds.append(kind)
        starts.append(start)
        contents.append(start + header)
        sizes.append(size)
        tags.append(tag)
        descs.append(desc)
        previous_start = start
    return StructuralIndex(
        total_size, root_offset, tag_count, kinds, starts, contents, sizes,
        tags, descs,
    )


# ----------------------------------------------------------------------
def build_structural_index(encoded: EncodedDocument) -> StructuralIndex:
    """One forward walk of the (plaintext) encoding → item table.

    Mirrors the decoder's SkipStack exactly, but records offsets instead
    of emitting events.  Runs at publish/update time over plaintext
    bytes — never against the ciphertext.
    """
    data = encoded.data
    if not isinstance(data, (bytes, bytearray, memoryview)):
        data = bytes(data)
    dictionary = encoded.dictionary
    root_offset = encoded.root_offset
    root_desc = tuple(range(len(dictionary)))

    kinds: List[int] = []
    starts: List[int] = []
    contents: List[int] = []
    sizes: List[int] = []
    tags: List[int] = []
    descs: List[int] = []

    # Frames: (desc codes, code width, size width, content end).
    stack: List[Tuple[Tuple[int, ...], int, int, int]] = []
    root_frame = (
        root_desc,
        bits_for_count(len(root_desc) + 1),
        ROOT_SIZE_BITS,
        -1,
    )
    offset = root_offset
    while True:
        while stack and offset >= stack[-1][3]:
            stack.pop()
        if not stack and kinds:
            break
        desc_list, code_width, size_width, _end = (
            stack[-1] if stack else root_frame
        )
        start = offset
        reader = BitReader(data, offset)
        code = reader.read_bits(code_width)
        if code == 0:
            length = reader.read_varint()
            content = reader.tell()
            kinds.append(ITEM_TEXT)
            starts.append(start)
            contents.append(content)
            sizes.append(length)
            tags.append(-1)
            descs.append(0)
            offset = content + length
            continue
        tag_code = desc_list[code - 1]
        internal = reader.read_bit()
        if internal:
            width = len(desc_list)
            bitmap = reader.read_bits(width)
            desc = tuple(
                candidate
                for index, candidate in enumerate(desc_list)
                if bitmap & (1 << (width - 1 - index))
            )
            size = reader.read_bits(size_width)
            reader.align()
            content = reader.tell()
            mask = 0
            for candidate in desc:
                mask |= 1 << candidate
            kinds.append(ITEM_INTERNAL)
            starts.append(start)
            contents.append(content)
            sizes.append(size)
            tags.append(tag_code)
            descs.append(mask)
            stack.append(
                (desc, bits_for_count(len(desc) + 1), bits_for(size),
                 content + size)
            )
            offset = content
        else:
            length = reader.read_varint()
            content = reader.tell()
            kinds.append(ITEM_LEAF)
            starts.append(start)
            contents.append(content)
            sizes.append(length)
            tags.append(tag_code)
            descs.append(0)
            offset = content + length
    return StructuralIndex(
        len(data), root_offset, len(dictionary), kinds, starts, contents,
        sizes, tags, descs,
    )


# ----------------------------------------------------------------------
class IndexedNavigator(SkipIndexNavigator):
    """Navigator replaying structure from a :class:`StructuralIndex`.

    Serves the *identical* event/meta/skip/capture stream as the
    streaming :class:`SkipIndexNavigator`, but decodes no header bits:
    tags, descendant sets, sizes and item boundaries come from the
    index, so the underlying (lazily decrypting) ``data`` is only read
    for text payloads and captured spans.  With a selective query that
    is the difference between decrypting every chunk a header lands in
    and decrypting only the chunks that contribute to the result.

    Skip operations are inherited unchanged — they only move
    ``_offset``; the item cursor re-synchronizes by bisecting the start
    table on the next decode.
    """

    __slots__ = ("index", "_tag_names", "_item")

    def __init__(
        self,
        data,
        index: StructuralIndex,
        dictionary: TagDictionary,
        meter: Optional[Meter] = None,
        provide_meta: bool = True,
    ):
        SkipIndexNavigator.__init__(
            self, data, dictionary, index.root_offset, meter, provide_meta
        )
        self.index = index
        # Global codes are dense 0..N-1, so the root context's
        # code-ordered desc list doubles as the code → tag table.
        self._tag_names = self._root_context.desc_list
        self._item = 0

    def _desc_names(self, mask: int) -> Tuple[str, ...]:
        # Ascending-code order == the decoder's desc-list order (desc
        # lists are dictionary-code ordered at every level).
        names = self._tag_names
        out = []
        code = 0
        while mask:
            if mask & 1:
                out.append(names[code])
            mask >>= 1
            code += 1
        return tuple(out)

    def next(self):
        if self._done:
            return None
        if self._stack:
            top = self._stack[-1]
            if top.leaf_text is not None:
                length = top.leaf_text
                top.leaf_text = None
                if length:
                    text = bytes(self.data[self._offset : self._offset + length])
                    self._offset += length
                    return (TEXT, text.decode("utf-8"), None)
            if self._offset >= top.end:
                self._stack.pop()
                if not self._stack:
                    self._done = True
                return (CLOSE, top.tag, None)
        index = self.index
        item = self._item
        starts = index.starts
        if item >= len(starts) or starts[item] != self._offset:
            item = bisect_right(starts, self._offset) - 1
            if item < 0 or starts[item] != self._offset:
                raise StructuralIndexError(
                    "index out of sync with document at offset %d"
                    % self._offset
                )
        self._item = item + 1
        kind = index.kinds[item]
        content = index.contents[item]
        size = index.sizes[item]
        if kind == ITEM_TEXT:
            text = bytes(self.data[content : content + size]).decode("utf-8")
            self._offset = content + size
            return (TEXT, text, None)
        tag = self._tag_names[index.tags[item]]
        if kind == ITEM_INTERNAL:
            desc = self._desc_names(index.descs[item])
            self._stack.append(
                _OpenFrame(tag, desc, bits_for(size), content + size)
            )
            self._offset = content
            meta = (
                SubtreeMeta(frozenset(desc), size) if self.provide_meta else None
            )
            return (OPEN, tag, meta)
        self._stack.append(
            _OpenFrame(tag, (), 0, content + size, leaf_text=size)
        )
        self._offset = content
        meta = SubtreeMeta(frozenset(), size) if self.provide_meta else None
        return (OPEN, tag, meta)
