"""Document updates under the Skip index (Section 4.1, "Updating the
document").

The paper analyses the cost of updating an indexed document:

    "In the worst case, updating an element induces an update of the
    SubtreeSize, the TagArray and the encoded tag of each of e's
    ancestors and of their direct children.  In the best case, only the
    SubtreeSize of e's ancestors need be updated.  The worst case
    occurs in two rather infrequent situations: [a size] jumps a power
    of 2 [or] the update generates an insertion or deletion in the tag
    dictionary."

This module applies edits to a document, re-encodes it, and *measures*
exactly that impact: which byte ranges of the encoding changed, how
many chunks must be re-encrypted, and whether the edit fell in the
paper's best or worst case (dictionary growth / size-field width jump).

Edits address elements by *index path*: a list of element-child
indexes from the root (``[]`` is the root itself, ``[0, 2]`` the third
element child of the first element child).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.crypto.chunks import ChunkLayout
from repro.skipindex.bitio import bits_for
from repro.skipindex.encoder import EncodedDocument, encode_document
from repro.xmlkit.dictionary import TagDictionary
from repro.xmlkit.dom import Node

IndexPath = Sequence[int]


class UpdateImpact:
    """What an edit costs at the terminal and in the SOE."""

    def __init__(
        self,
        old_size: int,
        new_size: int,
        changed_bytes: int,
        changed_ranges: List[Tuple[int, int]],
        chunks_to_reencrypt: int,
        dictionary_grew: bool,
        size_width_jumped: bool,
    ):
        self.old_size = old_size
        self.new_size = new_size
        self.changed_bytes = changed_bytes
        self.changed_ranges = changed_ranges
        self.chunks_to_reencrypt = chunks_to_reencrypt
        self.dictionary_grew = dictionary_grew
        self.size_width_jumped = size_width_jumped

    @property
    def is_worst_case(self) -> bool:
        """The paper's two "rather infrequent situations"."""
        return self.dictionary_grew or self.size_width_jumped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            "UpdateImpact(%d->%d bytes, %d changed, %d chunks, %s case)"
            % (
                self.old_size,
                self.new_size,
                self.changed_bytes,
                self.chunks_to_reencrypt,
                "worst" if self.is_worst_case else "best",
            )
        )


class UpdateError(ValueError):
    """Raised for invalid index paths or operations."""


def _clone(node: Node) -> Node:
    copy = Node(node.tag)
    for child in node.children:
        copy.children.append(child if isinstance(child, str) else _clone(child))
    return copy


def _resolve(root: Node, path: IndexPath) -> Node:
    current = root
    for index in path:
        children = [c for c in current.children if isinstance(c, Node)]
        if index < 0 or index >= len(children):
            raise UpdateError("index path %r leaves the tree" % (list(path),))
        current = children[index]
    return current


def _resolve_parent(root: Node, path: IndexPath) -> Tuple[Node, Node]:
    if not path:
        raise UpdateError("the root element cannot be the edit target here")
    parent = _resolve(root, path[:-1])
    child = _resolve(root, path)
    return parent, child


# ----------------------------------------------------------------------
# Edit operations (pure: return a new tree)
# ----------------------------------------------------------------------
def insert_element(root: Node, parent_path: IndexPath, new_child: Node,
                   position: Optional[int] = None) -> Node:
    """Insert ``new_child`` under the element at ``parent_path``."""
    updated = _clone(root)
    parent = _resolve(updated, parent_path)
    if position is None:
        parent.children.append(_clone(new_child))
    else:
        # Position counts element children, mapped onto the mixed list.
        element_seen = 0
        insert_at = len(parent.children)
        for list_index, child in enumerate(parent.children):
            if isinstance(child, Node):
                if element_seen == position:
                    insert_at = list_index
                    break
                element_seen += 1
        parent.children.insert(insert_at, _clone(new_child))
    return updated


def delete_element(root: Node, path: IndexPath) -> Node:
    """Delete the element at ``path``."""
    updated = _clone(root)
    parent, child = _resolve_parent(updated, path)
    parent.children.remove(child)
    return updated


def update_text(root: Node, path: IndexPath, new_text: str) -> Node:
    """Replace the direct text content of the element at ``path``."""
    updated = _clone(root)
    target = _resolve(updated, path)
    target.children = [
        c for c in target.children if not isinstance(c, str)
    ]
    target.children.insert(0, new_text)
    return updated


def rename_element(root: Node, path: IndexPath, new_tag: str) -> Node:
    """Rename the element at ``path`` (may grow the tag dictionary —
    the paper's worst case)."""
    updated = _clone(root)
    target = _resolve(updated, path)
    target.tag = new_tag
    return updated


# ----------------------------------------------------------------------
# Serializable edit operations (the live update path's unit of work)
# ----------------------------------------------------------------------
class UpdateOp:
    """One edit, as data: applicable to a tree and wire-serializable.

    The pure edit functions above are the semantics; an ``UpdateOp``
    names one of them plus its arguments so the same edit can travel
    through :meth:`SecureStation.update`, the server's UPDATE frame
    and the ``repro update`` CLI.  ``insert_element`` payloads travel
    as XML text (``xml``); a :class:`~repro.xmlkit.dom.Node` passed
    programmatically is serialized on demand.
    """

    KINDS = ("insert_element", "delete_element", "update_text", "rename_element")

    __slots__ = ("kind", "path", "text", "tag", "node", "position")

    def __init__(
        self,
        kind: str,
        path: IndexPath,
        text: Optional[str] = None,
        tag: Optional[str] = None,
        node: Optional[Node] = None,
        position: Optional[int] = None,
    ):
        if kind not in self.KINDS:
            raise UpdateError(
                "unknown update kind %r (expected one of %s)" % (kind, self.KINDS)
            )
        self.kind = kind
        self.path = list(path)
        self.text = text
        self.tag = tag
        self.node = node
        self.position = position
        if kind == "insert_element" and node is None:
            raise UpdateError("insert_element needs the new element")
        if kind == "update_text" and text is None:
            raise UpdateError("update_text needs the replacement text")
        if kind == "rename_element" and not tag:
            raise UpdateError("rename_element needs the new tag")

    # -- constructors ---------------------------------------------------
    @classmethod
    def insert(
        cls, path: IndexPath, node: Node, position: Optional[int] = None
    ) -> "UpdateOp":
        return cls("insert_element", path, node=node, position=position)

    @classmethod
    def delete(cls, path: IndexPath) -> "UpdateOp":
        return cls("delete_element", path)

    @classmethod
    def set_text(cls, path: IndexPath, text: str) -> "UpdateOp":
        return cls("update_text", path, text=text)

    @classmethod
    def rename(cls, path: IndexPath, tag: str) -> "UpdateOp":
        return cls("rename_element", path, tag=tag)

    # -- application ----------------------------------------------------
    def apply(self, root: Node) -> Node:
        """The edited tree (the input tree is never mutated)."""
        if self.kind == "insert_element":
            return insert_element(root, self.path, self.node, position=self.position)
        if self.kind == "delete_element":
            return delete_element(root, self.path)
        if self.kind == "update_text":
            return update_text(root, self.path, self.text)
        return rename_element(root, self.path, self.tag)

    # -- wire form ------------------------------------------------------
    def as_dict(self) -> dict:
        body: dict = {"kind": self.kind, "path": list(self.path)}
        if self.text is not None:
            body["text"] = self.text
        if self.tag is not None:
            body["tag"] = self.tag
        if self.position is not None:
            body["position"] = self.position
        if self.node is not None:
            from repro.xmlkit.serializer import serialize

            body["xml"] = serialize(self.node)
        return body

    @classmethod
    def from_dict(cls, body: dict) -> "UpdateOp":
        if not isinstance(body, dict):
            raise UpdateError("update op must be an object, got %r" % type(body))
        kind = body.get("kind")
        path = body.get("path", [])
        if not isinstance(path, (list, tuple)) or not all(
            isinstance(index, int) for index in path
        ):
            raise UpdateError("update path must be a list of integers")
        node = None
        if body.get("xml") is not None:
            from repro.xmlkit.parser import parse_document

            try:
                node = parse_document(body["xml"])
            except Exception as exc:
                raise UpdateError("bad xml payload: %s" % exc)
        position = body.get("position")
        if position is not None and not isinstance(position, int):
            raise UpdateError("position must be an integer")
        return cls(
            kind,
            path,
            text=body.get("text"),
            tag=body.get("tag"),
            node=node,
            position=position,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "UpdateOp(%s at %s)" % (self.kind, self.path)


# ----------------------------------------------------------------------
# Impact measurement
# ----------------------------------------------------------------------
def _diff_ranges(old: bytes, new: bytes) -> List[Tuple[int, int]]:
    """Maximal differing byte ranges between two encodings.

    A pure length change counts the whole tail from the divergence
    point (everything after an insertion shifts)."""
    limit = min(len(old), len(new))
    ranges: List[Tuple[int, int]] = []
    start: Optional[int] = None
    for index in range(limit):
        if old[index] != new[index]:
            if start is None:
                start = index
        elif start is not None:
            ranges.append((start, index))
            start = None
    if start is not None:
        ranges.append((start, limit))
    if len(old) != len(new):
        tail_start = ranges[-1][0] if ranges and ranges[-1][1] == limit else limit
        if ranges and ranges[-1][1] == limit:
            ranges[-1] = (tail_start, max(len(old), len(new)))
        else:
            ranges.append((limit, max(len(old), len(new))))
    return ranges


def reencode_after(
    old_encoded: EncodedDocument, new_tree: Node
) -> Tuple[EncodedDocument, bool]:
    """Re-encode ``new_tree`` reusing (and possibly extending) the old
    encoding's tag dictionary, so unchanged tags keep their codes — the
    realistic in-place update discipline.  Returns ``(new encoding,
    dictionary grew)``.
    """
    dictionary = TagDictionary(old_encoded.dictionary.tags())
    old_tag_count = len(dictionary)
    for node in new_tree.descendants():
        dictionary.add(node.tag)
    new_encoded = encode_document(new_tree, dictionary)
    return new_encoded, len(dictionary) > old_tag_count


def impact_between(
    old_encoded: EncodedDocument,
    new_encoded: EncodedDocument,
    old_tree: Node,
    new_tree: Node,
    layout: Optional[ChunkLayout] = None,
    dictionary_grew: Optional[bool] = None,
) -> UpdateImpact:
    """The paper's update impact between two encodings of one document.

    Diffing the *actual* old encoding (rather than a re-encode of the
    old tree) is what the live update path needs: the dirty chunk set
    must be exact with respect to the bytes the terminal really stores.
    """
    layout = layout if layout is not None else ChunkLayout()
    if dictionary_grew is None:
        dictionary_grew = len(new_encoded.dictionary) > len(old_encoded.dictionary)
    ranges = _diff_ranges(old_encoded.data, new_encoded.data)
    changed = sum(end - start for start, end in ranges)
    chunk_set = set()
    for start, end in ranges:
        for chunk in layout.chunks_covering(start, end - start):
            chunk_set.add(chunk)
    return UpdateImpact(
        old_size=len(old_encoded.data),
        new_size=len(new_encoded.data),
        changed_bytes=changed,
        changed_ranges=ranges,
        chunks_to_reencrypt=len(chunk_set),
        dictionary_grew=dictionary_grew,
        size_width_jumped=_size_width_jumped(old_tree, new_tree),
    )


def measure_update(
    old_tree: Node,
    new_tree: Node,
    layout: Optional[ChunkLayout] = None,
) -> Tuple[EncodedDocument, UpdateImpact]:
    """Re-encode after an edit and measure the paper's update impact.

    Returns the new encoding and the :class:`UpdateImpact`.  The number
    of chunks to re-encrypt assumes in-place chunk rewriting at the
    terminal (each touched chunk's payload and digest are redone).
    """
    old_encoded = encode_document(old_tree)
    new_encoded, dictionary_grew = reencode_after(old_encoded, new_tree)
    impact = impact_between(
        old_encoded,
        new_encoded,
        old_tree,
        new_tree,
        layout=layout,
        dictionary_grew=dictionary_grew,
    )
    return new_encoded, impact


def _size_width_jumped(old_tree: Node, new_tree: Node) -> bool:
    """Did some element's content size cross a power of two?

    The paper: "The SubtreeSize of e's ancestor's children have to be
    updated if the size of e's father grows (resp. shrinks) and jumps a
    power of 2."  We approximate on element counts per subtree position
    (cheap and monotone with encoded sizes).
    """
    old_sizes = _subtree_sizes(old_tree)
    new_sizes = _subtree_sizes(new_tree)
    for key, old_size in old_sizes.items():
        new_size = new_sizes.get(key)
        if new_size is None or new_size == old_size:
            continue
        if bits_for(new_size) != bits_for(old_size):
            return True
    return False


def _subtree_sizes(tree: Node) -> dict:
    sizes = {}

    def visit(node: Node, key: Tuple[int, ...]) -> int:
        total = len(node.tag)
        for child in node.children:
            if isinstance(child, str):
                total += len(child)
        for index, child in enumerate(
            c for c in node.children if isinstance(c, Node)
        ):
            total += visit(child, key + (index,))
        sizes[key] = total
        return total

    visit(tree, ())
    return sizes


def refresh_structural_index(
    old_index,
    new_encoded: EncodedDocument,
    impact: UpdateImpact,
):
    """Maintain the structural index across one committed update.

    Returns ``(index, mode)`` with ``mode`` one of ``"incremental"``
    (the old index is reused verbatim) or ``"rebuild"`` (a fresh
    crypto-free walk of the new plaintext encoding).

    The incremental case is exactly the non-cascading edit: the encoded
    size is unchanged and every changed byte range lies wholly inside a
    text payload, so no tag code, TagArray bitmap, SubtreeSize field or
    item boundary moved — the old item table still describes the new
    bytes.  Anything else rebuilds: a size change dirties ancestor
    SubtreeSize fields up to the root (and ``_diff_ranges`` charges the
    whole shifted tail), and the paper's worst cases (dictionary growth,
    size-width jump) re-encode wholesale.
    """
    from repro.skipindex.structural import build_structural_index

    if (
        old_index is not None
        and not impact.is_worst_case
        and impact.new_size == impact.old_size
        and old_index.total_size == impact.old_size
        and old_index.ranges_only_touch_text(impact.changed_ranges)
    ):
        return old_index, "incremental"
    return build_structural_index(new_encoded), "rebuild"
