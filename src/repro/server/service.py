"""The asyncio station server: many clients, one `SecureStation`.

Topology (the network form of Fig. 2)::

    client SDK  <== TCP, repro.server.protocol frames ==>  StationServer
    (RemoteSession)                                        (asyncio)
                                                               |
                                                         SecureStation
                                                        (the SOE facade)

Design points:

* **One event loop, CPU work off-loop.**  Policy evaluation is pure
  python and can take seconds on big documents; each QUERY runs in the
  default thread-pool executor, so the loop keeps accepting
  connections and serving STATS while a view is computed.  The
  :class:`SecureStation` is internally thread-safe (session counter,
  plan LRU, document map under its own lock) and published documents
  are immutable snapshots, so evaluations run genuinely in parallel.
* **Live updates.**  An UPDATE frame applies a
  :class:`~repro.skipindex.updates.UpdateOp` through
  :meth:`SecureStation.update` (dirty-chunk re-encryption under a
  bumped document version); every live connection then receives an
  INVALIDATED push so clients drop cached views and re-fetch.
* **Bounded-queue backpressure.**  The producer thread prepares (and,
  with ``seal=True``, encrypts) view chunks and *blocks* on a
  ``queue_depth``-slot gate until the writer task has flushed earlier
  chunks with ``await writer.drain()``.  A slow client therefore
  stalls its own producer thread, bounding the frames (and sealing
  work) in flight per connection.  Note the *serialized plaintext
  view* itself is materialized once per request by
  :meth:`SecureStation.stream` — the bound is on chunk copies and
  sealing, not on the view.
* **Per-session limits.**  Frame payloads are capped by the protocol
  decoder and each session may issue at most ``max_queries_per_session``
  QUERYs; violations get a structured ERROR frame.
* **Metered.**  Every connection keeps a private
  :class:`~repro.metrics.Meter`, merged into the server's shared
  :class:`~repro.metrics.ThreadSafeMeter` on close; STATS reports the
  station counters, the server counters and the merged meter.
"""

from __future__ import annotations

import asyncio
import threading
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.engine.station import SecureStation, StationError, StationSession
from repro.metrics import Meter, ThreadSafeMeter
from repro.obs.registry import BYTE_BUCKETS, MetricsRegistry
from repro.obs.trace import Tracer, format_trace_id
from repro.server import protocol
from repro.server.protocol import (
    BYE,
    CHUNK,
    ERROR,
    FORWARD,
    HELLO,
    INVALIDATED,
    PING,
    PONG,
    QUERY,
    RESULT,
    STATS,
    STATS_REQUEST,
    UPDATE,
    WELCOME,
    Frame,
    FrameDecoder,
    ProtocolError,
    encode_frame_parts,
    json_frame,
)
from repro.skipindex.updates import UpdateError, UpdateOp

#: Error codes carried by ERROR frames.
E_BAD_FRAME = "bad-frame"
E_PROTOCOL = "protocol"
E_UNKNOWN_DOCUMENT = "unknown-document"
E_NO_GRANT = "no-grant"
E_LIMIT = "limit"
E_UPDATE = "update"
E_INTERNAL = "internal"

#: Worst-case growth of a sealed chunk over its plaintext: 4-byte
#: length + 20-byte HMAC-SHA1 + up to 8 bytes of block padding.
SEAL_OVERHEAD = 32


class _Connection:
    """Per-connection state living on the event loop."""

    __slots__ = ("session", "meter", "queries", "peer", "gateway")

    def __init__(self, peer: str):
        self.session: Optional[StationSession] = None
        self.meter = Meter()
        self.queries = 0
        self.peer = peer
        #: Authenticated as a cluster gateway (HELLO {"gateway": true}
        #: on a server started with ``allow_forward``)?  Only such
        #: connections may issue FORWARD frames.
        self.gateway = False

    @property
    def session_id(self) -> int:
        return self.session.session_id if self.session else 0


class StationServer:
    """Serve a :class:`SecureStation` over TCP to many concurrent clients."""

    def __init__(
        self,
        station: SecureStation,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        chunk_size: int = 4096,
        queue_depth: int = 8,
        max_queries_per_session: int = 10_000,
        max_payload: int = protocol.DEFAULT_MAX_PAYLOAD,
        seal: bool = False,
        allow_updates: bool = True,
        allow_forward: bool = False,
        slow_ms: Optional[float] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        slow_sink=None,
    ):
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if chunk_size + (SEAL_OVERHEAD if seal else 0) > max_payload:
            raise ValueError(
                "chunk_size %d%s cannot fit the %d-byte frame payload limit"
                % (
                    chunk_size,
                    " (+%d seal overhead)" % SEAL_OVERHEAD if seal else "",
                    max_payload,
                )
            )
        self.station = station
        self.host = host
        self.port = port
        self.chunk_size = chunk_size
        self.queue_depth = queue_depth
        self.max_queries_per_session = max_queries_per_session
        self.max_payload = max_payload
        self.seal = seal
        self.allow_updates = allow_updates
        self.allow_forward = allow_forward
        self.meter = ThreadSafeMeter()
        self.server_stats: Dict[str, int] = {
            "connections": 0,
            "active": 0,
            "queries": 0,
            "updates": 0,
            "forwards": 0,
            "pings": 0,
            "invalidations": 0,
            "errors": 0,
            "chunks_streamed": 0,
            "bytes_streamed": 0,
        }
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._tasks: set = set()
        # Live connections (for INVALIDATED broadcast on update).
        self._writers: Dict[_Connection, asyncio.StreamWriter] = {}
        # Observability: one registry + tracer per server.  Traced
        # requests (nonzero frame trace id) record span trees; the
        # slow-query log keeps any trace over ``slow_ms``.  The ad-hoc
        # counter dicts above stay the source of truth — a pull-time
        # collector mirrors them into the registry only when scraped.
        self.slow_ms = slow_ms
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = (
            tracer
            if tracer is not None
            else Tracer(slow_ms=slow_ms, slow_sink=slow_sink)
        )
        self._requests_metric = self.registry.counter(
            "repro_requests_total", "Wire frames handled, by frame type",
            labelnames=("type",),
        )
        self._latency_metric = self.registry.histogram(
            "repro_request_ms", "Query wall-clock latency in milliseconds"
        )
        self._view_bytes_metric = self.registry.histogram(
            "repro_view_bytes",
            "Serialized view bytes per query",
            buckets=BYTE_BUCKETS,
        )
        self.registry.register_collector(self._collect_metrics)

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (resolves ephemeral port 0)."""
        return self.host, self.port

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self._loop = asyncio.get_running_loop()
        self.station.subscribe(self._on_station_update)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.address

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        self.station.unsubscribe(self._on_station_update)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Wind down in-flight connections; their handlers catch the
        # cancellation and run their meter-merging cleanup.
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._tasks.add(task)
        peername = writer.get_extra_info("peername")
        conn = _Connection("%s:%s" % (peername[0], peername[1]) if peername else "?")
        decoder = FrameDecoder(self.max_payload)
        self.server_stats["connections"] += 1
        self.server_stats["active"] += 1
        self._writers[conn] = writer
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    return
                try:
                    frames = decoder.feed(data)
                except ProtocolError as exc:
                    await self._send_error(writer, conn, E_BAD_FRAME, str(exc))
                    return
                for frame in frames:
                    if not await self._dispatch(frame, conn, writer):
                        return
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Deliberate swallow: the server is shutting down and the
            # task must end cleanly (a cancelled client_connected_cb
            # task makes the streams machinery log spurious errors).
            pass
        finally:
            self._tasks.discard(task)
            self._writers.pop(conn, None)
            self.meter.merge(conn.meter)
            self.server_stats["active"] -= 1
            writer.close()

    async def _dispatch(
        self, frame: Frame, conn: _Connection, writer: asyncio.StreamWriter
    ) -> bool:
        """Handle one frame; returns False to close the connection."""
        self._requests_metric.labels(type=frame.type_name).inc()
        if frame.type == BYE:
            return False
        if frame.type == PING:
            # Health probes run before (or without) HELLO by design: a
            # gateway must be able to check liveness and replica
            # version lockstep without spending a session.
            return await self._on_ping(conn, writer)
        if frame.type == HELLO:
            return await self._on_hello(frame, conn, writer)
        if conn.session is None:
            await self._send_error(
                writer, conn, E_PROTOCOL, "first frame must be HELLO"
            )
            return False
        if frame.type == QUERY:
            return await self._on_query(frame, conn, writer)
        if frame.type == UPDATE:
            return await self._on_update(frame, conn, writer)
        if frame.type == FORWARD:
            return await self._on_forward(frame, conn, writer)
        if frame.type == STATS_REQUEST:
            return await self._on_stats(conn, writer)
        await self._send_error(
            writer,
            conn,
            E_PROTOCOL,
            "unexpected %s frame from client" % frame.type_name,
        )
        return False

    # ------------------------------------------------------------------
    async def _on_hello(
        self, frame: Frame, conn: _Connection, writer: asyncio.StreamWriter
    ) -> bool:
        if conn.session is not None:
            await self._send_error(writer, conn, E_PROTOCOL, "duplicate HELLO")
            return False
        try:
            subject = frame.json()["subject"]
        except (ProtocolError, KeyError):
            await self._send_error(
                writer, conn, E_BAD_FRAME, "HELLO payload must carry a subject"
            )
            return False
        conn.gateway = bool(frame.json().get("gateway")) and self.allow_forward
        # The station is internally thread-safe, but connect still runs
        # off-loop: key derivation must never stall frame dispatch.
        loop = asyncio.get_running_loop()
        conn.session = await loop.run_in_executor(
            None, self.station.connect, str(subject)
        )
        welcome = {
            "session": conn.session.session_id,
            "subject": conn.session.subject,
            # The paper delivers session credentials over the secure
            # provisioning channel (Section 2); this toy transport
            # stands in for that channel, so the link key rides along.
            "key": conn.session.session_key.hex(),
            "seal": self.seal,
            # Echo the accepted role so a gateway notices immediately
            # when a backend was not started with allow_forward.
            "gateway": conn.gateway,
            "limits": {
                "max_payload": self.max_payload,
                "max_queries": self.max_queries_per_session,
                "chunk_size": self.chunk_size,
            },
        }
        await self._send(writer, json_frame(WELCOME, conn.session_id, welcome))
        return True

    async def _on_query(
        self, frame: Frame, conn: _Connection, writer: asyncio.StreamWriter
    ) -> bool:
        try:
            body = frame.json()
            document_id = body["document"]
        except (ProtocolError, KeyError):
            await self._send_error(
                writer, conn, E_BAD_FRAME, "QUERY payload must carry a document"
            )
            return False
        query = body.get("query") or None
        conn.queries += 1
        if conn.queries > self.max_queries_per_session:
            await self._send_error(
                writer,
                conn,
                E_LIMIT,
                "session exceeded %d queries" % self.max_queries_per_session,
            )
            return False
        self.server_stats["queries"] += 1
        session = conn.session

        def evaluate(tracer=None, trace=0, parent_span=0):
            return session.stream_view(
                document_id,
                query=query,
                chunk_size=self.chunk_size,
                seal=self.seal,
                tracer=tracer,
                trace=trace,
                parent_span=parent_span,
            )

        return await self._run_query_stream(
            conn, writer, evaluate, {"document": document_id}, trace=frame.trace
        )

    async def _run_query_stream(
        self,
        conn: _Connection,
        writer: asyncio.StreamWriter,
        evaluate,
        extra_trailer: Dict[str, object],
        trace: int = 0,
        ship_spans: bool = False,
    ) -> bool:
        """Shared QUERY/FORWARD-query path: evaluate off-loop, stream
        the chunks, send the RESULT trailer.

        ``evaluate`` is called as ``evaluate(tracer, trace, parent)``
        so the station can hang its pipeline/cache spans under this
        request's root span.  A nonzero ``trace`` (minted by the client
        or gateway, carried in the frame header) makes the RESULT
        trailer echo the id; trace 0 pays for one ``perf_counter`` pair
        and a histogram observe.  The span *tree* rides the trailer
        only when ``ship_spans`` is set (FORWARD hops — the gateway
        needs backend spans to assemble cross-process trees) or when
        the trace finished slow: serializing every tree on the cached
        hot path costs more than the 5% tracing budget, and direct
        clients only consume trees through the slow-query log anyway.
        """
        loop = asyncio.get_running_loop()
        tracer = self.tracer
        started = perf_counter()
        root = None
        deferred = False
        picked_up = started
        if trace:
            root = tracer.start(trace, "backend.query", **extra_trailer)
            # No tree can ride this trailer (direct client, no slow
            # threshold), so span bookkeeping moves past the send —
            # off the response's critical path.  Only the timestamps
            # are captured in-line.
            deferred = not ship_spans and tracer.slow_ms is None

        def run_evaluate():
            if root is None:
                return evaluate()
            # Backend queueing: the wait between frame dispatch and the
            # executor thread actually picking the request up.
            nonlocal picked_up
            picked_up = perf_counter()
            if not deferred:
                tracer.record(trace, "queue", started, picked_up, parent=root.id)
            return evaluate(tracer, trace, root.id)

        try:
            stream = await loop.run_in_executor(None, run_evaluate)
        except StationError as exc:
            if trace:
                tracer.discard(trace)
            message = exc.args[0] if exc.args else str(exc)
            code = E_NO_GRANT if "grant" in message else E_UNKNOWN_DOCUMENT
            await self._send_error(writer, conn, code, message)
            return True  # recoverable: the session may query other documents
        except Exception as exc:
            if trace:
                tracer.discard(trace)
            await self._send_error(writer, conn, E_INTERNAL, str(exc))
            return True

        stream_started = perf_counter()
        sent = await self._stream_chunks(stream, conn, writer)
        if sent is None:
            if trace:
                tracer.discard(trace)
            return False
        chunks, sent_bytes = sent
        conn.meter.merge(stream.result.meter)
        trailer = {
            "chunks": chunks,
            "bytes": stream.payload_bytes,
            "sealed": stream.sealed,
            "seconds": stream.result.seconds,
            # Served from the station's version-keyed view cache?  The
            # simulated seconds above are identical either way (the
            # cost model charges the original evaluation); this flag is
            # what lets clients and the load generator report honest
            # hit rates.
            "cached": bool(stream.result.cache_hit),
            # Which serving path produced the view: "indexed" when the
            # structural index resolved the query to chunk-range plans
            # (or proved it empty), "streamed" for the full pass.  Both
            # paths return byte-identical views; the flag is for
            # operators verifying the accelerator actually engaged.
            "served": "indexed" if stream.result.indexed else "streamed",
            # Stamped by the station atomically with the snapshot this
            # request evaluated — an update landing mid-evaluation
            # leaves the request on the pre-update snapshot *and* the
            # pre-update version; the INVALIDATED push handles re-fetch.
            "version": stream.result.document_version,
            "meter": {
                k: v for k, v in stream.result.meter.as_dict().items() if v
            },
        }
        trailer.update(extra_trailer)
        if root is not None:
            trailer["trace"] = format_trace_id(trace)
            if not deferred:
                tracer.record(
                    trace,
                    "stream",
                    stream_started,
                    perf_counter(),
                    parent=root.id,
                    attrs={"chunks": chunks, "bytes": sent_bytes},
                )
                tracer.finish(
                    root,
                    cached=bool(stream.result.cache_hit),
                    bytes=stream.payload_bytes,
                )
                record = tracer.end_trace(trace, root=root)
                if record is not None and (ship_spans or record.slow):
                    # The finished span tree rides the trailer so the
                    # hop upstream (gateway or client) can graft it
                    # under its own spans — cross-process assembly.
                    trailer["spans"] = record.wire_spans()
        self._latency_metric.observe((perf_counter() - started) * 1000.0)
        self._view_bytes_metric.observe(stream.payload_bytes)
        try:
            await self._send(
                writer, json_frame(RESULT, conn.session_id, trailer, trace=trace)
            )
        finally:
            if deferred:
                ended = perf_counter()
                tracer.record(trace, "queue", started, picked_up, parent=root.id)
                tracer.record(
                    trace,
                    "stream",
                    stream_started,
                    ended,
                    parent=root.id,
                    attrs={"chunks": chunks, "bytes": sent_bytes},
                )
                tracer.finish(
                    root,
                    cached=bool(stream.result.cache_hit),
                    bytes=stream.payload_bytes,
                )
                tracer.end_trace(trace, root=root)
        self.server_stats["chunks_streamed"] += chunks
        self.server_stats["bytes_streamed"] += sent_bytes
        return True

    # ------------------------------------------------------------------
    async def _on_update(
        self, frame: Frame, conn: _Connection, writer: asyncio.StreamWriter
    ) -> bool:
        try:
            body = frame.json()
            document_id = body["document"]
            op = UpdateOp.from_dict(body.get("op") or {})
        except (ProtocolError, KeyError, UpdateError) as exc:
            await self._send_error(
                writer, conn, E_BAD_FRAME, "bad UPDATE frame: %s" % exc
            )
            return False
        return await self._apply_update(
            document_id, op, conn.session.subject, conn, writer, trace=frame.trace
        )

    async def _apply_update(
        self,
        document_id: str,
        op: UpdateOp,
        subject: str,
        conn: _Connection,
        writer: asyncio.StreamWriter,
        trace: int = 0,
        ship_spans: bool = False,
    ) -> bool:
        """Shared UPDATE/FORWARD-update path: grant check, apply, RESULT."""
        root = None
        if trace:
            root = self.tracer.start(
                trace, "backend.update", document=document_id, subject=subject
            )
        if not self.allow_updates:
            if trace:
                self.tracer.discard(trace)
            await self._send_error(
                writer, conn, E_LIMIT, "this server is read-only"
            )
            return True
        try:
            self.station.document_version(document_id)
        except StationError as exc:
            if trace:
                self.tracer.discard(trace)
            message = exc.args[0] if exc.args else str(exc)
            await self._send_error(writer, conn, E_UNKNOWN_DOCUMENT, message)
            return True
        # Writes require at least a read grant on the target document;
        # anything finer-grained (per-subtree write rules) would need
        # its own policy language, but an ungranted subject must never
        # be able to rewrite a document it cannot even read.
        if not self.station.has_grant(document_id, subject):
            if trace:
                self.tracer.discard(trace)
            await self._send_error(
                writer,
                conn,
                E_NO_GRANT,
                "no grant for subject %r on document %r"
                % (subject, document_id),
            )
            return True
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                None, self.station.update, document_id, op
            )
        except StationError as exc:
            if trace:
                self.tracer.discard(trace)
            message = exc.args[0] if exc.args else str(exc)
            await self._send_error(writer, conn, E_UNKNOWN_DOCUMENT, message)
            return True
        except UpdateError as exc:
            if trace:
                self.tracer.discard(trace)
            await self._send_error(writer, conn, E_UPDATE, str(exc))
            return True
        except Exception as exc:
            if trace:
                self.tracer.discard(trace)
            await self._send_error(writer, conn, E_INTERNAL, str(exc))
            return True
        self.server_stats["updates"] += 1
        trailer = {
            "document": document_id,
            "version": result.version,
            "update": result.as_dict(),
        }
        if root is not None:
            self.tracer.finish(
                root,
                version=result.version,
                chunks_reencrypted=result.chunks_reencrypted,
            )
            record = self.tracer.end_trace(trace, root=root)
            if record is not None:
                trailer["trace"] = format_trace_id(trace)
                if ship_spans or record.slow:
                    trailer["spans"] = record.wire_spans()
        await self._send(
            writer, json_frame(RESULT, conn.session_id, trailer, trace=trace)
        )
        return True

    # ------------------------------------------------------------------
    async def _on_forward(
        self, frame: Frame, conn: _Connection, writer: asyncio.StreamWriter
    ) -> bool:
        """Gateway impersonation: run a query/update as another subject.

        Only honored on a connection whose HELLO declared
        ``{"gateway": true}`` against a server started with
        ``allow_forward=True`` — a plain client claiming to be a
        gateway on a non-cluster server gets a protocol error.  The
        response shape is exactly the QUERY/UPDATE one (CHUNK* +
        RESULT), so the gateway can relay frames without translation;
        forwarded views are never link-sealed (the gateway talks to its
        own clients over its own sessions).
        """
        if not conn.gateway:
            await self._send_error(
                writer,
                conn,
                E_PROTOCOL,
                "FORWARD requires a gateway session (allow_forward server)",
            )
            return False
        try:
            body = frame.json()
            kind = body.get("kind", "query")
            subject = str(body["subject"])
            document_id = body["document"]
        except (ProtocolError, KeyError):
            await self._send_error(
                writer,
                conn,
                E_BAD_FRAME,
                "FORWARD payload must carry subject and document",
            )
            return False
        self.server_stats["forwards"] += 1
        if kind == "update":
            try:
                op = UpdateOp.from_dict(body.get("op") or {})
            except UpdateError as exc:
                await self._send_error(
                    writer, conn, E_BAD_FRAME, "bad FORWARD op: %s" % exc
                )
                return False
            return await self._apply_update(
                document_id,
                op,
                subject,
                conn,
                writer,
                trace=frame.trace,
                ship_spans=True,
            )
        if kind != "query":
            await self._send_error(
                writer, conn, E_BAD_FRAME, "unknown FORWARD kind %r" % kind
            )
            return False
        query = body.get("query") or None
        # No per-session query cap on gateway links, deliberately: the
        # gateway multiplexes many end-clients over one authenticated
        # connection, so the cap belongs gateway-side, per end-client.
        self.server_stats["queries"] += 1

        def evaluate(tracer=None, trace=0, parent_span=0):
            # Never link-sealed: the gateway terminates client sessions
            # itself (see the class docstring).
            return self.station.stream(
                document_id,
                subject,
                query=query,
                chunk_size=self.chunk_size,
                tracer=tracer,
                trace=trace,
                parent_span=parent_span,
            )

        return await self._run_query_stream(
            conn,
            writer,
            evaluate,
            {"document": document_id, "subject": subject},
            trace=frame.trace,
            ship_spans=True,
        )

    async def _on_ping(
        self, conn: _Connection, writer: asyncio.StreamWriter
    ) -> bool:
        """Health probe: liveness plus per-document version lockstep."""
        self.server_stats["pings"] += 1
        body = {
            "ok": True,
            "role": "station",
            "documents": self.station.document_versions(),
            "active": self.server_stats["active"],
        }
        await self._send(writer, json_frame(PONG, conn.session_id, body))
        return True

    def _on_station_update(self, document_id: str, version: int) -> None:
        """Station listener (any thread): broadcast INVALIDATED."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return

        def schedule() -> None:
            task = asyncio.ensure_future(
                self._broadcast_invalidated(document_id, version)
            )
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

        try:
            loop.call_soon_threadsafe(schedule)
        except RuntimeError:  # loop already closed mid-shutdown
            pass

    async def _broadcast_invalidated(self, document_id: str, version: int) -> None:
        """Push one INVALIDATED frame to every live connection.

        `write()` without `drain()` by design: the frame is small, the
        transport flushes it on its own, and awaiting drain here could
        interleave with a connection's own writer task.  A frame is
        written atomically (one `write()` call), so it can land between
        the CHUNK frames of an in-flight response but never inside one.
        """
        body = {"document": document_id, "version": version}
        for conn, writer in list(self._writers.items()):
            try:
                writer.write(json_frame(INVALIDATED, conn.session_id, body))
                self.server_stats["invalidations"] += 1
            except Exception:  # connection is on its way down
                pass

    async def _stream_chunks(
        self, stream, conn: _Connection, writer: asyncio.StreamWriter
    ) -> Optional[Tuple[int, int]]:
        """Producer/consumer chunk streaming with a bounded queue.

        Returns ``(chunks, bytes)`` or ``None`` when the connection
        died mid-stream.
        """
        loop = asyncio.get_running_loop()
        # The producer thread blocks on this gate until the writer has
        # flushed earlier chunks: that *is* the backpressure.  A plain
        # threading primitive (not a cross-thread queue.put) so that
        # the abort path below can unblock the producer synchronously
        # — no awaits — and therefore works even when this task is
        # being cancelled by StationServer.stop().
        gate = threading.Semaphore(self.queue_depth)
        aborted = threading.Event()
        queue: "asyncio.Queue" = asyncio.Queue()

        def produce():
            try:
                for chunk in stream.chunks():
                    gate.acquire()
                    if aborted.is_set():
                        return
                    loop.call_soon_threadsafe(queue.put_nowait, chunk)
                loop.call_soon_threadsafe(queue.put_nowait, None)
            except Exception as exc:  # surfaced to the consumer below
                loop.call_soon_threadsafe(queue.put_nowait, exc)

        producer = loop.run_in_executor(None, produce)
        chunks = 0
        sent_bytes = 0
        unflushed = 0
        try:
            while True:
                item = await queue.get()
                if item is None:
                    break
                if isinstance(item, Exception):
                    await self._send_error(writer, conn, E_INTERNAL, str(item))
                    return None
                # writev-style send: header and payload go to the
                # transport as separate buffers (no concatenated frame
                # copy), and drain() runs once per queue_depth frames
                # instead of per frame — the transport coalesces the
                # writes, the gate still bounds what is in flight.
                header, payload = encode_frame_parts(
                    CHUNK,
                    conn.session_id,
                    item,
                    max_payload=self.max_payload,
                )
                writer.write(header)
                if payload:
                    writer.write(payload)
                unflushed += 1
                if unflushed >= self.queue_depth:
                    await writer.drain()
                    unflushed = 0
                chunks += 1
                sent_bytes += len(item)
                gate.release()
            if unflushed:
                await writer.drain()
            await producer  # near-instant: the sentinel was just put
        except (ConnectionResetError, BrokenPipeError):
            return None
        finally:
            # Early exit (client gone, error, cancellation): unpark a
            # producer waiting on the gate so its thread can observe
            # `aborted` and finish — no executor threads leak.
            aborted.set()
            gate.release()
        return chunks, sent_bytes

    async def _on_stats(
        self, conn: _Connection, writer: asyncio.StreamWriter
    ) -> bool:
        # Merge the live (not-yet-closed) connection's meter into the
        # snapshot so STATS reflects the caller's own traffic too.
        merged = self.meter.snapshot()
        merged.merge(conn.meter)
        body = {
            "station": self.station.stats.as_dict(),
            "cached_plans": self.station.cached_plans(),
            "cached_views": self.station.cached_views(),
            "server": dict(self.server_stats),
            "meter": {k: v for k, v in merged.as_dict().items() if v},
            # Compute-backend health on the wire (not just station-
            # local): pool fallbacks and native-kernel availability are
            # how a gateway or `repro top` spots silent serial
            # degradation on one node.
            "backend": self.station.backend.describe(),
            # Storage-layer health: page-cache hit rate, log growth and
            # recovery counters of the station's chunk store (a memory
            # store reports just its kind and byte footprint).
            "store": self.station.store.describe(),
            "observability": dict(
                self.tracer.stats(), slow_log=self.tracer.slow_records()
            ),
        }
        await self._send(writer, json_frame(STATS, conn.session_id, body))
        return True

    def _collect_metrics(self, registry: MetricsRegistry) -> None:
        """Pull-time mirror of the ad-hoc counters into the registry.

        Runs only when someone scrapes ``/metrics`` (or snapshots the
        registry), so the serving hot path never pays for it.
        """
        station_stats = self.station.stats.as_dict()
        for key, value in station_stats.items():
            registry.gauge("repro_station_" + key).set(value)
        # The structural-index counters again under their own prefix,
        # so dashboards can select the accelerator family in one match.
        for key, value in station_stats.items():
            if key.startswith("index_") or key in (
                "indexed_requests",
                "streamed_requests",
            ):
                registry.gauge("repro_index_" + key).set(value)
        for key, value in self.server_stats.items():
            registry.gauge("repro_server_" + key).set(value)
        for key, value in self.meter.as_dict().items():
            registry.gauge("repro_meter_" + key).set(value)
        registry.gauge("repro_cached_views").set(self.station.cached_views())
        registry.gauge("repro_cached_plans").set(self.station.cached_plans())
        store = self.station.store.describe()
        for key in (
            "documents",
            "page_hits",
            "page_misses",
            "bytes_read",
            "bytes_written",
            "log_bytes",
            "live_bytes",
            "manifest_replays",
            "torn_bytes_dropped",
            "orphan_records_dropped",
            "commits",
            "compactions",
            "cache_used_bytes",
            "cache_budget_bytes",
        ):
            if key in store:
                registry.gauge("repro_store_" + key).set(int(store[key]))
        registry.gauge("repro_store_persistent").set(
            1 if store.get("persistent") else 0
        )
        backend = self.station.backend.describe()
        registry.gauge("repro_backend_fallbacks").set(
            int(backend.get("fallbacks") or 0)
        )
        registry.gauge("repro_backend_batches").set(
            int(backend.get("batches") or 0)
        )
        registry.gauge("repro_native_kernels").set(
            1 if backend.get("native_kernels") else 0
        )
        trace_stats = self.tracer.stats()
        registry.gauge("repro_traces_finished").set(trace_stats["finished"])
        registry.gauge("repro_slow_queries").set(trace_stats["slow_queries"])

    # ------------------------------------------------------------------
    async def _send(self, writer: asyncio.StreamWriter, data: bytes) -> None:
        writer.write(data)
        await writer.drain()

    async def _send_error(
        self,
        writer: asyncio.StreamWriter,
        conn: _Connection,
        code: str,
        message: str,
    ) -> None:
        self.server_stats["errors"] += 1
        try:
            await self._send(
                writer,
                json_frame(
                    ERROR,
                    conn.session_id,
                    {"code": code, "message": message},
                ),
            )
        except (ConnectionResetError, BrokenPipeError):
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "StationServer(%s:%d, %d active)" % (
            self.host,
            self.port,
            self.server_stats["active"],
        )


class ServerThread:
    """Run a :class:`StationServer` on a private loop in a daemon thread.

    The blocking client SDK, the load generator and the tests all need
    a live server without owning an event loop themselves; this is the
    bridge.  ``start()`` blocks until the port is bound and returns the
    address; ``stop()`` shuts the loop down and joins the thread.
    """

    def __init__(self, server: StationServer):
        self.server = server
        self.error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopping: Optional[asyncio.Event] = None

    def start(self, timeout: float = 10.0) -> Tuple[str, int]:
        started = threading.Event()

        def run():
            try:
                asyncio.run(self._main(started))
            except BaseException as exc:  # noqa: BLE001 - reported to starter
                self.error = exc
            finally:
                started.set()

        self._thread = threading.Thread(
            target=run, name="repro-station-server", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout):
            raise RuntimeError("station server did not start in %.1fs" % timeout)
        if self.error is not None:
            raise RuntimeError("station server failed to start") from self.error
        return self.server.address

    async def _main(self, started: threading.Event) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        await self.server.start()
        started.set()
        await self._stopping.wait()
        await self.server.stop()

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._stopping is not None:
            self._loop.call_soon_threadsafe(self._stopping.set)
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


# ----------------------------------------------------------------------
# Bootstrap: a ready-to-serve hospital station
# ----------------------------------------------------------------------
def hospital_station(
    folders: int = 3,
    seed: int = 7,
    context: str = "smartcard",
    use_skip_index: bool = True,
    groups: int = 3,
    backend=None,
    store=None,
    index: bool = False,
) -> Tuple[SecureStation, List[str]]:
    """A station serving the Fig. 1 hospital document under the three
    paper profiles; returns ``(station, granted subjects)``.

    Shared by ``repro serve``, the load generator's defaults, the
    server benchmark and the end-to-end tests, so they all agree on
    document id (``"hospital"``) and subjects.

    With a persistent ``store`` (see :mod:`repro.store`) that already
    holds ``"hospital"`` — a restarted station — the document is served
    as recovered from the log at its pre-restart version instead of
    being re-generated; grants are derived state and are always
    re-applied.
    """
    from repro.datasets.hospital import (
        GROUPS,
        HospitalConfig,
        doctor_policy,
        generate_hospital,
        researcher_policy,
        secretary_policy,
    )

    config = HospitalConfig(
        folders=folders,
        doctors=4,
        acts_per_folder=3,
        labresults_per_folder=2,
        seed=seed,
    )
    from repro.engine import PublishOptions, StationConfig

    station = SecureStation(
        StationConfig(
            context=context,
            use_skip_index=use_skip_index,
            backend=backend,
            store=store,
        )
    )
    if "hospital" not in station.store:
        tree = generate_hospital(config)
        station.publish("hospital", tree, PublishOptions(index=index))
    doctor = config.doctor_names()[0]
    policies = [
        secretary_policy(),
        doctor_policy(doctor),
        researcher_policy(GROUPS[:groups]),
    ]
    for policy in policies:
        station.grant("hospital", policy)
    return station, [policy.subject for policy in policies]
