"""Network layer: server <-> terminal <-> SOE over a real socket.

The paper's deployment (Section 2) separates the untrusted server
holding the encrypted document from the terminal/SOE pair rendering
authorized views; PR 1's :class:`~repro.engine.station.SecureStation`
exercised that split in-process only.  This package puts a wire on the
boundary:

* :mod:`repro.server.protocol` — the length-prefixed binary frame
  format (HELLO / WELCOME / QUERY / CHUNK / RESULT / ERROR / STATS /
  UPDATE / INVALIDATED), with an incremental decoder shared by both
  ends;
* :mod:`repro.server.service` — :class:`StationServer`, an asyncio TCP
  server wrapping a station: concurrent clients, executor-offloaded
  evaluation, bounded-queue chunk streaming, per-session limits and a
  STATS endpoint; :class:`ServerThread` runs it from blocking code;
* :mod:`repro.server.client` — :class:`RemoteSession`, the blocking
  SDK mirroring the in-process evaluate API;
* :mod:`repro.server.loadgen` — N clients x M queries, real
  throughput / latency percentiles, ``BENCH_server.json``.

Layering: ``repro.server`` sits beside the applications, *above* the
engine; nothing below imports it.
"""

from repro.server.client import RemoteError, RemoteResult, RemoteSession
from repro.server.protocol import Frame, FrameDecoder, ProtocolError
from repro.server.service import ServerThread, StationServer, hospital_station

__all__ = [
    "Frame",
    "FrameDecoder",
    "ProtocolError",
    "StationServer",
    "ServerThread",
    "hospital_station",
    "RemoteSession",
    "RemoteResult",
    "RemoteError",
]
