"""The station wire protocol: length-prefixed binary frames.

The deployment of Section 2 puts a network between the server that
stores the encrypted document and the terminal/SOE pair that renders
authorized views.  This module defines the one wire format both ends
speak — a fixed 11-byte header followed by an opaque payload::

    +-------+---------+------+------------+----------------+---------+
    | MAGIC | VERSION | TYPE | SESSION ID | PAYLOAD LENGTH | PAYLOAD |
    |  1 B  |   1 B   | 1 B  |  4 B (BE)  |    4 B (BE)    |  0..N B |
    +-------+---------+------+------------+----------------+---------+

Protocol **version 2** extends the header with a 64-bit trace id for
request tracing (``repro.obs``) — 8 extra bytes between PAYLOAD LENGTH
and PAYLOAD::

    +-------+-----------+------+------------+----------------+------------+---------+
    | MAGIC | VERSION=2 | TYPE | SESSION ID | PAYLOAD LENGTH |  TRACE ID  | PAYLOAD |
    |  1 B  |    1 B    | 1 B  |  4 B (BE)  |    4 B (BE)    |  8 B (BE)  |  0..N B |
    +-------+-----------+------+------------+----------------+------------+---------+

The bump is backward compatible in both directions that matter:
encoders emit a version-1 header whenever the trace id is 0 (untraced
traffic is byte-identical to the old protocol, so new senders
interoperate with old peers), and the decoder accepts version-1 and
version-2 frames interleaved on the same stream.

Control payloads (HELLO, WELCOME, QUERY, RESULT, ERROR, STATS,
UPDATE, INVALIDATED, and the cluster frames FORWARD, TOPOLOGY,
REBALANCE, PING/PONG) are UTF-8 JSON objects; CHUNK payloads are raw
bytes of the serialized authorized view (optionally sealed under the
session link key).  INVALIDATED is the one server-*push* frame: it may
arrive at any point in the stream (even between the CHUNKs of another
request) and announces that a document changed version, so clients
must treat it out-of-band.  The
:class:`FrameDecoder` is incremental — feed it arbitrary byte slices
from a socket or an asyncio reader and it yields complete frames —
so the same code serves the blocking client SDK and the asyncio
server.  Every malformed input (bad magic/version, unknown type,
oversized payload) raises :class:`ProtocolError` rather than
desynchronizing the stream.
"""

from __future__ import annotations

import json
import struct
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

MAGIC = 0xC5
VERSION = 1
#: Header version carrying a 64-bit trace id (request tracing).
TRACE_VERSION = 2

_HEADER = struct.Struct("!BBBII")
_TRACE = struct.Struct("!Q")
HEADER_SIZE = _HEADER.size  # 11 bytes (version 1)
TRACE_HEADER_SIZE = HEADER_SIZE + _TRACE.size  # 19 bytes (version 2)
MAX_TRACE_ID = (1 << 64) - 1

#: Hard ceiling on one frame's payload; both sides enforce it so a
#: corrupt or hostile length field cannot force an 4 GiB allocation.
DEFAULT_MAX_PAYLOAD = 1 << 20

# Frame types ----------------------------------------------------------
HELLO = 0x01  # client -> server: {"subject": ...}
WELCOME = 0x02  # server -> client: {"session": ..., "key": ..., "limits": ...}
QUERY = 0x03  # client -> server: {"document": ..., "query": ...}
CHUNK = 0x04  # server -> client: raw view bytes (one bounded slice)
RESULT = 0x05  # server -> client: end-of-stream trailer (counts, seconds)
ERROR = 0x06  # server -> client: {"code": ..., "message": ...}
STATS_REQUEST = 0x07  # client -> server: {}
STATS = 0x08  # server -> client: {"station": ..., "server": ..., "meter": ...}
BYE = 0x09  # client -> server: graceful close
UPDATE = 0x0A  # client -> server: {"document": ..., "op": {...}}
INVALIDATED = 0x0B  # server -> client (push): {"document": ..., "version": ...}
# Cluster frames (repro.cluster).  FORWARD is the gateway -> backend
# impersonation frame: a backend honors it only on a connection whose
# HELLO declared {"gateway": true} (and the server was started with
# allow_forward).  TOPOLOGY/REBALANCE are gateway control frames; PING/
# PONG is the health probe every server answers, even before HELLO.
FORWARD = 0x0C  # gateway -> backend: {"kind": "query"|"update", "subject": ...}
TOPOLOGY_REQUEST = 0x0D  # client -> gateway: {}
TOPOLOGY = 0x0E  # gateway -> client: {"backends": ..., "documents": ...}
REBALANCE = 0x0F  # admin -> gateway: {"action": "join"|"leave", "name": ...}
PING = 0x10  # any -> server: {}
PONG = 0x11  # server -> any: {"ok": ..., "documents": {id: version}, ...}

TYPE_NAMES = {
    HELLO: "HELLO",
    WELCOME: "WELCOME",
    QUERY: "QUERY",
    CHUNK: "CHUNK",
    RESULT: "RESULT",
    ERROR: "ERROR",
    STATS_REQUEST: "STATS_REQUEST",
    STATS: "STATS",
    BYE: "BYE",
    UPDATE: "UPDATE",
    INVALIDATED: "INVALIDATED",
    FORWARD: "FORWARD",
    TOPOLOGY_REQUEST: "TOPOLOGY_REQUEST",
    TOPOLOGY: "TOPOLOGY",
    REBALANCE: "REBALANCE",
    PING: "PING",
    PONG: "PONG",
}


class ProtocolError(ValueError):
    """Malformed frame: bad magic/version, unknown type, bad length."""


class Frame:
    """One decoded frame: ``(type, session, payload)`` plus ``trace``.

    ``payload`` may be ``bytes`` *or* a read-only ``memoryview`` into
    the decoder's fed buffers (the zero-copy path for CHUNK payloads).
    Equality, hashing and :meth:`json` treat both identically; callers
    that must outlive the frame (or concatenate) should ``bytes()`` it.
    ``trace`` is the 64-bit request trace id (0 for untraced /
    version-1 frames).
    """

    __slots__ = ("type", "session", "payload", "trace")

    def __init__(
        self,
        ftype: int,
        session: int,
        payload: Union[bytes, memoryview] = b"",
        trace: int = 0,
    ):
        self.type = ftype
        self.session = session
        self.payload = payload
        self.trace = trace

    @property
    def type_name(self) -> str:
        return TYPE_NAMES.get(self.type, "0x%02x" % self.type)

    def json(self) -> Dict[str, Any]:
        """Decode the payload as a JSON object."""
        try:
            obj = json.loads(bytes(self.payload).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(
                "%s payload is not valid JSON: %s" % (self.type_name, exc)
            )
        if not isinstance(obj, dict):
            raise ProtocolError(
                "%s payload must be a JSON object" % self.type_name
            )
        return obj

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Frame)
            and self.type == other.type
            and self.session == other.session
            and self.payload == other.payload
            and self.trace == other.trace
        )

    def __hash__(self) -> int:
        return hash((self.type, self.session, self.payload, self.trace))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Frame(%s, session=%d, %d bytes)" % (
            self.type_name,
            self.session,
            len(self.payload),
        )


def encode_frame_parts(
    ftype: int,
    session: int,
    payload: Union[bytes, memoryview] = b"",
    max_payload: int = DEFAULT_MAX_PAYLOAD,
    trace: int = 0,
) -> Tuple[bytes, Union[bytes, memoryview]]:
    """Header and payload as separate buffers (the writev-style form).

    A sender that calls ``write(header); write(payload)`` never copies
    the payload into a concatenated frame — with memoryview payloads
    the view bytes go from the source buffer straight to the socket.
    Validation is identical to :func:`encode_frame`.

    ``trace`` 0 emits a version-1 header (byte-identical to the
    pre-tracing protocol); a nonzero trace id emits a version-2 header
    carrying it.
    """
    if ftype not in TYPE_NAMES:
        raise ProtocolError("unknown frame type 0x%02x" % ftype)
    if not 0 <= session <= 0xFFFFFFFF:
        raise ProtocolError("session id %d out of range" % session)
    if not 0 <= trace <= MAX_TRACE_ID:
        raise ProtocolError("trace id %d out of range" % trace)
    if len(payload) > max_payload:
        raise ProtocolError(
            "payload of %d bytes exceeds the %d-byte frame limit"
            % (len(payload), max_payload)
        )
    if trace:
        header = _HEADER.pack(
            MAGIC, TRACE_VERSION, ftype, session, len(payload)
        ) + _TRACE.pack(trace)
    else:
        header = _HEADER.pack(MAGIC, VERSION, ftype, session, len(payload))
    return header, payload


def encode_frame(
    ftype: int,
    session: int,
    payload: Union[bytes, memoryview] = b"",
    max_payload: int = DEFAULT_MAX_PAYLOAD,
    trace: int = 0,
) -> bytes:
    """Serialize one frame; validates type and payload size."""
    header, payload = encode_frame_parts(
        ftype, session, payload, max_payload=max_payload, trace=trace
    )
    if not isinstance(payload, bytes):
        payload = bytes(payload)
    return header + payload


def json_frame(
    ftype: int,
    session: int,
    obj: Dict[str, Any],
    max_payload: int = DEFAULT_MAX_PAYLOAD,
    trace: int = 0,
) -> bytes:
    """Serialize a control frame whose payload is a JSON object."""
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    return encode_frame(ftype, session, payload, max_payload=max_payload, trace=trace)


class FrameDecoder:
    """Incremental frame parser over an unframed byte stream.

    ``feed()`` accepts any slice of bytes (a partial header, ten frames
    at once …) and returns the frames completed by it; partial input is
    buffered until the rest arrives.  Validation happens as soon as the
    header is complete, so an oversized length field is rejected before
    any payload is buffered.

    The buffer is **zero-copy**: fed slices are kept as-is in a deque
    (never concatenated into a growing bytearray), headers are unpacked
    in place, and a payload fully contained in one fed slice is handed
    out as a ``memoryview`` into it — the common case on the serving
    path, where one socket read carries one CHUNK frame.  Only a
    payload *spanning* fed slices is joined (one copy, unavoidable).
    A memoryview payload pins its source slice until the caller drops
    the frame; ``bytes(frame.payload)`` detaches it.
    """

    def __init__(self, max_payload: int = DEFAULT_MAX_PAYLOAD):
        self.max_payload = max_payload
        self._chunks: Deque[bytes] = deque()
        self._offset = 0  # consumed prefix of _chunks[0]
        self._pending = 0  # unconsumed bytes across all chunks
        self._dead: Optional[ProtocolError] = None

    def feed(self, data: bytes) -> List[Frame]:
        if self._dead is not None:
            raise self._dead
        if data:
            if not isinstance(data, bytes):
                data = bytes(data)  # keep fed slices immutable
            self._chunks.append(data)
            self._pending += len(data)
        frames: List[Frame] = []
        while True:
            frame = self._next_frame()
            if frame is None:
                return frames
            frames.append(frame)

    def _next_frame(self) -> Optional[Frame]:
        if self._pending < HEADER_SIZE:
            return None
        magic, version, ftype, session, length = _HEADER.unpack(
            self._peek(HEADER_SIZE)
        )
        if magic != MAGIC:
            raise self._fail("bad magic byte 0x%02x" % magic)
        if version not in (VERSION, TRACE_VERSION):
            raise self._fail("unsupported protocol version %d" % version)
        if ftype not in TYPE_NAMES:
            raise self._fail("unknown frame type 0x%02x" % ftype)
        if length > self.max_payload:
            raise self._fail(
                "declared payload of %d bytes exceeds the %d-byte frame limit"
                % (length, self.max_payload)
            )
        header_size = HEADER_SIZE
        trace = 0
        if version == TRACE_VERSION:
            header_size = TRACE_HEADER_SIZE
            if self._pending < header_size:
                return None
            (trace,) = _TRACE.unpack(
                self._peek(header_size)[HEADER_SIZE:header_size]
            )
        if self._pending < header_size + length:
            return None
        self._consume(header_size)
        return Frame(ftype, session, self._take(length), trace=trace)

    def _peek(self, size: int) -> bytes:
        """The next ``size`` buffered bytes, without consuming them.

        Fast path: the head slice covers the request and is returned as
        an in-place ``memoryview`` (``struct.unpack`` accepts it); a
        header spanning fed slices (rare, at most 18 joined bytes) is
        joined into a copy.
        """
        head = self._chunks[0]
        if len(head) - self._offset >= size:
            return memoryview(head)[self._offset : self._offset + size]
        parts = bytearray()
        offset = self._offset
        for chunk in self._chunks:
            take = min(len(chunk) - offset, size - len(parts))
            parts += chunk[offset : offset + take]
            offset = 0
            if len(parts) == size:
                break
        return bytes(parts)

    def _consume(self, size: int) -> None:
        """Advance past ``size`` already-counted bytes."""
        self._pending -= size
        while size:
            head = self._chunks[0]
            available = len(head) - self._offset
            if available > size:
                self._offset += size
                return
            size -= available
            self._chunks.popleft()
            self._offset = 0

    def _take(self, length: int) -> Union[bytes, memoryview]:
        """Consume and return the next ``length`` payload bytes."""
        if length == 0:
            return b""
        head = self._chunks[0]
        if len(head) - self._offset >= length:
            payload = memoryview(head)[self._offset : self._offset + length]
            self._consume(length)
            return payload
        parts = bytearray()
        offset = self._offset
        for chunk in self._chunks:
            take = min(len(chunk) - offset, length - len(parts))
            parts += memoryview(chunk)[offset : offset + take]
            offset = 0
            if len(parts) == length:
                break
        self._consume(length)
        return bytes(parts)

    def _fail(self, message: str) -> ProtocolError:
        # A framing error is unrecoverable: there is no way to find the
        # next frame boundary, so the decoder latches the error.
        self._dead = ProtocolError(message)
        return self._dead

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return self._pending
