"""Concurrent load generator for the station server.

Drives N blocking :class:`~repro.server.client.RemoteSession` clients
from N threads, each issuing M queries, and reports real wall-clock
service quality — throughput (requests/s), latency percentiles
(p50/p95/p99) and error counts — next to the *simulated* SOE seconds
the cost model accounts per view.  The report lands in
``BENCH_server.json`` (same convention as ``BENCH_engine.json``).

Run it against any live server::

    python -m repro.server.loadgen 127.0.0.1:8471 --clients 8 --queries 5

or via the CLI: ``repro loadgen 127.0.0.1:8471 ...``.
"""

from __future__ import annotations

import argparse
import json
import math
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.server.client import RemoteError, RemoteSession

#: Subjects granted by :func:`repro.server.service.hospital_station`.
DEFAULT_SUBJECTS = ("secretary", "doctor0", "researcher")
DEFAULT_DOCUMENT = "hospital"


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (q in [0, 100]).

    The smallest sample such that at least ``q`` percent of the data is
    less than or equal to it: ``ordered[ceil(q/100 * n) - 1]``.  The
    previous linear interpolation invented latencies no request ever
    had and, at small sample counts (clients x queries < 100), reported
    a "p99" *below* the worst observed request; nearest-rank degrades
    honestly — with 5 samples, p99 is the maximum.
    """
    if not 0 <= q <= 100:
        raise ValueError("percentile q must be in [0, 100], got %r" % (q,))
    if not values:
        return 0.0
    ordered = sorted(values)
    if q == 0:
        return ordered[0]
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[min(rank, len(ordered)) - 1]


class _Worker(threading.Thread):
    """One client: a session issuing ``queries`` sequential requests."""

    def __init__(
        self,
        host: str,
        port: int,
        subject: str,
        document: str,
        queries: int,
        query: Optional[str],
        connect_retry: float,
        barrier: threading.Barrier,
    ):
        super().__init__(daemon=True)
        self.args = (host, port, subject, document, queries, query)
        self.connect_retry = connect_retry
        self.barrier = barrier
        self.latencies: List[float] = []
        self.bytes_received = 0
        self.simulated_seconds = 0.0
        self.errors: List[str] = []

    def run(self) -> None:
        host, port, subject, document, queries, query = self.args
        try:
            session = RemoteSession(
                host, port, subject, connect_retry=self.connect_retry
            )
        except Exception as exc:  # noqa: BLE001 - anything must be reported
            self.errors.append("connect: %s" % exc)
            try:
                self.barrier.wait(timeout=30)
            except threading.BrokenBarrierError:
                pass
            return
        with session:
            # Start all workers' query phases together so concurrency
            # is real, not an artifact of staggered connects.
            try:
                self.barrier.wait(timeout=30)
            except threading.BrokenBarrierError:
                pass
            for _ in range(queries):
                start = time.perf_counter()
                try:
                    result = session.evaluate(document, query=query)
                except RemoteError as exc:
                    self.errors.append(str(exc))
                    continue
                except Exception as exc:  # noqa: BLE001 - a dead thread
                    # would silently under-run the benchmark; record
                    # the failure and stop this worker instead.
                    self.errors.append("fatal: %s" % exc)
                    return
                self.latencies.append(time.perf_counter() - start)
                self.bytes_received += result.result_bytes
                self.simulated_seconds += result.seconds


def run_load(
    host: str,
    port: int,
    clients: int = 8,
    queries: int = 5,
    document: str = DEFAULT_DOCUMENT,
    subjects: Sequence[str] = DEFAULT_SUBJECTS,
    query: Optional[str] = None,
    connect_retry: float = 10.0,
) -> Dict[str, Any]:
    """N clients x M queries against ``host:port``; returns the report."""
    barrier = threading.Barrier(clients)
    workers = [
        _Worker(
            host,
            port,
            subjects[index % len(subjects)],
            document,
            queries,
            query,
            connect_retry,
            barrier,
        )
        for index in range(clients)
    ]
    start = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - start

    latencies = [lat for worker in workers for lat in worker.latencies]
    errors = [err for worker in workers for err in worker.errors]
    requests = len(latencies)
    return {
        "bench": "server_load",
        "address": "%s:%d" % (host, port),
        "clients": clients,
        "queries_per_client": queries,
        "document": document,
        "subjects": list(subjects),
        "requests": requests,
        "errors": len(errors),
        "error_samples": errors[:5],
        "elapsed_seconds": round(elapsed, 4),
        "throughput_rps": round(requests / elapsed, 2) if elapsed else 0.0,
        "bytes_received": sum(worker.bytes_received for worker in workers),
        "simulated_soe_seconds": round(
            sum(worker.simulated_seconds for worker in workers), 4
        ),
        "latency_ms": {
            "p50": round(percentile(latencies, 50) * 1000, 3),
            "p95": round(percentile(latencies, 95) * 1000, 3),
            "p99": round(percentile(latencies, 99) * 1000, 3),
            "mean": round(
                sum(latencies) / requests * 1000 if requests else 0.0, 3
            ),
            "max": round(max(latencies) * 1000 if latencies else 0.0, 3),
        },
    }


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")


def parse_address(text: str) -> Tuple[str, int]:
    host, _sep, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            "address must look like HOST:PORT, got %r" % text
        )
    return host, int(port)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.server.loadgen",
        description="concurrent load generator for the station server",
    )
    parser.add_argument("address", type=parse_address, help="HOST:PORT")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--queries", type=int, default=5, help="per client")
    parser.add_argument("--document", default=DEFAULT_DOCUMENT)
    parser.add_argument(
        "--subject",
        action="append",
        dest="subjects",
        help="subject(s) to cycle clients through (repeatable)",
    )
    parser.add_argument("--query", help="optional XPath query")
    parser.add_argument(
        "--output", default="BENCH_server.json", help="report path"
    )
    parser.add_argument(
        "--connect-retry",
        type=float,
        default=10.0,
        help="seconds to keep retrying the initial connect",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    host, port = args.address
    report = run_load(
        host,
        port,
        clients=args.clients,
        queries=args.queries,
        document=args.document,
        subjects=tuple(args.subjects) if args.subjects else DEFAULT_SUBJECTS,
        query=args.query,
        connect_retry=args.connect_retry,
    )
    write_report(report, args.output)
    print(
        "%(requests)d requests from %(clients)d clients in "
        "%(elapsed_seconds).2fs -> %(throughput_rps).1f req/s, "
        % report
        + "p50 %.1f ms, p95 %.1f ms, %d errors (report: %s)"
        % (
            report["latency_ms"]["p50"],
            report["latency_ms"]["p95"],
            report["errors"],
            args.output,
        )
    )
    expected = args.clients * args.queries
    return 0 if report["errors"] == 0 and report["requests"] == expected else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
