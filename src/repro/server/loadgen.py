"""Concurrent load generator for the station server.

Drives N blocking :class:`~repro.server.client.RemoteSession` clients
from N threads, each issuing M queries, and reports real wall-clock
service quality — throughput (requests/s), latency percentiles
(p50/p95/p99) and error counts — next to the *simulated* SOE seconds
the cost model accounts per view.  The report lands in
``BENCH_server.json`` (same convention as ``BENCH_engine.json``).

Two workload shapes:

* the default hammers one ``(subject, query)`` pair per client — the
  repeated-query regime the station's view cache is built for;
* ``--mix`` draws every request from a *weighted set* of (subject,
  query) pairs and reports latency percentiles and cache-hit counts
  **per query class**, so cache-hit-rate numbers are honest: a mixed
  report shows exactly which classes were served hot and which cold.

Run it against any live server::

    python -m repro.server.loadgen 127.0.0.1:8471 --clients 8 --queries 5
    python -m repro.server.loadgen 127.0.0.1:8471 --mix "secretary:4" \\
        --mix "doctor0:2://Folder[//Age > 60]" --mix "researcher:1"

or via the CLI: ``repro loadgen 127.0.0.1:8471 ...``.

``--cluster N`` needs no address: it boots an in-process
:func:`~repro.cluster.topology.hospital_cluster` (N backends, R
replicas, K documents spread over distinct primaries by consistent
hash), drives the load *through the gateway*, and augments the report
with per-backend request counts and latency percentiles — the
throughput/p95 **skew** across backends is the honest measure of how
well the hash ring spreads the documents.  ``--kill-one`` is the
failover drill: once a third of the requests have been served, the
primary of the first document is killed mid-run; the run must still
finish with zero failed requests (the gateway retries on replicas)::

    python -m repro.server.loadgen --cluster 3 --replicas 2 --clients 4 \\
        --queries 8 --kill-one --output BENCH_cluster.json
"""

from __future__ import annotations

import argparse
import json
import random
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.metrics import percentile
from repro.obs.trace import new_trace_id
from repro.server.client import RemoteError, RemoteSession

#: Subjects granted by :func:`repro.server.service.hospital_station`.
DEFAULT_SUBJECTS = ("secretary", "doctor0", "researcher")
DEFAULT_DOCUMENT = "hospital"

#: One weighted workload class: (subject, query or None, weight).
MixPair = Tuple[str, Optional[str], float]

__all__ = [
    "percentile",  # canonical home: repro.metrics (re-exported for API
    # stability — the PR 3 nearest-rank switch documented it here)
    "run_load",
    "run_cluster_load",
    "write_report",
    "parse_address",
    "parse_mix_spec",
    "class_label",
]


def class_label(subject: str, query: Optional[str]) -> str:
    """Stable per-class key for the mixed-workload report."""
    return "%s|%s" % (subject, query or "-")


def parse_mix_spec(text: str) -> MixPair:
    """Parse one ``subject[:weight[:query]]`` spec.

    The query may contain colons of its own — only the first two are
    separators.
    """
    parts = text.split(":", 2)
    subject = parts[0].strip()
    if not subject:
        raise argparse.ArgumentTypeError("mix spec needs a subject: %r" % text)
    weight = 1.0
    if len(parts) > 1 and parts[1].strip():
        try:
            weight = float(parts[1])
        except ValueError:
            raise argparse.ArgumentTypeError(
                "mix weight must be a number, got %r" % parts[1]
            )
        if weight <= 0:
            raise argparse.ArgumentTypeError("mix weight must be > 0")
    query = parts[2].strip() if len(parts) > 2 and parts[2].strip() else None
    return subject, query, weight


class _Worker(threading.Thread):
    """One client thread.

    In plain mode it opens one session as its assigned subject and
    hammers a single (document, query) pair.  In mixed mode it opens
    one session per distinct subject in the mix and draws every request
    from the weighted pair set (seeded per worker, so runs are
    reproducible).
    """

    def __init__(
        self,
        host: str,
        port: int,
        subject: str,
        document: str,
        queries: int,
        query: Optional[str],
        connect_retry: float,
        barrier: threading.Barrier,
        mix: Optional[Sequence[MixPair]] = None,
        seed: int = 0,
        documents: Optional[Sequence[str]] = None,
        auto_reconnect: bool = False,
        trace: bool = False,
    ):
        super().__init__(daemon=True)
        self.args = (host, port, subject, document, queries, query)
        self.connect_retry = connect_retry
        self.barrier = barrier
        self.mix = list(mix) if mix else None
        #: Multi-document pool (cluster runs): each request draws its
        #: target document uniformly, exercising every shard.
        self.documents = list(documents) if documents else None
        self.auto_reconnect = auto_reconnect
        #: Stamp every request with a trace id minted from the worker's
        #: seeded RNG — the ids a ``--seed`` run emits are reproducible.
        self.trace = trace
        self.rng = random.Random(seed)
        self.latencies: List[float] = []
        #: Parallel to ``latencies``: (class label, served-from-cache).
        self.classes: List[Tuple[str, bool]] = []
        self.bytes_received = 0
        self.simulated_seconds = 0.0
        self.cached_hits = 0
        self.traced_requests = 0
        self.errors: List[str] = []

    def _connect_sessions(
        self, host: str, port: int, subject: str
    ) -> Dict[str, RemoteSession]:
        subjects = (
            sorted({pair[0] for pair in self.mix}) if self.mix else [subject]
        )
        sessions: Dict[str, RemoteSession] = {}
        for name in subjects:
            sessions[name] = RemoteSession(
                host,
                port,
                name,
                connect_retry=self.connect_retry,
                auto_reconnect=self.auto_reconnect,
            )
        return sessions

    def run(self) -> None:
        host, port, subject, document, queries, query = self.args
        try:
            sessions = self._connect_sessions(host, port, subject)
        except Exception as exc:  # noqa: BLE001 - anything must be reported
            self.errors.append("connect: %s" % exc)
            try:
                self.barrier.wait(timeout=30)
            except threading.BrokenBarrierError:
                pass
            return
        try:
            # Start all workers' query phases together so concurrency
            # is real, not an artifact of staggered connects.
            try:
                self.barrier.wait(timeout=30)
            except threading.BrokenBarrierError:
                pass
            if self.mix:
                pairs = self.mix
                weights = [pair[2] for pair in pairs]
            for _ in range(queries):
                if self.mix:
                    pick_subject, pick_query, _w = self.rng.choices(
                        pairs, weights=weights
                    )[0]
                else:
                    pick_subject, pick_query = subject, query
                if self.documents:
                    pick_document = self.rng.choice(self.documents)
                else:
                    pick_document = document
                session = sessions[pick_subject]
                trace_id = new_trace_id(self.rng) if self.trace else 0
                if trace_id:
                    self.traced_requests += 1
                start = time.perf_counter()
                try:
                    result = session.evaluate(
                        pick_document, query=pick_query, trace=trace_id
                    )
                except RemoteError as exc:
                    self.errors.append(str(exc))
                    continue
                except Exception as exc:  # noqa: BLE001 - a dead thread
                    # would silently under-run the benchmark; record
                    # the failure and stop this worker instead.
                    self.errors.append("fatal: %s" % exc)
                    return
                self.latencies.append(time.perf_counter() - start)
                self.classes.append(
                    (class_label(pick_subject, pick_query), result.cached)
                )
                if result.cached:
                    self.cached_hits += 1
                self.bytes_received += result.result_bytes
                self.simulated_seconds += result.seconds
        finally:
            for session in sessions.values():
                session.close()


def _poll_observability(host: str, port: int, subject: str) -> Dict[str, Any]:
    """One STATS round-trip distilled to the tracer's view of the run:
    how many traces finished and how many landed in the slow-query log
    (the count *and* the retained records are the loadgen's proof that
    tracing was live server-side, not just stamped client-side)."""
    try:
        with RemoteSession(host, port, subject, connect_retry=5.0) as session:
            body = session.stats()
    except Exception:  # noqa: BLE001 - observability must not fail a run
        return {}
    obs = dict(body.get("observability") or {})
    obs["slow_log_hits"] = len(obs.get("slow_log") or [])
    return obs


def _class_report(workers: Sequence[_Worker]) -> Dict[str, Dict[str, Any]]:
    """Per-query-class latency/cache stats of a mixed run."""
    by_class: Dict[str, Dict[str, List]] = {}
    for worker in workers:
        for latency, (label, cached) in zip(worker.latencies, worker.classes):
            entry = by_class.setdefault(label, {"latencies": [], "cached": 0})
            entry["latencies"].append(latency)
            if cached:
                entry["cached"] += 1
    report = {}
    for label, entry in sorted(by_class.items()):
        latencies = entry["latencies"]
        report[label] = {
            "requests": len(latencies),
            "cached": entry["cached"],
            "p50_ms": round(percentile(latencies, 50) * 1000, 3),
            "p95_ms": round(percentile(latencies, 95) * 1000, 3),
            "mean_ms": round(sum(latencies) / len(latencies) * 1000, 3),
        }
    return report


def run_load(
    host: str,
    port: int,
    clients: int = 8,
    queries: int = 5,
    document: str = DEFAULT_DOCUMENT,
    subjects: Sequence[str] = DEFAULT_SUBJECTS,
    query: Optional[str] = None,
    connect_retry: float = 10.0,
    mix: Optional[Sequence[MixPair]] = None,
    seed: int = 0,
    documents: Optional[Sequence[str]] = None,
    auto_reconnect: bool = False,
    backend: Optional[str] = None,
    trace: bool = False,
) -> Dict[str, Any]:
    """N clients x M queries against ``host:port``; returns the report.

    ``backend`` labels the run with the compute backend the server
    under load was started with (``repro serve --backend ...``), so a
    BENCH_server.json archive says which backend produced its numbers.

    ``trace=True`` stamps every request with a trace id minted from
    each worker's seeded RNG (reproducible under ``--seed``) and, after
    the run, polls the server's STATS for its tracer counters and
    slow-query-log hits, which land in the report's ``observability``
    section.

    With ``mix`` (a sequence of ``(subject, query, weight)`` triples)
    every request is drawn from the weighted set and the report gains a
    per-query-class breakdown.  With ``documents`` every request also
    draws its target document uniformly from that pool (the cluster
    regime: distinct documents live on distinct primaries).
    """
    barrier = threading.Barrier(clients)
    workers = [
        _Worker(
            host,
            port,
            subjects[index % len(subjects)],
            document,
            queries,
            query,
            connect_retry,
            barrier,
            mix=mix,
            seed=seed * 10_007 + index,
            documents=documents,
            auto_reconnect=auto_reconnect,
            trace=trace,
        )
        for index in range(clients)
    ]
    start = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - start

    latencies = [lat for worker in workers for lat in worker.latencies]
    errors = [err for worker in workers for err in worker.errors]
    requests = len(latencies)
    report = {
        "bench": "server_load",
        "address": "%s:%d" % (host, port),
        "clients": clients,
        "queries_per_client": queries,
        "document": document,
        "subjects": list(subjects),
        "requests": requests,
        "errors": len(errors),
        "error_samples": errors[:5],
        "elapsed_seconds": round(elapsed, 4),
        "throughput_rps": round(requests / elapsed, 2) if elapsed else 0.0,
        "bytes_received": sum(worker.bytes_received for worker in workers),
        "cached_hits": sum(worker.cached_hits for worker in workers),
        "simulated_soe_seconds": round(
            sum(worker.simulated_seconds for worker in workers), 4
        ),
        "latency_ms": {
            "p50": round(percentile(latencies, 50) * 1000, 3),
            "p95": round(percentile(latencies, 95) * 1000, 3),
            "p99": round(percentile(latencies, 99) * 1000, 3),
            "mean": round(
                sum(latencies) / requests * 1000 if requests else 0.0, 3
            ),
            "max": round(max(latencies) * 1000 if latencies else 0.0, 3),
        },
    }
    if backend:
        report["backend"] = backend
    if trace:
        report["traced_requests"] = sum(
            worker.traced_requests for worker in workers
        )
        report["observability"] = _poll_observability(
            host, port, subjects[0] if subjects else DEFAULT_SUBJECTS[0]
        )
    if documents:
        report["documents"] = list(documents)
    if mix:
        report["mix"] = [
            {"subject": s, "query": q, "weight": w} for s, q, w in mix
        ]
        report["classes"] = _class_report(workers)
    return report


def run_cluster_load(
    backends: int = 3,
    replicas: int = 2,
    documents: int = 2,
    clients: int = 4,
    queries: int = 6,
    folders: int = 2,
    subjects: Optional[Sequence[str]] = None,
    query: Optional[str] = None,
    mix: Optional[Sequence[MixPair]] = None,
    seed: int = 0,
    kill_one: bool = False,
    trace: bool = False,
    slow_ms: Optional[float] = None,
) -> Dict[str, Any]:
    """Boot an in-process cluster, drive load through its gateway.

    ``kill_one=True`` is the failover drill: a watcher thread waits
    until a third of the expected requests have been answered, then
    abruptly stops the backend that is primary for the first document
    — mid-run, with queries in flight.  The gateway must absorb the
    loss (retry on a replica, repair placement) without a single
    client-visible failure; the CI smoke step asserts exactly that via
    the zero-errors exit code.

    The report is the ordinary :func:`run_load` one plus a ``cluster``
    section: which backend was killed, the gateway counters (failovers,
    repairs), per-backend request counts and latency percentiles, the
    p95 skew across backends, and the final topology.
    """
    from repro.cluster.topology import hospital_cluster
    from repro.server.client import RemoteSession

    cluster, document_ids, default_subjects = hospital_cluster(
        backends=backends,
        replicas=replicas,
        documents=documents,
        folders=folders,
        slow_ms=slow_ms,
        trace=trace,
    )
    killed: Dict[str, Any] = {}
    done = threading.Event()
    killer: Optional[threading.Thread] = None
    try:
        host, port = cluster.gateway_address
        if kill_one:
            threshold = max(1, clients * queries // 3)

            def kill_primary() -> None:
                gateway = cluster.gateway
                while not done.is_set():
                    if gateway.gateway_stats["queries"] >= threshold:
                        break
                    time.sleep(0.01)
                if done.is_set():
                    return  # run finished before the threshold: no drill
                target = cluster.primary_of(document_ids[0])
                killed["backend"] = target
                killed["after_queries"] = gateway.gateway_stats["queries"]
                cluster.kill_backend(target)

            killer = threading.Thread(target=kill_primary, daemon=True)
            killer.start()
        report = run_load(
            host,
            port,
            clients=clients,
            queries=queries,
            document=document_ids[0],
            subjects=tuple(subjects) if subjects else tuple(default_subjects),
            query=query,
            mix=mix,
            seed=seed,
            documents=document_ids,
            auto_reconnect=True,
            trace=trace,
        )
        done.set()
        if killer is not None:
            killer.join(timeout=10)
        with RemoteSession(host, port, "@admin", connect_retry=5.0) as admin:
            stats = admin.stats()
            topology = admin.topology()
        per_backend = stats.get("per_backend", {})
        p95s = [
            entry["latency_ms"]["p95"]
            for entry in per_backend.values()
            if entry.get("requests")
        ]
        elapsed = report.get("elapsed_seconds") or 0.0
        report["bench"] = "cluster_load"
        report["cluster"] = {
            "backends": backends,
            "replicas": replicas,
            "documents": document_ids,
            "killed_backend": killed.get("backend"),
            "killed_after_queries": killed.get("after_queries"),
            "gateway": stats.get("gateway"),
            "per_backend": {
                name: dict(
                    entry,
                    throughput_rps=round(entry.get("requests", 0) / elapsed, 2)
                    if elapsed
                    else 0.0,
                )
                for name, entry in per_backend.items()
            },
            "p95_skew_ms": round(max(p95s) - min(p95s), 3) if p95s else 0.0,
            "topology": topology.get("documents"),
        }
        return report
    finally:
        done.set()
        cluster.stop()


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")


def parse_address(text: str) -> Tuple[str, int]:
    host, _sep, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            "address must look like HOST:PORT, got %r" % text
        )
    return host, int(port)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.server.loadgen",
        description="concurrent load generator for the station server",
    )
    parser.add_argument(
        "address",
        type=parse_address,
        nargs="?",
        help="HOST:PORT (omit with --cluster)",
    )
    parser.add_argument(
        "--cluster",
        type=int,
        metavar="N",
        help="no address needed: boot an in-process N-backend cluster "
        "and drive the load through its gateway",
    )
    parser.add_argument(
        "--replicas", type=int, default=2, help="copies per document (--cluster)"
    )
    parser.add_argument(
        "--cluster-documents",
        type=int,
        default=2,
        help="hospital documents spread over the shards (--cluster)",
    )
    parser.add_argument(
        "--folders",
        type=int,
        default=2,
        help="hospital folders per document (--cluster)",
    )
    parser.add_argument(
        "--kill-one",
        action="store_true",
        help="failover drill: kill the primary of the first document "
        "mid-run (--cluster); the run must still end with 0 errors",
    )
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--queries", type=int, default=5, help="per client")
    parser.add_argument("--document", default=DEFAULT_DOCUMENT)
    parser.add_argument(
        "--subject",
        action="append",
        dest="subjects",
        help="subject(s) to cycle clients through (repeatable)",
    )
    parser.add_argument("--query", help="optional XPath query")
    parser.add_argument(
        "--mix",
        action="append",
        type=parse_mix_spec,
        metavar="SUBJECT[:WEIGHT[:QUERY]]",
        help="mixed workload: draw each request from this weighted set "
        "(repeatable); the report then breaks latency and cache hits "
        "down per query class",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="mixed-workload draw seed"
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="stamp every request with a trace id (minted from the "
        "seeded per-worker RNG, so ids reproduce under --seed) and "
        "report the server's tracer counters + slow-query-log hits",
    )
    parser.add_argument(
        "--slow-ms",
        type=float,
        metavar="MS",
        help="slow-query threshold for the booted cluster's gateway "
        "(--cluster only; a live server sets its own via repro serve)",
    )
    parser.add_argument(
        "--output", default="BENCH_server.json", help="report path"
    )
    parser.add_argument(
        "--connect-retry",
        type=float,
        default=10.0,
        help="seconds to keep retrying the initial connect",
    )
    parser.add_argument(
        "--backend",
        choices=["pure", "native", "pool", "auto"],
        help="compute backend the target server runs (recorded in the "
        "report so archived runs are attributable)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.cluster:
        report = run_cluster_load(
            backends=args.cluster,
            replicas=args.replicas,
            documents=args.cluster_documents,
            clients=args.clients,
            queries=args.queries,
            folders=args.folders,
            subjects=tuple(args.subjects) if args.subjects else None,
            query=args.query,
            mix=args.mix,
            seed=args.seed,
            kill_one=args.kill_one,
            trace=args.trace,
            slow_ms=args.slow_ms,
        )
        if args.backend:
            report["backend"] = args.backend
    else:
        if args.address is None:
            parser.error("an address is required unless --cluster is given")
        host, port = args.address
        report = run_load(
            host,
            port,
            clients=args.clients,
            queries=args.queries,
            document=args.document,
            subjects=tuple(args.subjects) if args.subjects else DEFAULT_SUBJECTS,
            query=args.query,
            connect_retry=args.connect_retry,
            mix=args.mix,
            seed=args.seed,
            backend=args.backend,
            trace=args.trace,
        )
    write_report(report, args.output)
    print(
        "%(requests)d requests from %(clients)d clients in "
        "%(elapsed_seconds).2fs -> %(throughput_rps).1f req/s, "
        % report
        + "p50 %.1f ms, p95 %.1f ms, %d cached, %d errors (report: %s)"
        % (
            report["latency_ms"]["p50"],
            report["latency_ms"]["p95"],
            report["cached_hits"],
            report["errors"],
            args.output,
        )
    )
    if args.trace:
        obs = report.get("observability") or {}
        print(
            "  tracing: %d requests stamped, %s traces finished, "
            "%s slow queries (%s retained in the slow log)"
            % (
                report.get("traced_requests", 0),
                obs.get("finished", "?"),
                obs.get("slow_queries", "?"),
                obs.get("slow_log_hits", 0),
            )
        )
    if args.mix:
        for label, entry in report["classes"].items():
            print(
                "  %-40s %4d requests, %4d cached, p50 %.1f ms, p95 %.1f ms"
                % (
                    label,
                    entry["requests"],
                    entry["cached"],
                    entry["p50_ms"],
                    entry["p95_ms"],
                )
            )
    if args.cluster:
        info = report["cluster"]
        gateway = info.get("gateway") or {}
        print(
            "  cluster: %d backends x R=%d, killed=%s, failovers=%d, "
            "repairs=%d, p95 skew %.1f ms"
            % (
                info["backends"],
                info["replicas"],
                info.get("killed_backend") or "-",
                gateway.get("failovers", 0),
                gateway.get("repairs", 0),
                info.get("p95_skew_ms", 0.0),
            )
        )
        for name, entry in sorted(info["per_backend"].items()):
            print(
                "  %-10s %s %4d requests, %7.2f req/s, p95 %.1f ms"
                % (
                    name,
                    "up  " if entry.get("alive") else "DOWN",
                    entry.get("requests", 0),
                    entry.get("throughput_rps", 0.0),
                    entry.get("latency_ms", {}).get("p95", 0.0),
                )
            )
    expected = args.clients * args.queries
    return 0 if report["errors"] == 0 and report["requests"] == expected else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
