"""Concurrent load generator for the station server.

Drives N blocking :class:`~repro.server.client.RemoteSession` clients
from N threads, each issuing M queries, and reports real wall-clock
service quality — throughput (requests/s), latency percentiles
(p50/p95/p99) and error counts — next to the *simulated* SOE seconds
the cost model accounts per view.  The report lands in
``BENCH_server.json`` (same convention as ``BENCH_engine.json``).

Two workload shapes:

* the default hammers one ``(subject, query)`` pair per client — the
  repeated-query regime the station's view cache is built for;
* ``--mix`` draws every request from a *weighted set* of (subject,
  query) pairs and reports latency percentiles and cache-hit counts
  **per query class**, so cache-hit-rate numbers are honest: a mixed
  report shows exactly which classes were served hot and which cold.

Run it against any live server::

    python -m repro.server.loadgen 127.0.0.1:8471 --clients 8 --queries 5
    python -m repro.server.loadgen 127.0.0.1:8471 --mix "secretary:4" \\
        --mix "doctor0:2://Folder[//Age > 60]" --mix "researcher:1"

or via the CLI: ``repro loadgen 127.0.0.1:8471 ...``.
"""

from __future__ import annotations

import argparse
import json
import math
import random
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.server.client import RemoteError, RemoteSession

#: Subjects granted by :func:`repro.server.service.hospital_station`.
DEFAULT_SUBJECTS = ("secretary", "doctor0", "researcher")
DEFAULT_DOCUMENT = "hospital"

#: One weighted workload class: (subject, query or None, weight).
MixPair = Tuple[str, Optional[str], float]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (q in [0, 100]).

    The smallest sample such that at least ``q`` percent of the data is
    less than or equal to it: ``ordered[ceil(q/100 * n) - 1]``.  The
    previous linear interpolation invented latencies no request ever
    had and, at small sample counts (clients x queries < 100), reported
    a "p99" *below* the worst observed request; nearest-rank degrades
    honestly — with 5 samples, p99 is the maximum.
    """
    if not 0 <= q <= 100:
        raise ValueError("percentile q must be in [0, 100], got %r" % (q,))
    if not values:
        return 0.0
    ordered = sorted(values)
    if q == 0:
        return ordered[0]
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[min(rank, len(ordered)) - 1]


def class_label(subject: str, query: Optional[str]) -> str:
    """Stable per-class key for the mixed-workload report."""
    return "%s|%s" % (subject, query or "-")


def parse_mix_spec(text: str) -> MixPair:
    """Parse one ``subject[:weight[:query]]`` spec.

    The query may contain colons of its own — only the first two are
    separators.
    """
    parts = text.split(":", 2)
    subject = parts[0].strip()
    if not subject:
        raise argparse.ArgumentTypeError("mix spec needs a subject: %r" % text)
    weight = 1.0
    if len(parts) > 1 and parts[1].strip():
        try:
            weight = float(parts[1])
        except ValueError:
            raise argparse.ArgumentTypeError(
                "mix weight must be a number, got %r" % parts[1]
            )
        if weight <= 0:
            raise argparse.ArgumentTypeError("mix weight must be > 0")
    query = parts[2].strip() if len(parts) > 2 and parts[2].strip() else None
    return subject, query, weight


class _Worker(threading.Thread):
    """One client thread.

    In plain mode it opens one session as its assigned subject and
    hammers a single (document, query) pair.  In mixed mode it opens
    one session per distinct subject in the mix and draws every request
    from the weighted pair set (seeded per worker, so runs are
    reproducible).
    """

    def __init__(
        self,
        host: str,
        port: int,
        subject: str,
        document: str,
        queries: int,
        query: Optional[str],
        connect_retry: float,
        barrier: threading.Barrier,
        mix: Optional[Sequence[MixPair]] = None,
        seed: int = 0,
    ):
        super().__init__(daemon=True)
        self.args = (host, port, subject, document, queries, query)
        self.connect_retry = connect_retry
        self.barrier = barrier
        self.mix = list(mix) if mix else None
        self.rng = random.Random(seed)
        self.latencies: List[float] = []
        #: Parallel to ``latencies``: (class label, served-from-cache).
        self.classes: List[Tuple[str, bool]] = []
        self.bytes_received = 0
        self.simulated_seconds = 0.0
        self.cached_hits = 0
        self.errors: List[str] = []

    def _connect_sessions(
        self, host: str, port: int, subject: str
    ) -> Dict[str, RemoteSession]:
        subjects = (
            sorted({pair[0] for pair in self.mix}) if self.mix else [subject]
        )
        sessions: Dict[str, RemoteSession] = {}
        for name in subjects:
            sessions[name] = RemoteSession(
                host, port, name, connect_retry=self.connect_retry
            )
        return sessions

    def run(self) -> None:
        host, port, subject, document, queries, query = self.args
        try:
            sessions = self._connect_sessions(host, port, subject)
        except Exception as exc:  # noqa: BLE001 - anything must be reported
            self.errors.append("connect: %s" % exc)
            try:
                self.barrier.wait(timeout=30)
            except threading.BrokenBarrierError:
                pass
            return
        try:
            # Start all workers' query phases together so concurrency
            # is real, not an artifact of staggered connects.
            try:
                self.barrier.wait(timeout=30)
            except threading.BrokenBarrierError:
                pass
            if self.mix:
                pairs = self.mix
                weights = [pair[2] for pair in pairs]
            for _ in range(queries):
                if self.mix:
                    pick_subject, pick_query, _w = self.rng.choices(
                        pairs, weights=weights
                    )[0]
                else:
                    pick_subject, pick_query = subject, query
                session = sessions[pick_subject]
                start = time.perf_counter()
                try:
                    result = session.evaluate(document, query=pick_query)
                except RemoteError as exc:
                    self.errors.append(str(exc))
                    continue
                except Exception as exc:  # noqa: BLE001 - a dead thread
                    # would silently under-run the benchmark; record
                    # the failure and stop this worker instead.
                    self.errors.append("fatal: %s" % exc)
                    return
                self.latencies.append(time.perf_counter() - start)
                self.classes.append(
                    (class_label(pick_subject, pick_query), result.cached)
                )
                if result.cached:
                    self.cached_hits += 1
                self.bytes_received += result.result_bytes
                self.simulated_seconds += result.seconds
        finally:
            for session in sessions.values():
                session.close()


def _class_report(workers: Sequence[_Worker]) -> Dict[str, Dict[str, Any]]:
    """Per-query-class latency/cache stats of a mixed run."""
    by_class: Dict[str, Dict[str, List]] = {}
    for worker in workers:
        for latency, (label, cached) in zip(worker.latencies, worker.classes):
            entry = by_class.setdefault(label, {"latencies": [], "cached": 0})
            entry["latencies"].append(latency)
            if cached:
                entry["cached"] += 1
    report = {}
    for label, entry in sorted(by_class.items()):
        latencies = entry["latencies"]
        report[label] = {
            "requests": len(latencies),
            "cached": entry["cached"],
            "p50_ms": round(percentile(latencies, 50) * 1000, 3),
            "p95_ms": round(percentile(latencies, 95) * 1000, 3),
            "mean_ms": round(sum(latencies) / len(latencies) * 1000, 3),
        }
    return report


def run_load(
    host: str,
    port: int,
    clients: int = 8,
    queries: int = 5,
    document: str = DEFAULT_DOCUMENT,
    subjects: Sequence[str] = DEFAULT_SUBJECTS,
    query: Optional[str] = None,
    connect_retry: float = 10.0,
    mix: Optional[Sequence[MixPair]] = None,
    seed: int = 0,
) -> Dict[str, Any]:
    """N clients x M queries against ``host:port``; returns the report.

    With ``mix`` (a sequence of ``(subject, query, weight)`` triples)
    every request is drawn from the weighted set and the report gains a
    per-query-class breakdown.
    """
    barrier = threading.Barrier(clients)
    workers = [
        _Worker(
            host,
            port,
            subjects[index % len(subjects)],
            document,
            queries,
            query,
            connect_retry,
            barrier,
            mix=mix,
            seed=seed * 10_007 + index,
        )
        for index in range(clients)
    ]
    start = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - start

    latencies = [lat for worker in workers for lat in worker.latencies]
    errors = [err for worker in workers for err in worker.errors]
    requests = len(latencies)
    report = {
        "bench": "server_load",
        "address": "%s:%d" % (host, port),
        "clients": clients,
        "queries_per_client": queries,
        "document": document,
        "subjects": list(subjects),
        "requests": requests,
        "errors": len(errors),
        "error_samples": errors[:5],
        "elapsed_seconds": round(elapsed, 4),
        "throughput_rps": round(requests / elapsed, 2) if elapsed else 0.0,
        "bytes_received": sum(worker.bytes_received for worker in workers),
        "cached_hits": sum(worker.cached_hits for worker in workers),
        "simulated_soe_seconds": round(
            sum(worker.simulated_seconds for worker in workers), 4
        ),
        "latency_ms": {
            "p50": round(percentile(latencies, 50) * 1000, 3),
            "p95": round(percentile(latencies, 95) * 1000, 3),
            "p99": round(percentile(latencies, 99) * 1000, 3),
            "mean": round(
                sum(latencies) / requests * 1000 if requests else 0.0, 3
            ),
            "max": round(max(latencies) * 1000 if latencies else 0.0, 3),
        },
    }
    if mix:
        report["mix"] = [
            {"subject": s, "query": q, "weight": w} for s, q, w in mix
        ]
        report["classes"] = _class_report(workers)
    return report


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")


def parse_address(text: str) -> Tuple[str, int]:
    host, _sep, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            "address must look like HOST:PORT, got %r" % text
        )
    return host, int(port)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.server.loadgen",
        description="concurrent load generator for the station server",
    )
    parser.add_argument("address", type=parse_address, help="HOST:PORT")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--queries", type=int, default=5, help="per client")
    parser.add_argument("--document", default=DEFAULT_DOCUMENT)
    parser.add_argument(
        "--subject",
        action="append",
        dest="subjects",
        help="subject(s) to cycle clients through (repeatable)",
    )
    parser.add_argument("--query", help="optional XPath query")
    parser.add_argument(
        "--mix",
        action="append",
        type=parse_mix_spec,
        metavar="SUBJECT[:WEIGHT[:QUERY]]",
        help="mixed workload: draw each request from this weighted set "
        "(repeatable); the report then breaks latency and cache hits "
        "down per query class",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="mixed-workload draw seed"
    )
    parser.add_argument(
        "--output", default="BENCH_server.json", help="report path"
    )
    parser.add_argument(
        "--connect-retry",
        type=float,
        default=10.0,
        help="seconds to keep retrying the initial connect",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    host, port = args.address
    report = run_load(
        host,
        port,
        clients=args.clients,
        queries=args.queries,
        document=args.document,
        subjects=tuple(args.subjects) if args.subjects else DEFAULT_SUBJECTS,
        query=args.query,
        connect_retry=args.connect_retry,
        mix=args.mix,
        seed=args.seed,
    )
    write_report(report, args.output)
    print(
        "%(requests)d requests from %(clients)d clients in "
        "%(elapsed_seconds).2fs -> %(throughput_rps).1f req/s, "
        % report
        + "p50 %.1f ms, p95 %.1f ms, %d cached, %d errors (report: %s)"
        % (
            report["latency_ms"]["p50"],
            report["latency_ms"]["p95"],
            report["cached_hits"],
            report["errors"],
            args.output,
        )
    )
    if args.mix:
        for label, entry in report["classes"].items():
            print(
                "  %-40s %4d requests, %4d cached, p50 %.1f ms, p95 %.1f ms"
                % (
                    label,
                    entry["requests"],
                    entry["cached"],
                    entry["p50_ms"],
                    entry["p95_ms"],
                )
            )
    expected = args.clients * args.queries
    return 0 if report["errors"] == 0 and report["requests"] == expected else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
