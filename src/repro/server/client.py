"""Blocking client SDK for the station server.

:class:`RemoteSession` mirrors the in-process evaluation APIs —
``evaluate(document_id, query)`` like :meth:`SecureStation.evaluate`,
``view()`` like :meth:`StationSession.view` — so code written against
the local station runs unmodified against a live server.  The returned
:class:`RemoteResult` carries the reassembled authorized view (bytes,
text and, lazily, the event stream) plus the server's RESULT trailer
(simulated seconds, meter counts).

Plain ``socket`` + the shared :class:`~repro.server.protocol
.FrameDecoder`; no asyncio on this side, by design — the SDK must be
trivially usable from tests, benchmark threads and the CLI.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.station import open_sealed
from repro.server import protocol
from repro.server.protocol import (
    BYE,
    CHUNK,
    ERROR,
    HELLO,
    INVALIDATED,
    QUERY,
    RESULT,
    STATS,
    STATS_REQUEST,
    UPDATE,
    WELCOME,
    Frame,
    FrameDecoder,
    ProtocolError,
    json_frame,
)


class RemoteError(RuntimeError):
    """A structured ERROR frame from the server."""

    def __init__(self, code: str, message: str):
        super().__init__("%s: %s" % (code, message))
        self.code = code
        self.message = message


class RemoteResult:
    """One remote authorized view + the server's cost trailer."""

    def __init__(self, data: bytes, trailer: Dict[str, Any]):
        self.data = data
        self.trailer = trailer

    @property
    def text(self) -> str:
        return self.data.decode("utf-8")

    @property
    def events(self):
        """The view as an event stream (lazily re-parsed from the text).

        Note synthetic ``<@attr>`` elements do not round-trip through
        XML text (see :func:`repro.xmlkit.serializer.serialize_events`);
        compare ``data`` bytes when exactness matters.
        """
        if not self.data:
            return []
        from repro.xmlkit.parser import parse_document

        return list(parse_document(self.text).iter_events())

    @property
    def seconds(self) -> float:
        """Simulated SOE seconds, as accounted by the server."""
        return float(self.trailer.get("seconds", 0.0))

    @property
    def meter(self) -> Dict[str, int]:
        return dict(self.trailer.get("meter", {}))

    @property
    def cached(self) -> bool:
        """Was this view served from the station's view cache?  (The
        simulated :attr:`seconds` are identical either way.)"""
        return bool(self.trailer.get("cached"))

    @property
    def chunks(self) -> int:
        return int(self.trailer.get("chunks", 0))

    @property
    def result_bytes(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "RemoteResult(%d bytes, %d chunks, %.3fs simulated)" % (
            len(self.data),
            self.chunks,
            self.seconds,
        )


class RemoteSession:
    """One authenticated connection to a :class:`StationServer`.

    Parameters
    ----------
    host, port:
        Server address.
    subject:
        The subject to bind (HELLO); grants are looked up server-side.
    timeout:
        Socket timeout for each receive, seconds.
    connect_retry:
        Keep retrying the initial TCP connect for this many seconds —
        lets clients race a server that is still binding (CI).
    cache_views:
        Keep each ``(document, query)`` view client-side and serve
        repeats from the cache.  The server's INVALIDATED push (sent
        after every live document update) drops the affected entries,
        so the next :meth:`evaluate` re-fetches transparently — callers
        never see stale data, they just see a cheaper round-trip while
        the document is unchanged.  Off by default: benchmarks and the
        load generator must measure real server work.
    """

    def __init__(
        self,
        host: str,
        port: int,
        subject: str,
        timeout: float = 30.0,
        connect_retry: float = 0.0,
        cache_views: bool = False,
    ):
        self.host = host
        self.port = port
        self.subject = subject
        self._timeout = timeout
        self._sock = self._connect((host, port), timeout, connect_retry)
        self._sock.settimeout(timeout)
        self._decoder = FrameDecoder()
        self._pending: List[Frame] = []
        self._closed = False
        self._cache_views = cache_views
        self._cache: Dict[Tuple[str, Optional[str]], "RemoteResult"] = {}
        #: Latest known version per document (RESULT trailers and
        #: INVALIDATED pushes both feed it).
        self.document_versions: Dict[str, int] = {}
        #: Count of INVALIDATED pushes processed (observability/tests).
        self.invalidations_seen = 0

        self._send(json_frame(HELLO, 0, {"subject": subject}))
        welcome = self._expect(WELCOME).json()
        self.session_id: int = welcome["session"]
        self.session_key: bytes = bytes.fromhex(welcome.get("key", ""))
        self.sealed: bool = bool(welcome.get("seal"))
        self.limits: Dict[str, int] = dict(welcome.get("limits", {}))
        # Adopt the server's negotiated frame limit so a server
        # configured above the protocol default doesn't latch our
        # decoder dead on its first big CHUNK.
        negotiated = self.limits.get("max_payload")
        if negotiated:
            self._decoder.max_payload = int(negotiated)

    @staticmethod
    def _connect(
        address: Tuple[str, int], timeout: float, connect_retry: float
    ) -> socket.socket:
        deadline = time.monotonic() + connect_retry
        while True:
            try:
                return socket.create_connection(address, timeout=timeout)
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    # ------------------------------------------------------------------
    def evaluate(
        self,
        document_id: str,
        query: Optional[str] = None,
        fresh: bool = False,
    ) -> RemoteResult:
        """The authorized view of ``document_id`` for this subject.

        Mirrors :meth:`SecureStation.evaluate` /
        :meth:`StationSession.view`; raises :class:`RemoteError` on a
        structured server error.  With ``cache_views`` enabled an
        unchanged document is served from the client cache (pending
        INVALIDATED pushes are drained first, so a cached entry is
        only served when no newer version has been announced);
        ``fresh=True`` forces the round-trip.
        """
        key = (document_id, query)
        if self._cache_views and not fresh:
            self.poll_notifications()
            cached = self._cache.get(key)
            if cached is not None:
                return cached
        self._send(
            json_frame(
                QUERY,
                self.session_id,
                {"document": document_id, "query": query},
            )
        )
        parts: List[bytes] = []
        while True:
            frame = self._recv()
            if frame.type == CHUNK:
                chunk = frame.payload
                if self.sealed:
                    chunk = open_sealed(self.session_key, chunk)
                parts.append(chunk)
            elif frame.type == RESULT:
                result = RemoteResult(b"".join(parts), frame.json())
                version = result.trailer.get("version")
                if version is not None:
                    self._note_version(document_id, int(version))
                if self._cache_views and not self._is_stale(document_id, version):
                    self._cache[key] = result
                return result
            elif frame.type == ERROR:
                raise self._error(frame)
            else:
                raise ProtocolError(
                    "unexpected %s frame during a query" % frame.type_name
                )

    #: Alias mirroring :meth:`StationSession.view`.
    view = evaluate

    def update(self, document_id: str, op) -> Dict[str, Any]:
        """Apply a live edit server-side (an UPDATE round-trip).

        ``op`` is an :class:`~repro.skipindex.updates.UpdateOp` or its
        ``as_dict()`` form.  Returns the server's RESULT trailer
        (new version, chunks re-encrypted, dirtied ratio, ...).
        """
        body = op.as_dict() if hasattr(op, "as_dict") else dict(op)
        self._send(
            json_frame(
                UPDATE,
                self.session_id,
                {"document": document_id, "op": body},
            )
        )
        trailer = self._expect(RESULT).json()
        version = trailer.get("version")
        if version is not None:
            self._note_version(document_id, int(version))
        return trailer

    def stats(self) -> Dict[str, Any]:
        """Station + server operational counters (a STATS round-trip)."""
        self._send(json_frame(STATS_REQUEST, self.session_id, {}))
        frame = self._expect(STATS)
        return frame.json()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._send(protocol.encode_frame(BYE, self.session_id))
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def poll_notifications(self) -> int:
        """Drain any already-arrived server pushes without blocking.

        INVALIDATED frames can land on the socket while the client is
        not inside a call; this processes whatever is buffered (kernel
        + decoder) and returns the number of invalidations handled.
        """
        before = self.invalidations_seen
        self._sock.setblocking(False)
        try:
            while True:
                data = self._sock.recv(65536)
                if not data:
                    break  # server closed; surfaced by the next call
                self._pending.extend(self._decoder.feed(data))
        except (BlockingIOError, InterruptedError, socket.timeout):
            pass
        finally:
            self._sock.settimeout(self._timeout)
        self._pending = [
            frame for frame in self._pending if not self._consume_push(frame)
        ]
        return self.invalidations_seen - before

    def _consume_push(self, frame: Frame) -> bool:
        """Handle a server-push frame; True when it was consumed."""
        if frame.type != INVALIDATED:
            return False
        try:
            body = frame.json()
            document_id = body["document"]
            version = int(body["version"])
        except (ProtocolError, KeyError, TypeError, ValueError):
            return True  # malformed push: drop rather than desync a call
        self.invalidations_seen += 1
        self._note_version(document_id, version)
        return True

    def _note_version(self, document_id: str, version: int) -> None:
        known = self.document_versions.get(document_id)
        if known is None or version > known:
            self.document_versions[document_id] = version
            for key in [k for k in self._cache if k[0] == document_id]:
                del self._cache[key]

    def _is_stale(self, document_id: str, version) -> bool:
        """Is a result at ``version`` already superseded?

        An INVALIDATED push consumed *mid-query* can announce a newer
        version than the RESULT being assembled (the server evaluated
        the pre-update snapshot); caching that result would serve stale
        data forever, since no further push for that version will come.
        """
        if version is None:
            return False
        known = self.document_versions.get(document_id)
        return known is not None and int(version) < known

    def _send(self, data: bytes) -> None:
        self._sock.sendall(data)

    def _recv(self) -> Frame:
        while True:
            while not self._pending:
                data = self._sock.recv(65536)
                if not data:
                    raise ConnectionError("server closed the connection")
                self._pending.extend(self._decoder.feed(data))
            frame = self._pending.pop(0)
            # Server pushes are out-of-band: consume them here so every
            # caller (mid-query or not) sees only its own frames.
            if not self._consume_push(frame):
                return frame

    def _expect(self, ftype: int) -> Frame:
        frame = self._recv()
        if frame.type == ERROR:
            raise self._error(frame)
        if frame.type != ftype:
            raise ProtocolError(
                "expected %s, got %s"
                % (protocol.TYPE_NAMES[ftype], frame.type_name)
            )
        return frame

    @staticmethod
    def _error(frame: Frame) -> RemoteError:
        try:
            body = frame.json()
        except ProtocolError:
            body = {}
        return RemoteError(
            body.get("code", "unknown"), body.get("message", "server error")
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "RemoteSession(%s@%s:%d, #%d)" % (
            self.subject,
            self.host,
            self.port,
            getattr(self, "session_id", 0),
        )
