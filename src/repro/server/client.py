"""Blocking client SDK for the station server.

:class:`RemoteSession` mirrors the in-process evaluation APIs —
``evaluate(document_id, query)`` like :meth:`SecureStation.evaluate`,
``view()`` like :meth:`StationSession.view` — so code written against
the local station runs unmodified against a live server.  The returned
:class:`RemoteResult` carries the reassembled authorized view (bytes,
text and, lazily, the event stream) plus the server's RESULT trailer
(simulated seconds, meter counts).

Plain ``socket`` + the shared :class:`~repro.server.protocol
.FrameDecoder`; no asyncio on this side, by design — the SDK must be
trivially usable from tests, benchmark threads and the CLI.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.station import open_sealed
from repro.obs.trace import new_trace_id
from repro.server import protocol
from repro.server.protocol import (
    BYE,
    CHUNK,
    ERROR,
    HELLO,
    INVALIDATED,
    PING,
    PONG,
    QUERY,
    REBALANCE,
    RESULT,
    STATS,
    STATS_REQUEST,
    TOPOLOGY,
    TOPOLOGY_REQUEST,
    UPDATE,
    WELCOME,
    Frame,
    FrameDecoder,
    ProtocolError,
    json_frame,
)


class RemoteError(RuntimeError):
    """A structured ERROR frame from the server."""

    def __init__(self, code: str, message: str):
        super().__init__("%s: %s" % (code, message))
        self.code = code
        self.message = message


class RemoteResult:
    """One remote authorized view + the server's cost trailer."""

    def __init__(self, data: bytes, trailer: Dict[str, Any]):
        self.data = data
        self.trailer = trailer

    @property
    def text(self) -> str:
        return self.data.decode("utf-8")

    @property
    def events(self):
        """The view as an event stream (lazily re-parsed from the text).

        Note synthetic ``<@attr>`` elements do not round-trip through
        XML text (see :func:`repro.xmlkit.serializer.serialize_events`);
        compare ``data`` bytes when exactness matters.
        """
        if not self.data:
            return []
        from repro.xmlkit.parser import parse_document

        return list(parse_document(self.text).iter_events())

    @property
    def seconds(self) -> float:
        """Simulated SOE seconds, as accounted by the server."""
        return float(self.trailer.get("seconds", 0.0))

    @property
    def meter(self) -> Dict[str, int]:
        return dict(self.trailer.get("meter", {}))

    @property
    def cached(self) -> bool:
        """Was this view served from the station's view cache?  (The
        simulated :attr:`seconds` are identical either way.)"""
        return bool(self.trailer.get("cached"))

    @property
    def chunks(self) -> int:
        return int(self.trailer.get("chunks", 0))

    @property
    def served(self) -> str:
        """How the station produced the view: ``"indexed"`` when a
        structural chunk-range plan drove the decryption, otherwise
        ``"streamed"`` (older servers omit the field; assume streamed)."""
        return str(self.trailer.get("served", "streamed"))

    @property
    def trace_id(self) -> str:
        """Hex trace id echoed by the server ("" when untraced)."""
        return str(self.trailer.get("trace", ""))

    @property
    def spans(self) -> List[Dict[str, Any]]:
        """The server-side span tree for this request (traced only).

        The trailer carries spans in a compact wire form; this expands
        them to ``{"name", "id", "parent", "start_ms", ...}`` dicts.
        """
        from repro.obs.trace import spans_from_wire

        return spans_from_wire(self.trailer.get("spans"))

    @property
    def result_bytes(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "RemoteResult(%d bytes, %d chunks, %.3fs simulated)" % (
            len(self.data),
            self.chunks,
            self.seconds,
        )


class RemoteSession:
    """One authenticated connection to a :class:`StationServer`.

    Parameters
    ----------
    host, port:
        Server address.
    subject:
        The subject to bind (HELLO); grants are looked up server-side.
    timeout:
        Socket timeout for each receive, seconds.
    connect_retry:
        Keep retrying the initial TCP connect for this many seconds —
        lets clients race a server that is still binding (CI).
    cache_views:
        Keep each ``(document, query)`` view client-side and serve
        repeats from the cache.  The server's INVALIDATED push (sent
        after every live document update) drops the affected entries,
        so the next :meth:`evaluate` re-fetches transparently — callers
        never see stale data, they just see a cheaper round-trip while
        the document is unchanged.  Off by default: benchmarks and the
        load generator must measure real server work.
    trace:
        Stamp every request with a freshly minted 64-bit trace id
        (carried in the frame header, echoed in the RESULT trailer
        together with the server-side span tree).  Individual calls
        may also pass an explicit ``trace=`` id — e.g. one minted from
        a seeded RNG by the load generator — which wins over the
        session default.  A transparent reconnect retry reuses the
        *same* id, so one logical request stays one trace even when it
        hops backends mid-flight.
    auto_reconnect:
        Re-dial and re-HELLO transparently when the connection drops,
        then retry the interrupted call once from scratch.  The public
        API is unchanged — callers still see plain ``evaluate`` /
        ``update`` / ``stats`` — which is exactly what a session
        pointed at a cluster gateway wants: a gateway restart (or a
        transient network blip) costs one extra round-trip instead of
        a dead session.  A reconnect opens a *new* server session
        (fresh session id and link key); known document versions and
        the client view cache carry over, so staleness tracking
        survives the hop.  Off by default: tests asserting connection
        errors — and anything counting sessions — must opt in.
    """

    def __init__(
        self,
        host: str,
        port: int,
        subject: str,
        timeout: float = 30.0,
        connect_retry: float = 0.0,
        cache_views: bool = False,
        auto_reconnect: bool = False,
        trace: bool = False,
    ):
        self.host = host
        self.port = port
        self.subject = subject
        self._timeout = timeout
        self._connect_retry = connect_retry
        self._closed = False
        self._cache_views = cache_views
        self._auto_reconnect = auto_reconnect
        self._trace = trace
        self._cache: Dict[Tuple[str, Optional[str]], "RemoteResult"] = {}
        #: Latest known version per document (RESULT trailers and
        #: INVALIDATED pushes both feed it).
        self.document_versions: Dict[str, int] = {}
        #: Count of INVALIDATED pushes processed (observability/tests).
        self.invalidations_seen = 0
        #: Count of transparent reconnects performed (observability).
        self.reconnects = 0
        self._dial(connect_retry)

    def _dial(self, connect_retry: float) -> None:
        """(Re)establish the socket and the HELLO/WELCOME handshake."""
        self._sock = self._connect(
            (self.host, self.port), self._timeout, connect_retry
        )
        self._sock.settimeout(self._timeout)
        self._decoder = FrameDecoder()
        self._pending: List[Frame] = []
        self._send(json_frame(HELLO, 0, {"subject": self.subject}))
        welcome = self._expect(WELCOME).json()
        self.session_id: int = welcome["session"]
        self.session_key: bytes = bytes.fromhex(welcome.get("key", ""))
        self.sealed: bool = bool(welcome.get("seal"))
        self.limits: Dict[str, int] = dict(welcome.get("limits", {}))
        # Adopt the server's negotiated frame limit so a server
        # configured above the protocol default doesn't latch our
        # decoder dead on its first big CHUNK.
        negotiated = self.limits.get("max_payload")
        if negotiated:
            self._decoder.max_payload = int(negotiated)

    def _reconnect(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass
        # Always allow a grace window on reconnect: the server may be
        # mid-restart even when the initial connect needed no retry.
        self._dial(max(self._connect_retry, 2.0))
        self.reconnects += 1

    def _with_reconnect(self, call):
        """Run ``call()``; on a dropped connection, reconnect and retry
        once.  Retrying from scratch is safe for every request type:
        queries and stats are idempotent, and an update whose RESULT
        never arrived cannot have been applied (the server writes the
        trailer only after the swap) — except when the drop races the
        trailer itself, which is the usual at-least-once caveat and is
        documented on :meth:`update`."""
        try:
            return call()
        except (ConnectionError, OSError) as exc:
            # A receive *timeout* is not a dropped connection: the
            # server may still be working on the request (a big update
            # mid-apply), and re-sending it would duplicate the work.
            # Only genuinely broken links are retried.
            if isinstance(exc, socket.timeout):
                raise
            if not self._auto_reconnect or self._closed:
                raise
            try:
                self._reconnect()
            except OSError:
                raise exc
            return call()

    @staticmethod
    def _connect(
        address: Tuple[str, int], timeout: float, connect_retry: float
    ) -> socket.socket:
        deadline = time.monotonic() + connect_retry
        while True:
            try:
                return socket.create_connection(address, timeout=timeout)
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    def _trace_id(self, trace: int) -> int:
        """Resolve a per-call trace id: explicit id wins, else mint one
        when session-level tracing is on, else 0 (untraced)."""
        if trace:
            return int(trace)
        return new_trace_id() if self._trace else 0

    # ------------------------------------------------------------------
    def evaluate(
        self,
        document_id: str,
        query: Optional[str] = None,
        fresh: bool = False,
        trace: int = 0,
    ) -> RemoteResult:
        """The authorized view of ``document_id`` for this subject.

        Mirrors :meth:`SecureStation.evaluate` /
        :meth:`StationSession.view`; raises :class:`RemoteError` on a
        structured server error.  With ``cache_views`` enabled an
        unchanged document is served from the client cache (pending
        INVALIDATED pushes are drained first, so a cached entry is
        only served when no newer version has been announced);
        ``fresh=True`` forces the round-trip.
        """
        key = (document_id, query)
        if self._cache_views and not fresh:
            self.poll_notifications()
            cached = self._cache.get(key)
            if cached is not None:
                return cached
        trace = self._trace_id(trace)
        return self._with_reconnect(
            lambda: self._evaluate_once(document_id, query, key, trace)
        )

    def _evaluate_once(
        self, document_id: str, query: Optional[str], key, trace: int = 0
    ) -> RemoteResult:
        self._send(
            json_frame(
                QUERY,
                self.session_id,
                {"document": document_id, "query": query},
                trace=trace,
            )
        )
        parts: List[bytes] = []
        while True:
            frame = self._recv()
            if frame.type == CHUNK:
                chunk = frame.payload
                if self.sealed:
                    chunk = open_sealed(self.session_key, chunk)
                parts.append(chunk)
            elif frame.type == RESULT:
                result = RemoteResult(b"".join(parts), frame.json())
                version = result.trailer.get("version")
                if version is not None:
                    self._note_version(document_id, int(version))
                if self._cache_views and not self._is_stale(document_id, version):
                    self._cache[key] = result
                return result
            elif frame.type == ERROR:
                raise self._error(frame)
            else:
                raise ProtocolError(
                    "unexpected %s frame during a query" % frame.type_name
                )

    #: Alias mirroring :meth:`StationSession.view`.
    view = evaluate

    def update(self, document_id: str, op, trace: int = 0) -> Dict[str, Any]:
        """Apply a live edit server-side (an UPDATE round-trip).

        ``op`` is an :class:`~repro.skipindex.updates.UpdateOp` or its
        ``as_dict()`` form.  Returns the server's RESULT trailer
        (new version, chunks re-encrypted, dirtied ratio, ...).

        With ``auto_reconnect`` the retry semantics are at-least-once:
        a connection lost exactly between the server applying the edit
        and the trailer arriving leads to a second application.  Every
        op kind is either idempotent (update-text, rename) or visibly
        duplicated (insert), so callers needing exactly-once should
        verify the version trailer.
        """
        body = op.as_dict() if hasattr(op, "as_dict") else dict(op)
        trace = self._trace_id(trace)
        return self._with_reconnect(
            lambda: self._update_once(document_id, body, trace)
        )

    def _update_once(
        self, document_id: str, body: Dict[str, Any], trace: int = 0
    ) -> Dict[str, Any]:
        self._send(
            json_frame(
                UPDATE,
                self.session_id,
                {"document": document_id, "op": body},
                trace=trace,
            )
        )
        trailer = self._expect(RESULT).json()
        version = trailer.get("version")
        if version is not None:
            self._note_version(document_id, int(version))
        return trailer

    def stats(self) -> Dict[str, Any]:
        """Station + server operational counters (a STATS round-trip).

        Against a cluster gateway this is the *aggregated* report:
        summed station/server counters plus a ``per_backend`` map with
        per-node request counts, latency percentiles and liveness.
        """

        def call() -> Dict[str, Any]:
            self._send(json_frame(STATS_REQUEST, self.session_id, {}))
            return self._expect(STATS).json()

        return self._with_reconnect(call)

    def ping(self) -> Dict[str, Any]:
        """Health probe (PING/PONG): liveness + document versions."""

        def call() -> Dict[str, Any]:
            self._send(json_frame(PING, self.session_id, {}))
            return self._expect(PONG).json()

        return self._with_reconnect(call)

    def topology(self) -> Dict[str, Any]:
        """Cluster topology (gateway only): backends, ring, placement."""

        def call() -> Dict[str, Any]:
            self._send(json_frame(TOPOLOGY_REQUEST, self.session_id, {}))
            return self._expect(TOPOLOGY).json()

        return self._with_reconnect(call)

    def rebalance(
        self, action: str, name: str, address: Optional[Tuple[str, int]] = None
    ) -> Dict[str, Any]:
        """Gateway admin: ``join``/``leave`` a backend on the hash ring.

        Returns the gateway's RESULT trailer (documents re-placed).
        """
        body: Dict[str, Any] = {"action": action, "name": name}
        if address is not None:
            body["host"], body["port"] = address[0], int(address[1])

        def call() -> Dict[str, Any]:
            self._send(json_frame(REBALANCE, self.session_id, body))
            return self._expect(RESULT).json()

        return self._with_reconnect(call)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._send(protocol.encode_frame(BYE, self.session_id))
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def poll_notifications(self) -> int:
        """Drain any already-arrived server pushes without blocking.

        INVALIDATED frames can land on the socket while the client is
        not inside a call; this processes whatever is buffered (kernel
        + decoder) and returns the number of invalidations handled.
        """
        before = self.invalidations_seen
        self._sock.setblocking(False)
        try:
            while True:
                data = self._sock.recv(65536)
                if not data:
                    break  # server closed; surfaced by the next call
                self._pending.extend(self._decoder.feed(data))
        except (BlockingIOError, InterruptedError, socket.timeout):
            pass
        finally:
            self._sock.settimeout(self._timeout)
        self._pending = [
            frame for frame in self._pending if not self._consume_push(frame)
        ]
        return self.invalidations_seen - before

    def _consume_push(self, frame: Frame) -> bool:
        """Handle a server-push frame; True when it was consumed."""
        if frame.type != INVALIDATED:
            return False
        try:
            body = frame.json()
            document_id = body["document"]
            version = int(body["version"])
        except (ProtocolError, KeyError, TypeError, ValueError):
            return True  # malformed push: drop rather than desync a call
        self.invalidations_seen += 1
        self._note_version(document_id, version)
        return True

    def _note_version(self, document_id: str, version: int) -> None:
        known = self.document_versions.get(document_id)
        if known is None or version > known:
            self.document_versions[document_id] = version
            for key in [k for k in self._cache if k[0] == document_id]:
                del self._cache[key]

    def _is_stale(self, document_id: str, version) -> bool:
        """Is a result at ``version`` already superseded?

        An INVALIDATED push consumed *mid-query* can announce a newer
        version than the RESULT being assembled (the server evaluated
        the pre-update snapshot); caching that result would serve stale
        data forever, since no further push for that version will come.
        """
        if version is None:
            return False
        known = self.document_versions.get(document_id)
        return known is not None and int(version) < known

    def _send(self, data: bytes) -> None:
        self._sock.sendall(data)

    def _recv(self) -> Frame:
        while True:
            while not self._pending:
                data = self._sock.recv(65536)
                if not data:
                    raise ConnectionError("server closed the connection")
                self._pending.extend(self._decoder.feed(data))
            frame = self._pending.pop(0)
            # Server pushes are out-of-band: consume them here so every
            # caller (mid-query or not) sees only its own frames.
            if not self._consume_push(frame):
                return frame

    def _expect(self, ftype: int) -> Frame:
        frame = self._recv()
        if frame.type == ERROR:
            raise self._error(frame)
        if frame.type != ftype:
            raise ProtocolError(
                "expected %s, got %s"
                % (protocol.TYPE_NAMES[ftype], frame.type_name)
            )
        return frame

    @staticmethod
    def _error(frame: Frame) -> RemoteError:
        try:
            body = frame.json()
        except ProtocolError:
            body = {}
        return RemoteError(
            body.get("code", "unknown"), body.get("message", "server error")
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "RemoteSession(%s@%s:%d, #%d)" % (
            self.subject,
            self.host,
            self.port,
            getattr(self, "session_id", 0),
        )
