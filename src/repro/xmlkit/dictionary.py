"""Tag dictionary for dictionary-based structure compression.

Section 4.1: "we make the rather classic assumption that the document
structure is compressed thanks to a dictionary of tags".  The dictionary
maps each distinct element tag to a dense integer code; the Skip index
encodes tags as references into (subsets of) this dictionary.

The dictionary is stored inside the SOE (it is part of the document key
material) and is tiny: one entry per *distinct* tag.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.xmlkit.dom import Node
from repro.xmlkit.events import OPEN, Event


class TagDictionary:
    """Bidirectional mapping ``tag <-> code`` with dense codes ``0..N-1``.

    Codes are assigned in first-seen order, which makes dictionaries
    deterministic for a given document — important for reproducible
    encodings and stable test fixtures.
    """

    def __init__(self, tags: Optional[Iterable[str]] = None):
        self._code_by_tag: Dict[str, int] = {}
        self._tag_by_code: List[str] = []
        if tags:
            for tag in tags:
                self.add(tag)

    # ------------------------------------------------------------------
    def add(self, tag: str) -> int:
        """Register ``tag`` (idempotent) and return its code."""
        code = self._code_by_tag.get(tag)
        if code is None:
            code = len(self._tag_by_code)
            self._code_by_tag[tag] = code
            self._tag_by_code.append(tag)
        return code

    def code(self, tag: str) -> int:
        """Code for ``tag``; raises ``KeyError`` for unknown tags."""
        return self._code_by_tag[tag]

    def tag(self, code: int) -> str:
        """Tag for ``code``; raises ``IndexError`` for unknown codes."""
        return self._tag_by_code[code]

    def __contains__(self, tag: str) -> bool:
        return tag in self._code_by_tag

    def __len__(self) -> int:
        return len(self._tag_by_code)

    def __iter__(self) -> Iterator[str]:
        return iter(self._tag_by_code)

    def tags(self) -> List[str]:
        """All tags in code order."""
        return list(self._tag_by_code)

    # ------------------------------------------------------------------
    @classmethod
    def from_tree(cls, root: Node) -> "TagDictionary":
        """Build a dictionary over all tags of ``root``'s subtree."""
        dictionary = cls()
        for node in root.descendants():
            dictionary.add(node.tag)
        return dictionary

    @classmethod
    def from_events(cls, events: Iterable[Event]) -> "TagDictionary":
        """Build a dictionary from an event stream (consumes it)."""
        dictionary = cls()
        for event in events:
            if event[0] == OPEN:
                dictionary.add(event[1])
        return dictionary

    # ------------------------------------------------------------------
    def serialized_size(self) -> int:
        """Bytes needed to ship the dictionary (length-prefixed UTF-8)."""
        return sum(1 + len(tag.encode("utf-8")) for tag in self._tag_by_code)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "TagDictionary(%d tags)" % len(self)
