"""Serialize DOM trees or event streams back to XML text.

Synthetic ``@name`` attribute elements produced by the parser (see
:mod:`repro.xmlkit.parser`) are re-emitted as genuine attributes, so
``serialize(parse_document(x))`` round-trips documents in our subset.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.xmlkit.dom import Node
from repro.xmlkit.events import CLOSE, OPEN, TEXT, Event
from repro.xmlkit.parser import ATTRIBUTE_PREFIX


def escape_text(value: str) -> str:
    """Escape character data."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape an attribute value (double-quote delimited)."""
    return escape_text(value).replace('"', "&quot;")


def serialize(node: Node, indent: int = 0, _level: int = 0) -> str:
    """Serialize ``node`` to XML text.

    ``indent > 0`` pretty-prints with that many spaces per level; the
    default emits compact XML with no inter-element whitespace (important
    for size accounting — Fig. 8 measures structure vs text bytes).
    """
    parts: List[str] = []
    _serialize_into(node, parts, indent, _level)
    return "".join(parts)


def _serialize_into(node: Node, parts: List[str], indent: int, level: int) -> None:
    pad = " " * (indent * level) if indent else ""
    newline = "\n" if indent else ""
    attrs: List[str] = []
    regular: List[object] = []
    for child in node.children:
        if isinstance(child, Node) and child.tag.startswith(ATTRIBUTE_PREFIX):
            attrs.append(
                ' %s="%s"'
                % (
                    child.tag[len(ATTRIBUTE_PREFIX) :],
                    escape_attribute(child.text()),
                )
            )
        else:
            regular.append(child)
    open_tag = "%s<%s%s" % (pad, node.tag, "".join(attrs))
    if not regular:
        parts.append(open_tag + "/>" + newline)
        return
    only_text = all(isinstance(c, str) for c in regular)
    if only_text:
        parts.append(open_tag + ">")
        for child in regular:
            parts.append(escape_text(child))  # type: ignore[arg-type]
        parts.append("</%s>%s" % (node.tag, newline))
        return
    parts.append(open_tag + ">" + newline)
    for child in regular:
        if isinstance(child, str):
            parts.append("%s%s%s" % (" " * (indent * (level + 1)) if indent else "",
                                     escape_text(child), newline))
        else:
            _serialize_into(child, parts, indent, level + 1)
    parts.append("%s</%s>%s" % (pad, node.tag, newline))


def serialize_events(events: Iterable[Event]) -> str:
    """Serialize an event stream to compact XML text.

    Synthetic attribute elements are *not* folded back here (the stream
    form has already committed to the element view); they are emitted as
    ``<@name>`` elements, which :func:`repro.xmlkit.parser.iter_events`
    does not re-read.  Use :func:`serialize` on a tree when true
    round-tripping is needed.
    """
    parts: List[str] = []
    pending_open: str | None = None

    def flush(self_close: bool) -> None:
        nonlocal pending_open
        if pending_open is not None:
            parts.append("<%s%s>" % (pending_open, "/" if self_close else ""))
            pending_open = None

    for event in events:
        kind = event[0]
        if kind == OPEN:
            flush(False)
            pending_open = event[1]
        elif kind == TEXT:
            flush(False)
            parts.append(escape_text(event[1]))
        elif kind == CLOSE:
            if pending_open is not None:
                flush(True)
            else:
                parts.append("</%s>" % event[1])
    flush(True)
    return "".join(parts)
