"""XML substrate: event model, streaming parser, DOM, serializer, dictionary.

This package provides the minimal XML machinery the paper relies on:

* a SAX-like event model (:mod:`repro.xmlkit.events`) with *open*, *value*
  (text) and *close* events, exactly the three events the paper's
  streaming evaluator consumes (Section 3.1);
* a small streaming parser (:mod:`repro.xmlkit.parser`) that turns XML
  text into those events without materializing the document;
* a lightweight DOM (:mod:`repro.xmlkit.dom`) used by generators, by the
  non-streaming reference evaluator and by the tests;
* a serializer (:mod:`repro.xmlkit.serializer`);
* a tag dictionary (:mod:`repro.xmlkit.dictionary`) used by the
  dictionary-based structure compression the Skip index builds on
  (Section 4.1).
"""

from repro.xmlkit.events import OPEN, TEXT, CLOSE, Event, events_to_tree
from repro.xmlkit.dom import Node, text_node
from repro.xmlkit.parser import parse_document, iter_events
from repro.xmlkit.serializer import serialize, serialize_events
from repro.xmlkit.dictionary import TagDictionary

__all__ = [
    "OPEN",
    "TEXT",
    "CLOSE",
    "Event",
    "Node",
    "text_node",
    "TagDictionary",
    "parse_document",
    "iter_events",
    "serialize",
    "serialize_events",
    "events_to_tree",
]
