"""Lightweight DOM used by generators, the reference evaluator and tests.

The streaming pipeline never materializes documents (that is the whole
point of the paper); this tree representation exists so that

* dataset generators can conveniently build documents,
* the *reference* (oracle) access-control evaluator — against which the
  streaming evaluator is differential-tested — can navigate freely,
* tests can compare authorized views structurally.

A node's children list mixes :class:`Node` (element children) and plain
``str`` (text children), mirroring XML's mixed content.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Set, Union

from repro.xmlkit.events import CLOSE, OPEN, TEXT, Event

Child = Union["Node", str]


class Node:
    """An XML element: a tag plus an ordered list of children.

    Children are either :class:`Node` instances or ``str`` text chunks.
    """

    __slots__ = ("tag", "children")

    def __init__(self, tag: str, children: Optional[Sequence[Child]] = None):
        self.tag = tag
        self.children: List[Child] = list(children) if children else []

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add(self, child: Child) -> "Node":
        """Append ``child`` and return it (fluent tree building)."""
        self.children.append(child)
        return child if isinstance(child, Node) else self

    def element(self, tag: str, text: Optional[str] = None) -> "Node":
        """Append a new element child, optionally with a text child."""
        node = Node(tag)
        if text is not None:
            node.children.append(text)
        self.children.append(node)
        return node

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    def element_children(self) -> Iterator["Node"]:
        """Iterate over element (non-text) children."""
        for child in self.children:
            if isinstance(child, Node):
                yield child

    def text(self) -> str:
        """Concatenation of the *direct* text children."""
        return "".join(c for c in self.children if isinstance(c, str))

    def find(self, tag: str) -> Optional["Node"]:
        """First element child with the given tag, or ``None``."""
        for child in self.element_children():
            if child.tag == tag:
                return child
        return None

    def find_all(self, tag: str) -> List["Node"]:
        """All element children with the given tag."""
        return [c for c in self.element_children() if c.tag == tag]

    def descendants(self) -> Iterator["Node"]:
        """Iterate over this node and all element descendants, pre-order."""
        yield self
        for child in self.element_children():
            yield from child.descendants()

    def walk(self, visit: Callable[["Node", int], None], depth: int = 1) -> None:
        """Pre-order traversal calling ``visit(node, depth)``."""
        visit(self, depth)
        for child in self.element_children():
            child.walk(visit, depth + 1)

    # ------------------------------------------------------------------
    # Event interface
    # ------------------------------------------------------------------
    def iter_events(self) -> Iterator[Event]:
        """Yield the open/value/close event stream of this subtree."""
        stack: List[object] = [self]
        while stack:
            item = stack.pop()
            if isinstance(item, Event):
                yield item
            elif isinstance(item, str):
                yield Event(TEXT, item)
            else:
                yield Event(OPEN, item.tag)
                stack.append(Event(CLOSE, item.tag))
                for child in reversed(item.children):
                    stack.append(child)

    # ------------------------------------------------------------------
    # Statistics (Table 2 of the paper)
    # ------------------------------------------------------------------
    def count_elements(self) -> int:
        """Total number of element nodes in the subtree."""
        return sum(1 for _ in self.descendants())

    def count_text_nodes(self) -> int:
        """Total number of text children in the subtree."""
        total = 0
        for node in self.descendants():
            total += sum(1 for c in node.children if isinstance(c, str))
        return total

    def text_size(self) -> int:
        """Total size in bytes of all text content (UTF-8)."""
        total = 0
        for node in self.descendants():
            for child in node.children:
                if isinstance(child, str):
                    total += len(child.encode("utf-8"))
        return total

    def max_depth(self) -> int:
        """Maximum element depth; the root alone has depth 1."""
        best = 0

        def visit(_node: "Node", depth: int) -> None:
            nonlocal best
            if depth > best:
                best = depth

        self.walk(visit)
        return best

    def average_depth(self) -> float:
        """Average depth over all element nodes."""
        total = 0
        count = 0

        def visit(_node: "Node", depth: int) -> None:
            nonlocal total, count
            total += depth
            count += 1

        self.walk(visit)
        return total / count if count else 0.0

    def distinct_tags(self) -> Set[str]:
        """Set of distinct element tags in the subtree."""
        return {node.tag for node in self.descendants()}

    # ------------------------------------------------------------------
    # Comparison / debugging
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Node):
            return NotImplemented
        return self.tag == other.tag and self.children == other.children

    def __hash__(self) -> int:  # Nodes are mutable; hash by identity.
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Node(%r, %d children)" % (self.tag, len(self.children))


def text_node(tag: str, value: str) -> Node:
    """Build a leaf element ``<tag>value</tag>``."""
    return Node(tag, [value])
