"""Streaming XML parser producing open/value/close events.

This is a deliberately small parser for the XML subset the system
exchanges: elements, text content, attributes, comments, processing
instructions, XML declarations, CDATA sections and the five predefined
entities.  Documents produced by :mod:`repro.datasets` and by the
serializer always fall in this subset.  Namespaces are treated lexically
(prefixes are part of the tag name), DTDs are skipped.

Attributes are exposed, per the paper's convention, *like elements*
("Attributes are handled in the model similarly to elements", Section 2):
each attribute ``name="v"`` on ``<e>`` becomes a child element
``<@name>v</@name>`` delivered immediately after the open event of ``e``.
This keeps the downstream machinery (automata, skip index) uniform.  The
behaviour can be disabled with ``attributes="ignore"``.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.xmlkit.events import CLOSE, OPEN, TEXT, Event

_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "quot": '"', "apos": "'"}

ATTRIBUTE_PREFIX = "@"


class XmlSyntaxError(ValueError):
    """Raised on malformed XML input."""

    def __init__(self, message: str, position: int):
        super().__init__("%s (at offset %d)" % (message, position))
        self.position = position


def unescape(text: str) -> str:
    """Resolve the predefined entities and numeric character references."""
    if "&" not in text:
        return text
    parts: List[str] = []
    i = 0
    length = len(text)
    while i < length:
        amp = text.find("&", i)
        if amp < 0:
            parts.append(text[i:])
            break
        parts.append(text[i:amp])
        semi = text.find(";", amp + 1)
        if semi < 0:
            raise XmlSyntaxError("unterminated entity reference", amp)
        name = text[amp + 1 : semi]
        if name.startswith("#x") or name.startswith("#X"):
            parts.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            parts.append(chr(int(name[1:])))
        elif name in _ENTITIES:
            parts.append(_ENTITIES[name])
        else:
            raise XmlSyntaxError("unknown entity %r" % name, amp)
        i = semi + 1
    return "".join(parts)


def iter_events(
    text: str,
    attributes: str = "elements",
    keep_whitespace: bool = False,
) -> Iterator[Event]:
    """Parse ``text`` and yield open/value/close events.

    ``attributes`` is either ``"elements"`` (attributes become synthetic
    ``@name`` child elements) or ``"ignore"``.  Pure-whitespace text
    between elements is dropped unless ``keep_whitespace`` is true.
    """
    if attributes not in ("elements", "ignore"):
        raise ValueError("attributes must be 'elements' or 'ignore'")
    i = 0
    length = len(text)
    stack: List[str] = []
    seen_root = False
    while i < length:
        lt = text.find("<", i)
        if lt < 0:
            trailing = text[i:]
            if trailing.strip():
                raise XmlSyntaxError("text outside the root element", i)
            break
        if lt > i:
            chunk = text[i:lt]
            if stack:
                if keep_whitespace or chunk.strip():
                    yield Event(TEXT, unescape(chunk))
            elif chunk.strip():
                raise XmlSyntaxError("text outside the root element", i)
        i = lt
        if text.startswith("<!--", i):
            end = text.find("-->", i + 4)
            if end < 0:
                raise XmlSyntaxError("unterminated comment", i)
            i = end + 3
        elif text.startswith("<![CDATA[", i):
            end = text.find("]]>", i + 9)
            if end < 0:
                raise XmlSyntaxError("unterminated CDATA section", i)
            if not stack:
                raise XmlSyntaxError("CDATA outside the root element", i)
            yield Event(TEXT, text[i + 9 : end])
            i = end + 3
        elif text.startswith("<?", i):
            end = text.find("?>", i + 2)
            if end < 0:
                raise XmlSyntaxError("unterminated processing instruction", i)
            i = end + 2
        elif text.startswith("<!", i):
            i = _skip_declaration(text, i)
        elif text.startswith("</", i):
            gt = text.find(">", i + 2)
            if gt < 0:
                raise XmlSyntaxError("unterminated closing tag", i)
            tag = text[i + 2 : gt].strip()
            if not stack:
                raise XmlSyntaxError("closing tag %r without open" % tag, i)
            expected = stack.pop()
            if expected != tag:
                raise XmlSyntaxError(
                    "mismatched closing tag: expected %r, got %r" % (expected, tag), i
                )
            yield Event(CLOSE, tag)
            i = gt + 1
        else:
            gt = text.find(">", i + 1)
            if gt < 0:
                raise XmlSyntaxError("unterminated opening tag", i)
            self_closing = text[gt - 1] == "/"
            body = text[i + 1 : gt - 1 if self_closing else gt]
            tag, attrs = _parse_tag_body(body, i)
            if not stack and seen_root:
                raise XmlSyntaxError("multiple root elements", i)
            seen_root = True
            yield Event(OPEN, tag)
            if attributes == "elements":
                for name, value in attrs:
                    yield Event(OPEN, ATTRIBUTE_PREFIX + name)
                    if value:
                        yield Event(TEXT, value)
                    yield Event(CLOSE, ATTRIBUTE_PREFIX + name)
            if self_closing:
                yield Event(CLOSE, tag)
            else:
                stack.append(tag)
            i = gt + 1
    if stack:
        raise XmlSyntaxError("unclosed elements: %s" % "/".join(stack), length)
    if not seen_root:
        raise XmlSyntaxError("no root element", 0)


def _skip_declaration(text: str, i: int) -> int:
    """Skip ``<!DOCTYPE ...>`` including a bracketed internal subset."""
    depth = 0
    j = i
    length = len(text)
    while j < length:
        ch = text[j]
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == ">" and depth <= 0:
            return j + 1
        j += 1
    raise XmlSyntaxError("unterminated declaration", i)


def _parse_tag_body(body: str, position: int):
    """Split an opening-tag body into ``(tag, [(attr, value), ...])``."""
    body = body.strip()
    if not body:
        raise XmlSyntaxError("empty tag", position)
    j = 0
    while j < len(body) and not body[j].isspace():
        j += 1
    tag = body[:j]
    if not _valid_name(tag):
        raise XmlSyntaxError("invalid tag name %r" % tag, position)
    attrs = []
    rest = body[j:].strip()
    k = 0
    while k < len(rest):
        eq = rest.find("=", k)
        if eq < 0:
            if rest[k:].strip():
                raise XmlSyntaxError("malformed attribute in %r" % body, position)
            break
        name = rest[k:eq].strip()
        if not _valid_name(name):
            raise XmlSyntaxError("invalid attribute name %r" % name, position)
        v = eq + 1
        while v < len(rest) and rest[v].isspace():
            v += 1
        if v >= len(rest) or rest[v] not in "\"'":
            raise XmlSyntaxError("unquoted attribute value in %r" % body, position)
        quote = rest[v]
        endq = rest.find(quote, v + 1)
        if endq < 0:
            raise XmlSyntaxError("unterminated attribute value", position)
        attrs.append((name, unescape(rest[v + 1 : endq])))
        k = endq + 1
    return tag, attrs


def _valid_name(name: str) -> bool:
    if not name:
        return False
    first = name[0]
    if not (first.isalpha() or first in "_:"):
        return False
    return all(ch.isalnum() or ch in "_-.:" for ch in name)


def parse_document(text: str, attributes: str = "elements"):
    """Parse ``text`` into a :class:`repro.xmlkit.dom.Node` tree."""
    from repro.xmlkit.events import events_to_tree

    return events_to_tree(iter_events(text, attributes=attributes))
