"""SAX-like event model.

The paper's evaluator is "fed by an event-based parser (e.g., SAX)
raising open, value and close events respectively for each opening, text
and closing tag in the input document" (Section 3.1).  We model exactly
those three events.  An event stream is any iterable of :class:`Event`.

A well-formed stream satisfies:

* events nest properly (every ``OPEN`` has a matching ``CLOSE``);
* ``TEXT`` events only occur between an ``OPEN`` and its ``CLOSE``;
* there is exactly one root element.

:func:`validate_stream` checks these properties and is used liberally in
tests.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

#: Event kinds.  Plain ints keep per-event overhead minimal: the
#: streaming evaluator touches millions of events in the larger benches.
OPEN = 0
TEXT = 1
CLOSE = 2

_KIND_NAMES = {OPEN: "open", TEXT: "text", CLOSE: "close"}


class Event(tuple):
    """A single parsing event: ``(kind, value)``.

    ``value`` is the element tag for ``OPEN``/``CLOSE`` events and the
    text content for ``TEXT`` events.  Events are tuples so they are
    hashable, comparable and cheap; the subclass only adds readable
    accessors and a helpful ``repr``.
    """

    __slots__ = ()

    def __new__(cls, kind: int, value: str) -> "Event":
        return tuple.__new__(cls, (kind, value))

    @property
    def kind(self) -> int:
        return self[0]

    @property
    def value(self) -> str:
        return self[1]

    @property
    def is_open(self) -> bool:
        return self[0] == OPEN

    @property
    def is_text(self) -> bool:
        return self[0] == TEXT

    @property
    def is_close(self) -> bool:
        return self[0] == CLOSE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Event(%s, %r)" % (_KIND_NAMES[self[0]], self[1])


def open_event(tag: str) -> Event:
    """Build an ``OPEN`` event for ``tag``."""
    return Event(OPEN, tag)


def text_event(value: str) -> Event:
    """Build a ``TEXT`` event carrying ``value``."""
    return Event(TEXT, value)


def close_event(tag: str) -> Event:
    """Build a ``CLOSE`` event for ``tag``."""
    return Event(CLOSE, tag)


class StreamError(ValueError):
    """Raised when an event stream is not well formed."""


def validate_stream(events: Iterable[Event]) -> None:
    """Check well-formedness of ``events``; raise :class:`StreamError`.

    The check enforces proper nesting, tag matching between each
    ``OPEN``/``CLOSE`` pair, a single root, and no content outside the
    root element.
    """
    stack: List[str] = []
    seen_root = False
    for event in events:
        kind = event[0]
        if kind == OPEN:
            if not stack and seen_root:
                raise StreamError("multiple root elements")
            stack.append(event[1])
            seen_root = True
        elif kind == CLOSE:
            if not stack:
                raise StreamError("close event %r without open" % (event[1],))
            expected = stack.pop()
            if expected != event[1]:
                raise StreamError(
                    "mismatched close: expected %r, got %r" % (expected, event[1])
                )
        elif kind == TEXT:
            if not stack:
                raise StreamError("text outside the root element")
        else:
            raise StreamError("unknown event kind %r" % (kind,))
    if stack:
        raise StreamError("unclosed elements: %s" % "/".join(stack))
    if not seen_root:
        raise StreamError("empty stream")


def with_depth(events: Iterable[Event]) -> Iterator[Tuple[Event, int]]:
    """Yield ``(event, depth)`` pairs.

    Depth follows the paper's convention: the root element's *open* event
    has depth 1; a ``TEXT`` event has the depth of its enclosing element;
    a ``CLOSE`` event has the depth of the element being closed.
    """
    depth = 0
    for event in events:
        kind = event[0]
        if kind == OPEN:
            depth += 1
            yield event, depth
        elif kind == CLOSE:
            yield event, depth
            depth -= 1
        else:
            yield event, depth


def events_to_tree(events: Iterable[Event]):
    """Materialize an event stream into a :class:`repro.xmlkit.dom.Node`.

    Inverse of :meth:`Node.iter_events`.  Raises :class:`StreamError`
    on malformed input.
    """
    from repro.xmlkit.dom import Node

    root = None
    stack: List[Node] = []
    for event in events:
        kind = event[0]
        if kind == OPEN:
            node = Node(event[1])
            if stack:
                stack[-1].children.append(node)
            elif root is not None:
                raise StreamError("multiple root elements")
            else:
                root = node
            stack.append(node)
        elif kind == TEXT:
            if not stack:
                raise StreamError("text outside the root element")
            stack[-1].children.append(event[1])
        else:
            if not stack:
                raise StreamError("close without open")
            closed = stack.pop()
            if closed.tag != event[1]:
                raise StreamError(
                    "mismatched close: expected %r, got %r" % (closed.tag, event[1])
                )
    if stack:
        raise StreamError("unclosed elements")
    if root is None:
        raise StreamError("empty stream")
    return root
