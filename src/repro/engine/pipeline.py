"""Composable document pipeline (the Fig. 2 dataflow as one object).

The seed code wired parse -> Skip-index encode -> encrypt ->
stream-decrypt -> evaluate -> serialize by hand in four different
places (``cli.py``, ``bench/experiments.py``, ``soe/session.py`` and
the examples), each with its own slightly different metering.  A
:class:`DocumentPipeline` is the single reusable form: an ordered list
of :class:`Stage` objects sharing one :class:`PipelineContext` (and one
:class:`~repro.metrics.Meter`), with per-stage wall-clock timings.

Ready-made compositions cover the two halves of the paper's
architecture:

* :meth:`DocumentPipeline.publisher` — the untrusted publisher's work:
  parse, encode, encrypt/digest (no secrets beyond the document key);
* :meth:`DocumentPipeline.consumer` — the SOE's work: stream-decrypt,
  evaluate under a compiled plan, optionally integrity-audit the whole
  store and serialize the view.

``publisher(...) + consumer(...)`` is a full end-to-end run.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.accesscontrol.evaluator import StreamingEvaluator
from repro.accesscontrol.model import Policy
from repro.crypto.chunks import ChunkLayout
from repro.crypto.integrity import IntegrityError, SecureBytes, make_scheme
from repro.engine.plans import PolicyPlan, QueryPlan, compile_policy
from repro.metrics import Meter
from repro.skipindex.decoder import SkipIndexNavigator
from repro.skipindex.encoder import encode_document
from repro.skipindex.structural import (
    IndexedNavigator,
    StructuralIndex,
    build_structural_index,
)
from repro.soe.costmodel import CONTEXTS, CostModel, PlatformContext
from repro.soe.session import PreparedDocument, delivered_bytes
from repro.xmlkit.dom import Node
from repro.xmlkit.events import Event
from repro.xmlkit.parser import parse_document
from repro.xmlkit.serializer import serialize_events


class PipelineError(RuntimeError):
    """A stage was run without its required input."""


class PipelineContext:
    """Mutable state threaded through the stages of one run."""

    def __init__(
        self,
        source: Optional[str] = None,
        tree: Optional[Node] = None,
        prepared: Optional[PreparedDocument] = None,
        meter: Optional[Meter] = None,
    ):
        self.source = source
        self.tree = tree
        self.encoded = prepared.encoded if prepared is not None else None
        self.prepared = prepared
        self.navigator = None
        self.view: Optional[List[Event]] = None
        self.serialized: Optional[str] = None
        self.meter = meter if meter is not None else Meter()
        self.breakdown = None
        self.integrity_report: Optional[Dict[str, object]] = None
        self.stage_seconds: Dict[str, float] = {}
        #: Per-stage ``(name, start, end)`` in ``perf_counter`` time —
        #: the raw material request tracing turns into pipeline spans
        #: (``repro.obs.trace``) without re-running any clock.
        self.stage_times: List[Tuple[str, float, float]] = []

    def require(self, attribute: str, stage: str):
        value = getattr(self, attribute)
        if value is None:
            raise PipelineError(
                "stage %r needs %r; add the producing stage first"
                % (stage, attribute)
            )
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        done = [name for name in self.stage_seconds]
        return "PipelineContext(stages=%s)" % ",".join(done)


class Stage:
    """One named pipeline step: ``run(ctx)`` reads and writes context."""

    name = "stage"

    def run(self, ctx: PipelineContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<stage %s>" % self.name


class FunctionStage(Stage):
    """Adapter for ad-hoc stages built from plain callables."""

    def __init__(self, name: str, fn: Callable[[PipelineContext], None]):
        self.name = name
        self._fn = fn

    def run(self, ctx: PipelineContext) -> None:
        self._fn(ctx)


class ParseStage(Stage):
    """XML text -> DOM tree (publisher side; no metering, untrusted)."""

    name = "parse"

    def run(self, ctx: PipelineContext) -> None:
        if ctx.tree is not None:
            return
        source = ctx.require("source", self.name)
        ctx.tree = parse_document(source)


class EncodeStage(Stage):
    """DOM tree -> Skip-index encoded bytes (TCSBR encoding)."""

    name = "encode"

    def run(self, ctx: PipelineContext) -> None:
        tree = ctx.require("tree", self.name)
        ctx.encoded = encode_document(tree)


class EncryptStage(Stage):
    """Encoded bytes -> encrypted/digested store for the terminal.

    ``version`` is the document update counter bound into every chunk's
    position/MAC derivation (see :mod:`repro.crypto.modes`); fresh
    publications start at 0 and :meth:`SecureStation.update` bumps it
    per re-encryption.

    With a ``store`` sink (any :class:`~repro.store.ChunkStore`) plus a
    ``document_id``, the stage publishes *into the store* instead of
    materializing the ciphertext: a disk store consumes the scheme's
    chunk-record generator with at most one log segment buffered, so a
    document larger than RAM flows straight to disk.  ``ctx.prepared``
    is then the store's served handle (its chunk records read back
    lazily through the store's page cache).
    """

    name = "encrypt"

    def __init__(
        self,
        scheme: str = "ECB-MHT",
        key: bytes = b"\x00" * 16,
        layout: Optional[ChunkLayout] = None,
        version: int = 0,
        backend=None,
        store=None,
        document_id: Optional[str] = None,
        index: bool = False,
    ):
        if store is not None and document_id is None:
            raise ValueError("EncryptStage with a store needs a document_id")
        self.scheme = scheme
        self.key = key
        self.layout = layout
        self.version = version
        self.backend = backend
        self.store = store
        self.document_id = document_id
        self.index = index

    def run(self, ctx: PipelineContext) -> None:
        encoded = ctx.require("encoded", self.name)
        scheme = make_scheme(
            self.scheme, key=self.key, layout=self.layout, backend=self.backend
        )
        # The structural index walks the *plaintext* encoding, so it is
        # built here — publish time, before the bytes are protected.
        index = build_structural_index(encoded) if self.index else None
        if self.store is not None:
            ctx.prepared = self.store.put_stream(
                self.document_id, encoded, scheme, self.key, self.version,
                index=index,
            )
            return
        secure = scheme.protect(encoded.data, version=self.version)
        ctx.prepared = PreparedDocument(encoded, scheme, secure, index=index)


class DecryptStreamStage(Stage):
    """Protected store -> decrypting, integrity-checking navigator.

    With a :class:`~repro.skipindex.structural.StructuralIndex` the
    navigator replays structure from the index and touches the
    ciphertext only for text payloads and captures — identical events,
    strictly fewer chunks decrypted."""

    name = "stream-decrypt"

    def __init__(
        self,
        use_skip_index: bool = True,
        index: Optional[StructuralIndex] = None,
    ):
        self.use_skip_index = use_skip_index
        self.index = index

    def run(self, ctx: PipelineContext) -> None:
        prepared = ctx.require("prepared", self.name)
        reader = prepared.scheme.reader(prepared.secure, ctx.meter)
        if self.index is not None:
            ctx.navigator = IndexedNavigator(
                SecureBytes(reader),
                self.index,
                prepared.encoded.dictionary,
                meter=ctx.meter,
                provide_meta=self.use_skip_index,
            )
            return
        ctx.navigator = SkipIndexNavigator(
            SecureBytes(reader),
            dictionary=prepared.encoded.dictionary,
            start_offset=prepared.encoded.root_offset,
            meter=ctx.meter,
            provide_meta=self.use_skip_index,
        )


class EvaluateStage(Stage):
    """Navigator -> authorized view under a compiled plan.

    ``prune`` turns on the evaluator's skip-pruned replay (the serving
    hot path); it stays off by default so the paper-figure benches keep
    their exact cold-path cost accounting.
    """

    name = "evaluate"

    def __init__(
        self,
        plan: Union[PolicyPlan, Policy],
        query: Union[str, QueryPlan, None] = None,
        use_skip_index: bool = True,
        prune: bool = False,
    ):
        self.plan = compile_policy(plan)
        self.query = query
        self.use_skip_index = use_skip_index
        self.prune = prune

    def run(self, ctx: PipelineContext) -> None:
        navigator = ctx.require("navigator", self.name)
        evaluator = StreamingEvaluator(
            self.plan,
            query=self.query,
            meter=ctx.meter,
            enable_skipping=self.use_skip_index,
            enable_pruning=self.prune,
        )
        ctx.view = evaluator.run(navigator)
        ctx.meter.bytes_delivered += delivered_bytes(ctx.view)


class IntegrityAuditStage(Stage):
    """Full-store verification sweep (every chunk decrypted + checked).

    The streaming run only verifies the chunks it touches; an audit
    reads the whole store through the scheme reader, so any tampered
    chunk — even one outside the authorized view — raises.  The report
    lands in ``ctx.integrity_report``.
    """

    name = "integrity-check"

    def run(self, ctx: PipelineContext) -> None:
        prepared = ctx.require("prepared", self.name)
        meter = Meter()  # audit cost is accounted separately
        reader = prepared.scheme.reader(prepared.secure, meter)
        size = prepared.secure.plaintext_size
        step = prepared.scheme.layout.chunk_size
        ok = True
        error = None
        try:
            for offset in range(0, size, step):
                reader.read(offset, min(step, size - offset))
        except IntegrityError as exc:
            ok = False
            error = str(exc)
        ctx.integrity_report = {
            "scheme": prepared.scheme.name,
            "verifies": prepared.scheme.has_digest,
            "ok": ok,
            "error": error,
            "bytes_checked": size,
            "chunks": meter.chunks_accessed,
        }


class SerializeStage(Stage):
    """Authorized view -> XML text."""

    name = "serialize"

    def __init__(self, indent: Optional[int] = None):
        self.indent = indent

    def run(self, ctx: PipelineContext) -> None:
        view = ctx.require("view", self.name)
        ctx.serialized = serialize_events(view)


class DocumentPipeline:
    """An ordered, reusable composition of :class:`Stage` objects.

    The pipeline itself is stateless across runs — every :meth:`run`
    gets a fresh :class:`PipelineContext` — so one pipeline (like one
    :class:`~repro.engine.plans.PolicyPlan`) can serve many documents.
    """

    def __init__(
        self,
        stages: Sequence[Stage],
        context: Union[str, PlatformContext] = "smartcard",
    ):
        self.stages: List[Stage] = list(stages)
        self.platform = CONTEXTS[context] if isinstance(context, str) else context

    # ------------------------------------------------------------------
    def then(self, *stages: Stage) -> "DocumentPipeline":
        """New pipeline with ``stages`` appended (composition)."""
        return DocumentPipeline(self.stages + list(stages), self.platform)

    def __add__(self, other: "DocumentPipeline") -> "DocumentPipeline":
        return DocumentPipeline(self.stages + other.stages, self.platform)

    def run(
        self,
        source: Optional[str] = None,
        tree: Optional[Node] = None,
        prepared: Optional[PreparedDocument] = None,
        meter: Optional[Meter] = None,
    ) -> PipelineContext:
        """Execute every stage; returns the finished context.

        The entry point is whichever input the first stage needs: raw
        XML text (``source``), a DOM ``tree``, or an already-protected
        ``prepared`` document.
        """
        ctx = PipelineContext(
            source=source, tree=tree, prepared=prepared, meter=meter
        )
        for stage in self.stages:
            started = time.perf_counter()
            stage.run(ctx)
            ended = time.perf_counter()
            ctx.stage_seconds[stage.name] = (
                ctx.stage_seconds.get(stage.name, 0.0) + ended - started
            )
            ctx.stage_times.append((stage.name, started, ended))
        ctx.breakdown = CostModel(self.platform).breakdown(ctx.meter)
        return ctx

    # ------------------------------------------------------------------
    # Ready-made compositions
    # ------------------------------------------------------------------
    @classmethod
    def publisher(
        cls,
        scheme: str = "ECB-MHT",
        key: bytes = b"\x00" * 16,
        layout: Optional[ChunkLayout] = None,
        context: Union[str, PlatformContext] = "smartcard",
        version: int = 0,
        backend=None,
        store=None,
        document_id: Optional[str] = None,
        index: bool = False,
    ) -> "DocumentPipeline":
        """parse -> encode -> encrypt (the publisher of Fig. 2).

        ``store``/``document_id`` stream the protected output into a
        :class:`~repro.store.ChunkStore` instead of process memory;
        ``index=True`` builds the structural index over the encoding."""
        return cls(
            [
                ParseStage(),
                EncodeStage(),
                EncryptStage(
                    scheme,
                    key,
                    layout,
                    version,
                    backend=backend,
                    store=store,
                    document_id=document_id,
                    index=index,
                ),
            ],
            context=context,
        )

    @classmethod
    def consumer(
        cls,
        plan: Union[PolicyPlan, Policy],
        query: Union[str, QueryPlan, None] = None,
        use_skip_index: bool = True,
        integrity_audit: bool = False,
        serialize: bool = False,
        context: Union[str, PlatformContext] = "smartcard",
        prune: bool = False,
        index: Optional[StructuralIndex] = None,
    ) -> "DocumentPipeline":
        """stream-decrypt -> evaluate [-> integrity-check] [-> serialize]."""
        stages: List[Stage] = [
            DecryptStreamStage(use_skip_index, index=index),
            EvaluateStage(plan, query, use_skip_index, prune=prune),
        ]
        if integrity_audit:
            stages.append(IntegrityAuditStage())
        if serialize:
            stages.append(SerializeStage())
        return cls(stages, context=context)

    @classmethod
    def end_to_end(
        cls,
        plan: Union[PolicyPlan, Policy],
        query: Union[str, QueryPlan, None] = None,
        scheme: str = "ECB-MHT",
        key: bytes = b"\x00" * 16,
        use_skip_index: bool = True,
        serialize: bool = False,
        context: Union[str, PlatformContext] = "smartcard",
    ) -> "DocumentPipeline":
        """Publisher immediately followed by the SOE consumer."""
        return cls.publisher(scheme, key, context=context) + cls.consumer(
            plan,
            query,
            use_skip_index=use_skip_index,
            serialize=serialize,
            context=context,
        )
