"""SecureStation: one SOE serving many clients (the server setting).

The paper's SOE is provisioned once and then serves a stream of
requests; nothing in it is per-request except the token state.  The
seed's :class:`~repro.soe.session.SecureSession` modelled exactly one
``(document, subject)`` run.  A :class:`SecureStation` is the
multi-client generalization the ROADMAP's production framing needs:

* a **plan cache** — an LRU keyed by ``(subject, policy digest)``
  holding compiled :class:`~repro.engine.plans.PolicyPlan` objects, so
  a returning subject (or any subject sharing a role policy) never
  recompiles automata;
* **per-session key material** — each :meth:`connect` derives a session
  key from the station's master secret, used to seal authorized views
  on the SOE -> client link (the document keys never leave the station);
* **batched evaluation** — :meth:`evaluate_many` serves N subjects over
  one encrypted document in a *single pass over the chunks*: the store
  is transferred, decrypted and integrity-checked once into a decoded
  event stream, then every subject's plan is evaluated over it
  in-memory.  For one subject the per-request Skip-index path is
  cheaper; for N subjects with overlapping needs the batch amortizes
  the dominant communication + decryption costs N-fold.
"""

from __future__ import annotations

import dataclasses
import hashlib
import hmac
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.accesscontrol.evaluator import StreamingEvaluator
from repro.accesscontrol.model import Policy
from repro.accesscontrol.navigation import EventListNavigator
from repro.compute import ComputeBackend, resolve_backend
from repro.crypto.chunks import ChunkLayout
from repro.crypto.integrity import SecureBytes, make_scheme
from repro.crypto.modes import decrypt_positioned, encrypt_positioned, pad_to_block
from repro.crypto.xtea import Xtea
from repro.engine.pipeline import DocumentPipeline, EncodeStage, ParseStage
from repro.engine.plans import PolicyPlan, compile_policy, policy_digest
from repro.metrics import Meter
from repro.skipindex.decoder import SkipIndexNavigator, decode_document
from repro.skipindex.encoder import EncodedDocument
from repro.skipindex.structural import build_structural_index
from repro.store import ChunkStore, MemoryStore
from repro.skipindex.updates import (
    UpdateImpact,
    UpdateOp,
    impact_between,
    reencode_after,
    refresh_structural_index,
)
from repro.soe.costmodel import CONTEXTS, CostModel, PlatformContext
from repro.soe.session import PreparedDocument, SessionResult, delivered_bytes
from repro.xmlkit.dom import Node
from repro.xmlkit.events import Event
from repro.xmlkit.serializer import serialize_events


class StationError(KeyError):
    """Unknown document, subject or grant."""


# ----------------------------------------------------------------------
# Link sealing (SOE -> client)
# ----------------------------------------------------------------------
def seal_payload(session_key: bytes, payload: bytes) -> bytes:
    """MAC-then-encrypt ``payload`` under a session link key.

    The body is ``len || payload || HMAC-SHA1(payload)``, padded and
    XTEA-encrypted.  The inverse is :func:`open_sealed`; both ends of
    the SOE -> client link (station *and* the remote client SDK) share
    this module-level pair so the wire format is defined exactly once.
    """
    mac = hmac.new(session_key, payload, hashlib.sha1).digest()
    body = len(payload).to_bytes(4, "big") + payload + mac
    cipher = Xtea(session_key)
    return encrypt_positioned(cipher, pad_to_block(body), 0)


def open_sealed(session_key: bytes, blob: bytes) -> bytes:
    """Inverse of :func:`seal_payload`; raises ``ValueError`` on a bad MAC."""
    cipher = Xtea(session_key)
    # Accept memoryview blobs (the zero-copy frame decoder hands CHUNK
    # payloads out as views into its receive buffers).
    body = decrypt_positioned(cipher, bytes(blob), 0)
    length = int.from_bytes(body[:4], "big")
    if length > len(body) - 4:
        raise ValueError("sealed view is truncated")
    payload = body[4 : 4 + length]
    mac = body[4 + length : 4 + length + 20]
    expected = hmac.new(session_key, payload, hashlib.sha1).digest()
    if not hmac.compare_digest(mac, expected):
        raise ValueError("sealed view failed authentication")
    return payload


class StationStats:
    """Operational counters of one station (cache behaviour, volume)."""

    __slots__ = (
        "plan_hits",
        "plan_misses",
        "plan_evictions",
        "view_hits",
        "view_misses",
        "view_evictions",
        "view_invalidations",
        "sessions_opened",
        "requests",
        "failed_requests",
        "batches",
        "batch_subjects",
        "batch_failures",
        "updates",
        "chunks_reencrypted",
        "indexed_requests",
        "streamed_requests",
        "index_early_exits",
        "index_stale",
        "index_rebuilds",
        "index_incrementals",
        "index_planned_chunks",
        "index_chunks_total",
    )

    def __init__(self):
        for field in self.__slots__:
            setattr(self, field, 0)

    def as_dict(self) -> Dict[str, int]:
        return {field: getattr(self, field) for field in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "StationStats(%s)" % self.as_dict()


class StationSession:
    """One connected client: a subject plus derived key material.

    The session key is an HKDF-style derivation from the station's
    master secret, the subject and a per-connection counter; it seals
    authorized views on the way out so the untrusted terminal between
    SOE and client learns nothing (document keys stay inside).
    """

    __slots__ = ("station", "subject", "session_id", "session_key")

    def __init__(self, station: "SecureStation", subject: str, session_id: int):
        self.station = station
        self.subject = subject
        self.session_id = session_id
        self.session_key = station._derive_session_key(subject, session_id)

    # ------------------------------------------------------------------
    def view(self, document_id: str, query=None) -> SessionResult:
        """Authorized view of ``document_id`` under this subject's grant."""
        return self.station.evaluate(document_id, self.subject, query=query)

    def sealed_view(self, document_id: str, query=None) -> bytes:
        """Like :meth:`view`, but serialized and sealed for the link."""
        result = self.view(document_id, query=query)
        return self.seal(serialize_events(result.events).encode("utf-8"))

    def seal(self, payload: bytes) -> bytes:
        return seal_payload(self.session_key, payload)

    def open(self, blob: bytes) -> bytes:
        """Client-side inverse of :meth:`seal` (tests / simulation)."""
        return open_sealed(self.session_key, blob)

    def stream_view(
        self,
        document_id: str,
        query=None,
        chunk_size: int = 4096,
        seal: bool = False,
        tracer=None,
        trace: int = 0,
        parent_span: int = 0,
    ) -> "ViewStream":
        """Streaming hand-off for the network layer: evaluate, then
        expose the serialized view as bounded chunks (optionally sealed
        per chunk under this session's link key)."""
        return self.station.stream(
            document_id,
            self.subject,
            query=query,
            chunk_size=chunk_size,
            sealer=self.seal if seal else None,
            tracer=tracer,
            trace=trace,
            parent_span=parent_span,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "StationSession(%s, #%d)" % (self.subject, self.session_id)


class ViewStream:
    """An evaluated authorized view, packaged for chunked delivery.

    The streaming hand-off between the station and the network layer
    (:mod:`repro.server.service`): evaluation already happened, so
    ``result`` carries the full :class:`SessionResult` for the trailer
    metadata, while :meth:`chunks` exposes the serialized payload as
    bounded slices a writer can flow-control — optionally sealed one
    chunk at a time under a session link key.
    """

    __slots__ = ("result", "payload", "chunk_size", "_sealer")

    def __init__(self, result, payload: bytes, chunk_size: int, sealer=None):
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.result = result
        self.payload = payload
        self.chunk_size = chunk_size
        self._sealer = sealer

    @property
    def payload_bytes(self) -> int:
        return len(self.payload)

    @property
    def chunk_count(self) -> int:
        return (len(self.payload) + self.chunk_size - 1) // self.chunk_size

    @property
    def sealed(self) -> bool:
        return self._sealer is not None

    def chunks(self):
        """Yield the payload as ``chunk_size`` slices (sealed if asked).

        Sealing happens lazily, chunk by chunk, so a slow consumer
        never forces the whole view to be sealed up front.
        """
        for start in range(0, len(self.payload), self.chunk_size):
            chunk = self.payload[start : start + self.chunk_size]
            yield self._sealer(chunk) if self._sealer else chunk

    def __iter__(self):
        return self.chunks()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ViewStream(%d bytes, %d chunks%s)" % (
            len(self.payload),
            self.chunk_count,
            ", sealed" if self.sealed else "",
        )


class _CachedView:
    """One materialized authorized view in the station's view cache.

    Keyed by ``(document id, version, subject, policy digest, query)``
    — the version makes the entry self-invalidating: an update bumps
    the document version, so every stale key becomes unreachable even
    before the eviction sweep runs.  ``events`` and ``breakdown`` are
    shared read-only with every hit (like compiled plans, immutable by
    convention); ``meter`` is copied per hit so callers can merge it
    freely.  ``payload`` is the serialized view, filled lazily by the
    first :meth:`SecureStation.stream` that needs it — after that a
    repeat remote query is a dictionary lookup plus per-session link
    resealing.
    """

    __slots__ = ("events", "meter", "breakdown", "payload", "indexed")

    def __init__(self, events, meter: Meter, breakdown, indexed: bool = False):
        # A tuple, deliberately: the entry must survive callers mutating
        # the event list a miss or hit handed them.
        self.events = tuple(events)
        self.meter = meter
        self.breakdown = breakdown
        self.payload: Optional[bytes] = None
        # Whether the original evaluation went through the structural
        # index; hits replay the flag so trailers stay truthful.
        self.indexed = indexed


class SubjectFailure:
    """Structured per-subject failure inside a batch.

    One client's bad grant or crashing predicate must not kill the
    whole multi-client response, so :meth:`SecureStation.evaluate_many`
    records the failure in place of that subject's
    :class:`SessionResult` and keeps serving the rest.

    ``meter`` carries whatever partial work the subject's evaluation
    did before it died (empty for failures that never started, like a
    missing grant).  It is accounted *here*, separately — never folded
    into the batch's shared meter, the successful subjects' meters or
    the station's served totals — so a mid-evaluation crash cannot
    inflate the served chunk/byte counts with work that produced no
    view.
    """

    __slots__ = ("subject", "kind", "message", "meter")

    ok = False

    def __init__(
        self, subject: str, kind: str, message: str, meter: Optional[Meter] = None
    ):
        self.subject = subject
        self.kind = kind
        self.message = message
        self.meter = meter if meter is not None else Meter()

    def as_dict(self) -> Dict[str, str]:
        return {"subject": self.subject, "kind": self.kind, "message": self.message}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SubjectFailure(%s: %s, %r)" % (self.subject, self.kind, self.message)


class BatchResult:
    """Outcome of :meth:`SecureStation.evaluate_many`.

    ``per_subject`` maps subject -> :class:`SessionResult` (success) or
    :class:`SubjectFailure` (structured error); meters of successful
    entries count only that subject's evaluation and delivery, while
    ``shared_meter`` carries the one-time transfer/decrypt/integrity
    cost of the single pass over the chunks.
    """

    def __init__(
        self,
        per_subject: "OrderedDict[str, SessionResult]",
        shared_meter: Meter,
        context: PlatformContext,
    ):
        self.per_subject = per_subject
        self.shared_meter = shared_meter
        self.context = context

    def __getitem__(self, subject: str) -> SessionResult:
        return self.per_subject[subject]

    def __iter__(self):
        return iter(self.per_subject.items())

    def __len__(self) -> int:
        return len(self.per_subject)

    @property
    def ok(self) -> "OrderedDict[str, SessionResult]":
        """Successful entries only."""
        return OrderedDict(
            (subject, entry)
            for subject, entry in self.per_subject.items()
            if not isinstance(entry, SubjectFailure)
        )

    @property
    def failures(self) -> "OrderedDict[str, SubjectFailure]":
        """Failed entries only (empty when the whole batch succeeded)."""
        return OrderedDict(
            (subject, entry)
            for subject, entry in self.per_subject.items()
            if isinstance(entry, SubjectFailure)
        )

    @property
    def seconds(self) -> float:
        """Simulated wall time of the whole batch on the platform.

        Counts the shared pass plus the *successful* subjects only;
        partial work of failed subjects lives in
        :attr:`SubjectFailure.meter` (see :meth:`failure_meter`).
        """
        merged = Meter.merged(
            [self.shared_meter]
            + [result.meter for result in self.ok.values()]
        )
        return CostModel(self.context).breakdown(merged).total

    def failure_meter(self) -> Meter:
        """Partial work of every failed subject, merged (separate
        accounting: never part of :attr:`seconds`)."""
        return Meter.merged(entry.meter for entry in self.failures.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "BatchResult(%d subjects, %.3fs)" % (len(self), self.seconds)


class UpdateResult:
    """Outcome of one :meth:`SecureStation.update`.

    ``chunks_reencrypted`` is what the terminal actually rewrote (the
    dirty set, or every chunk on a worst-case cascade);
    ``dirty_chunks`` names them so tests and the replay defence can
    target exactly the records that changed.
    """

    __slots__ = (
        "document_id",
        "version",
        "impact",
        "dirty_chunks",
        "chunks_reencrypted",
        "total_chunks",
        "reencrypted_bytes",
        "full_reencrypt",
    )

    def __init__(
        self,
        document_id: str,
        version: int,
        impact: UpdateImpact,
        dirty_chunks: Set[int],
        chunks_reencrypted: int,
        total_chunks: int,
        reencrypted_bytes: int,
        full_reencrypt: bool,
    ):
        self.document_id = document_id
        self.version = version
        self.impact = impact
        self.dirty_chunks = set(dirty_chunks)
        self.chunks_reencrypted = chunks_reencrypted
        self.total_chunks = total_chunks
        self.reencrypted_bytes = reencrypted_bytes
        self.full_reencrypt = full_reencrypt

    @property
    def dirtied_ratio(self) -> float:
        """Re-encrypted fraction of the store (0..1)."""
        if not self.total_chunks:
            return 0.0
        return self.chunks_reencrypted / self.total_chunks

    def as_dict(self) -> Dict[str, object]:
        return {
            "document": self.document_id,
            "version": self.version,
            "chunks_reencrypted": self.chunks_reencrypted,
            "total_chunks": self.total_chunks,
            "dirtied_ratio": round(self.dirtied_ratio, 4),
            "reencrypted_bytes": self.reencrypted_bytes,
            "changed_bytes": self.impact.changed_bytes,
            "old_size": self.impact.old_size,
            "new_size": self.impact.new_size,
            "full_reencrypt": self.full_reencrypt,
            "worst_case": self.impact.is_worst_case,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "UpdateResult(%s v%d, %d/%d chunks%s)" % (
            self.document_id,
            self.version,
            self.chunks_reencrypted,
            self.total_chunks,
            ", full" if self.full_reencrypt else "",
        )


# Sentinel distinguishing "argument not passed" from any real value in
# the StationConfig/PublishOptions back-compat shims below.
_UNSET = object()


@dataclass(frozen=True)
class StationConfig:
    """Every construction-time knob of a :class:`SecureStation`.

    The frozen-dataclass form of the station's keyword soup: build one
    once (or take the defaults), hand it to :func:`repro.open_station`
    or ``SecureStation(config)``, and derive variants with
    :meth:`replace` — configs are immutable, hashable and comparable,
    so tests and topologies can share them freely.  Every field matches
    the historical ``SecureStation.__init__`` keyword of the same name;
    keyword overrides passed alongside a config win over its fields.
    """

    master_secret: bytes = field(default=b"station-master-secret", repr=False)
    context: Union[str, PlatformContext] = "smartcard"
    plan_cache_size: int = 32
    use_skip_index: bool = True
    view_cache_size: int = 128
    cache_views: bool = True
    prune: bool = True
    backend: Union[None, str, ComputeBackend] = None
    store: Optional[ChunkStore] = None

    def replace(self, **changes) -> "StationConfig":
        """A copy with ``changes`` applied (frozen-dataclass idiom)."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class PublishOptions:
    """Every per-document knob of :meth:`SecureStation.publish`.

    ``index=True`` builds the publish-time structural pre/post index
    (:mod:`repro.skipindex.structural`) over the plaintext encoding and
    ships it with the document through stores, updates and cluster
    repair; eligible queries are then served from chunk-range plans
    instead of a full streaming pass.  Off by default — the index
    costs one plaintext walk at publish and a blob beside the chunks.
    """

    scheme: str = "ECB-MHT"
    key: Optional[bytes] = None
    layout: Optional[ChunkLayout] = None
    version_floor: int = 0
    index: bool = False

    def replace(self, **changes) -> "PublishOptions":
        """A copy with ``changes`` applied (frozen-dataclass idiom)."""
        return dataclasses.replace(self, **changes)


class SecureStation:
    """Multi-client SOE facade: documents, grants, plan cache, batches.

    Parameters
    ----------
    master_secret:
        Station-resident secret; derives per-document keys (when none
        is supplied at :meth:`publish`) and per-session link keys.
    context:
        Platform context used for simulated-cost accounting.
    plan_cache_size:
        Capacity of the compiled-plan LRU (entries, not bytes).
    use_skip_index:
        The TCSBR/Brute-Force switch, station-wide.
    view_cache_size:
        Capacity of the materialized-view LRU (entries).  Entries are
        keyed by ``(document id, version, subject, policy digest,
        query)``; the version key plus proactive invalidation on
        :meth:`update`/:meth:`publish` guarantee a stale view is never
        served.  ``cache_views=False`` disables the cache (every
        request runs the full pipeline — the cold path).
    prune:
        Skip-pruned replay on the serving path (see
        :class:`~repro.accesscontrol.evaluator.StreamingEvaluator`);
        effective only with ``use_skip_index``.
    backend:
        Compute backend for the crypto hot paths: ``"pure"``,
        ``"native"``, ``"pool"``, ``"auto"``/``None`` (auto-detect), or
        a :class:`~repro.compute.ComputeBackend` instance.  Every
        backend produces byte-identical views; only speed differs, and
        the pool backend degrades to the serial in-process path on any
        worker failure.
    store:
        Where published documents live: a
        :class:`~repro.store.ChunkStore` instance, or ``None`` for the
        in-process :class:`~repro.store.MemoryStore` (the historical
        behaviour).  A persistent store (:class:`~repro.store.LogStore`)
        makes the corpus survive process death: on restart the station
        opened on the same directory serves byte-identical views at the
        pre-crash versions, replay protection intact.  The station owns
        the store it is given and closes it in :meth:`close`.
    """

    def __init__(
        self,
        config: Union[StationConfig, bytes, None] = None,
        context=_UNSET,
        plan_cache_size=_UNSET,
        use_skip_index=_UNSET,
        view_cache_size=_UNSET,
        cache_views=_UNSET,
        prune=_UNSET,
        backend=_UNSET,
        store=_UNSET,
        master_secret=_UNSET,
    ):
        # Back-compat shim: the first positional slot historically held
        # ``master_secret`` (bytes); it now also accepts a
        # :class:`StationConfig`.  Explicit keywords override config
        # fields, so ``SecureStation(cfg, prune=False)`` works.
        if isinstance(config, StationConfig):
            base = config
        elif config is None:
            base = StationConfig()
        else:
            if master_secret is not _UNSET:
                raise TypeError("master_secret passed twice")
            base = StationConfig()
            master_secret = config
        overrides = {
            name: value
            for name, value in (
                ("master_secret", master_secret),
                ("context", context),
                ("plan_cache_size", plan_cache_size),
                ("use_skip_index", use_skip_index),
                ("view_cache_size", view_cache_size),
                ("cache_views", cache_views),
                ("prune", prune),
                ("backend", backend),
                ("store", store),
            )
            if value is not _UNSET
        }
        cfg = base.replace(**overrides) if overrides else base
        if cfg.plan_cache_size < 1:
            raise ValueError("plan_cache_size must be >= 1")
        if cfg.view_cache_size < 1:
            raise ValueError("view_cache_size must be >= 1")
        self.config = cfg
        self._secret = cfg.master_secret
        self.platform = (
            CONTEXTS[cfg.context] if isinstance(cfg.context, str) else cfg.context
        )
        self.use_skip_index = cfg.use_skip_index
        self.plan_cache_size = cfg.plan_cache_size
        self.view_cache_size = cfg.view_cache_size
        self.cache_views = cfg.cache_views
        self.prune = cfg.prune
        self.backend = resolve_backend(cfg.backend)
        self.store = cfg.store if cfg.store is not None else MemoryStore()
        # Disk stores rebuild cipher schemes at manifest-replay time;
        # binding the backend gets them the accelerated factories.
        self.store.bind_backend(self.backend)
        self.stats = StationStats()
        self._grants: Dict[Tuple[str, str], Policy] = {}
        self._plans: "OrderedDict[Tuple[str, str], PolicyPlan]" = OrderedDict()
        self._views: (
            "OrderedDict[Tuple[str, int, str, str, Optional[str]], _CachedView]"
        ) = OrderedDict()
        self._session_counter = 0
        self._closed = False
        self._listeners: List[Callable[[str, int], None]] = []
        # One station serves many server executor threads concurrently:
        # everything mutable here (session counter, plan LRU, grants,
        # stats) is guarded by this lock; the document map lives in the
        # store, which guards itself.  Evaluation runs outside both —
        # published documents are immutable snapshots (updates swap in
        # a new one copy-on-write).
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Key derivation
    # ------------------------------------------------------------------
    def _derive_key(self, label: str) -> bytes:
        return hashlib.sha1(self._secret + b"|" + label.encode("utf-8")).digest()[:16]

    def _derive_session_key(self, subject: str, session_id: int) -> bytes:
        return self._derive_key("session|%s|%d" % (subject, session_id))

    # ------------------------------------------------------------------
    # Publishing and grants
    # ------------------------------------------------------------------
    def publish(
        self,
        document_id: str,
        document: Union[str, Node, PreparedDocument],
        options: Union[PublishOptions, str, None] = None,
        key=_UNSET,
        layout=_UNSET,
        version_floor=_UNSET,
        scheme=_UNSET,
        index=_UNSET,
    ) -> PreparedDocument:
        """Register a document: parse/encode/encrypt it (publisher
        pipeline) unless an already-:class:`PreparedDocument` is given.

        ``options`` is a :class:`PublishOptions`; the historical
        keywords (``scheme``, ``key``, ``layout``, ``version_floor``,
        plus the new ``index``) still work and override its fields, and
        a plain string in the third positional slot is read as the
        legacy ``scheme`` argument.  ``index=True`` builds (or, for a
        :class:`PreparedDocument` arriving without one, backfills) the
        structural pre/post index served by the indexed query path.

        Re-publishing an existing id continues its version chain: the
        new store is encrypted one version above anything this station
        ever served under the (deterministic) document key, so chunk
        records captured from *any* earlier generation fail
        verification when spliced into the new one, and subscribers
        get an invalidation.  A caller handing in an external
        :class:`PreparedDocument` controls its own encryption version;
        replay protection across generations then holds only if it was
        protected above the prior version (the station still bumps its
        version counter monotonically either way).

        ``version_floor`` is the failover hook: when a cluster gateway
        re-publishes a document onto a replacement node, the node has
        never seen the id (its local chain would restart at 0), but
        clients already hold version trailers from the failed primary.
        Publishing with ``version_floor=v`` guarantees both the
        station's version counter and (on the source-document path)
        the encryption version start at ``v`` or above, so the PR 3
        version chain — and with it replay protection — survives the
        move to the new node.
        """
        if isinstance(options, str):
            if scheme is not _UNSET:
                raise TypeError("scheme passed twice")
            scheme = options
            options = None
        base = options if options is not None else PublishOptions()
        option_overrides = {
            name: value
            for name, value in (
                ("scheme", scheme),
                ("key", key),
                ("layout", layout),
                ("version_floor", version_floor),
                ("index", index),
            )
            if value is not _UNSET
        }
        opts = base.replace(**option_overrides) if option_overrides else base
        scheme, key, layout = opts.scheme, opts.key, opts.layout
        version_floor = opts.version_floor
        if key is None:
            key = self._derive_key("document|%s" % document_id)
        prior = self.store.version(document_id)
        next_version = 0 if prior is None else prior + 1
        next_version = max(next_version, version_floor)
        encoded = None
        structural = None
        if isinstance(document, PreparedDocument):
            prepared = document
            if opts.index and prepared.index is None:
                # Backfill: an external publisher (or a cluster repair
                # copying from an unindexed replica) may hand over bytes
                # without an index — build it from the encoding so the
                # served document is indexed either way.
                prepared = PreparedDocument(
                    prepared.encoded,
                    prepared.scheme,
                    prepared.secure,
                    index=build_structural_index(prepared.encoded),
                )
        elif self.store.persistent:
            # Persistent publish streams: parse + encode here, then the
            # scheme's record generator flows straight into the store's
            # log (at most one segment buffered), so a document larger
            # than RAM publishes without its ciphertext ever
            # materializing.
            pipeline = DocumentPipeline(
                [ParseStage(), EncodeStage()], context=self.platform
            )
            if isinstance(document, Node):
                ctx = pipeline.run(tree=document)
            else:
                ctx = pipeline.run(source=document)
            encoded = ctx.encoded
            if opts.index:
                structural = build_structural_index(encoded)
            prepared = None
        else:
            pipeline = DocumentPipeline.publisher(
                scheme=scheme,
                key=key,
                layout=layout,
                context=self.platform,
                version=next_version,
                backend=self.backend,
                index=opts.index,
            )
            if isinstance(document, Node):
                ctx = pipeline.run(tree=document)
            else:
                ctx = pipeline.run(source=document)
            prepared = ctx.prepared
        with self._lock:
            if encoded is not None:
                version = next_version
                served = self.store.put_stream(
                    document_id,
                    encoded,
                    make_scheme(
                        scheme, key=key, layout=layout, backend=self.backend
                    ),
                    key,
                    version,
                    index=structural,
                )
            else:
                version = max(prepared.secure.version, next_version)
                served = self.store.put(document_id, prepared, key, version)
            listeners = list(self._listeners) if prior is not None else []
            if prior is not None:
                self._invalidate_views(document_id)
        for listener in listeners:
            listener(document_id, version)
        return served

    def document(self, document_id: str) -> PreparedDocument:
        return self._snapshot(document_id)[0]

    def _snapshot(self, document_id: str) -> Tuple[PreparedDocument, bytes, int]:
        """One atomic read of ``(prepared, key, version)`` — the
        snapshot a request evaluates and the version it reports must
        come from the same read (the store entry is one immutable
        object, swapped whole on update)."""
        entry = self.store.get(document_id)
        if entry is None:
            raise StationError("unknown document %r" % document_id)
        return entry.as_tuple()

    def document_version(self, document_id: str) -> int:
        """Current update version of a published document (0 initially)."""
        version = self.store.version(document_id)
        if version is None:
            raise StationError("unknown document %r" % document_id)
        return version

    def document_versions(self) -> Dict[str, int]:
        """Every published document id with its current version — the
        health-probe payload (PONG) a cluster gateway uses to verify a
        backend is alive *and* its replicas are in version lockstep."""
        return self.store.versions()

    def grant(
        self, document_id: str, policy: Policy, subject: Optional[str] = None
    ) -> None:
        """Attach ``policy`` to ``(document, subject)``; the subject
        defaults to the policy's own."""
        if document_id not in self.store:
            raise StationError("unknown document %r" % document_id)
        with self._lock:
            subject = policy.subject if subject is None else subject
            self._grants[(document_id, subject)] = policy

    def revoke(self, document_id: str, subject: str) -> None:
        with self._lock:
            self._grants.pop((document_id, subject), None)

    def has_grant(self, document_id: str, subject: str) -> bool:
        """Does ``subject`` hold a grant on ``document_id``?  (The
        server's authorization check for remote UPDATE frames.)"""
        with self._lock:
            return (document_id, subject) in self._grants

    def _policy_for(self, document_id: str, subject: str) -> Policy:
        with self._lock:
            try:
                return self._grants[(document_id, subject)]
            except KeyError:
                raise StationError(
                    "no grant for subject %r on document %r" % (subject, document_id)
                )

    # ------------------------------------------------------------------
    # Plan cache
    # ------------------------------------------------------------------
    def plan_for(self, policy: Union[Policy, PolicyPlan]) -> PolicyPlan:
        """Compiled plan for ``policy``, via the (subject, digest) LRU."""
        if isinstance(policy, PolicyPlan):
            return policy
        key = (policy.subject, policy_digest(policy))
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.stats.plan_hits += 1
                return plan
            self.stats.plan_misses += 1
        # Compile outside the lock (it can take milliseconds); a racing
        # thread may compile the same plan, the last insert wins.
        plan = compile_policy(policy)
        with self._lock:
            self._plans[key] = plan
            while len(self._plans) > self.plan_cache_size:
                self._plans.popitem(last=False)
                self.stats.plan_evictions += 1
        return plan

    def cached_plans(self) -> int:
        with self._lock:
            return len(self._plans)

    # ------------------------------------------------------------------
    # Updates (the live path of Section 4.1)
    # ------------------------------------------------------------------
    def subscribe(self, listener: Callable[[str, int], None]) -> None:
        """Register ``listener(document_id, new_version)``, called after
        every successful :meth:`update` (outside the station lock)."""
        with self._lock:
            self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[str, int], None]) -> None:
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    def update(self, document_id: str, op: UpdateOp) -> UpdateResult:
        """Apply one edit to a published document, live.

        The pipeline is the paper's update discipline end-to-end:
        decode the current tree, apply the edit, re-encode reusing the
        tag dictionary, diff against the old encoding and re-encrypt
        **only the dirtied chunks** under a bumped document version —
        unless the edit hits the paper's worst case (dictionary growth
        or a size-field width jump), which cascades into a full
        re-encryption.  The swap is copy-on-write: in-flight readers
        finish against the old immutable snapshot; the new version is
        bound into every rewritten chunk so replaying a pre-update
        record raises :class:`~repro.crypto.integrity.IntegrityError`.
        Cached plans of subjects granted on the document are dropped,
        and every subscriber is notified of the new version.

        The heavy pipeline (decode, re-encode, diff, re-encrypt) runs
        *outside* the station lock against the immutable snapshot, so
        queries keep flowing during an update; the swap itself is an
        optimistic compare-and-swap that retries if a concurrent update
        won the race — versions always form a linear chain.
        """
        while True:
            prepared, key, base_version = self._snapshot(document_id)
            old_encoded = prepared.encoded
            if not old_encoded.data:
                raise StationError(
                    "document %r has no plaintext encoding to update"
                    % document_id
                )
            if not isinstance(old_encoded.data, (bytes, bytearray)):
                # A store-loaded document decrypts its encoding lazily;
                # the decode/diff below is byte-at-a-time work, so pull
                # it into plain bytes once up front.
                old_encoded = EncodedDocument(
                    bytes(old_encoded.data),
                    old_encoded.dictionary,
                    old_encoded.stats,
                    old_encoded.root_offset,
                )
            old_tree = decode_document(old_encoded)
            new_tree = op.apply(old_tree)
            new_encoded, dictionary_grew = reencode_after(old_encoded, new_tree)
            layout = prepared.scheme.layout
            impact = impact_between(
                old_encoded,
                new_encoded,
                old_tree,
                new_tree,
                layout=layout,
                dictionary_grew=dictionary_grew,
            )
            version = base_version + 1
            total_chunks = layout.chunk_count(len(new_encoded.data))
            full = impact.is_worst_case
            if full:
                dirty = set(range(total_chunks))
            else:
                dirty = set()
                for start, end in impact.changed_ranges:
                    dirty.update(layout.chunks_covering(start, end - start))
            new_secure, reencrypted = prepared.scheme.reencrypt(
                prepared.secure, new_encoded.data, dirty, version
            )
            # Keep an indexed document indexed across the edit: reuse
            # the old index when the change stayed inside text payloads
            # (offsets unmoved), rebuild on anything structural.  Runs
            # outside the lock like the rest of the heavy pipeline.
            old_index = getattr(prepared, "index", None)
            new_index = None
            index_mode = None
            if old_index is not None:
                new_index, index_mode = refresh_structural_index(
                    old_index, new_encoded, impact
                )
            with self._lock:
                current = self.store.get(document_id)
                if current is None:
                    raise StationError("unknown document %r" % document_id)
                if current.prepared is not prepared:
                    continue  # a concurrent update won; redo on its result
                self.store.apply_update(
                    document_id,
                    PreparedDocument(
                        new_encoded, prepared.scheme, new_secure, index=new_index
                    ),
                    version,
                    dirty_chunks=dirty,
                )
                if index_mode == "incremental":
                    self.stats.index_incrementals += 1
                elif index_mode == "rebuild":
                    self.stats.index_rebuilds += 1
                # Conservative cache coherence: drop compiled plans of
                # every subject granted on the updated document, so
                # nothing stale keyed off the old content survives the
                # version bump.
                subjects = {
                    s for (doc, s) in self._grants if doc == document_id
                }
                for cache_key in [k for k in self._plans if k[0] in subjects]:
                    del self._plans[cache_key]
                self._invalidate_views(document_id)
                self.stats.updates += 1
                self.stats.chunks_reencrypted += reencrypted
                listeners = list(self._listeners)
            break
        result = UpdateResult(
            document_id=document_id,
            version=version,
            impact=impact,
            dirty_chunks={index for index in dirty if index < total_chunks},
            chunks_reencrypted=reencrypted,
            total_chunks=total_chunks,
            reencrypted_bytes=reencrypted * layout.stored_chunk_size()
            if prepared.scheme.has_digest
            else reencrypted * layout.chunk_size,
            full_reencrypt=full,
        )
        for listener in listeners:
            listener(document_id, version)
        return result

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def connect(self, subject: str) -> StationSession:
        with self._lock:
            self._session_counter += 1
            session_id = self._session_counter
            self.stats.sessions_opened += 1
        return StationSession(self, subject, session_id)

    def evaluate(
        self,
        document_id: str,
        subject_or_policy: Union[str, Policy, PolicyPlan],
        query=None,
        tracer=None,
        trace: int = 0,
        parent_span: int = 0,
    ) -> SessionResult:
        """One request: the authorized view of one document for one
        subject (grant lookup) or explicit policy/plan.

        Repeat requests are served from the version-keyed view cache:
        the SOE cost model still charges the simulated Table-1 costs of
        the *original* evaluation (the cached meter/breakdown travel
        with the entry), so simulated seconds are identical whether a
        request hit or missed — only real wall-clock work disappears.

        With a ``tracer`` (``repro.obs.trace.Tracer``) and a nonzero
        ``trace`` id, the request records spans under ``parent_span``:
        one ``view-cache`` span on a hit, or one span per pipeline
        stage (with the stage's Meter counts as attributes) on a miss.
        Untraced requests (``trace`` 0, the default) skip every tracing
        branch — the cached hot path stays within the ratio guard of
        ``benchmarks/test_obs_bench.py``.
        """
        traced = tracer is not None and trace != 0
        t_start = perf_counter() if traced else 0.0
        prepared, _key, version = self._snapshot(document_id)
        if isinstance(subject_or_policy, str):
            policy = self._policy_for(document_id, subject_or_policy)
        else:
            policy = subject_or_policy
        plan = self.plan_for(policy)
        query_plan = plan.query_plan(query)
        cache_key = None
        if self.cache_views:
            cache_key = (
                document_id,
                version,
                plan.subject,
                plan.digest,
                None if query_plan is None else str(query_plan.path),
            )
            with self._lock:
                entry = self._views.get(cache_key)
                if entry is not None:
                    self._views.move_to_end(cache_key)
                    self.stats.view_hits += 1
                    self.stats.requests += 1
                else:
                    self.stats.view_misses += 1
            if entry is not None:
                # Fresh list per hit: every evaluate() has always
                # returned a caller-owned event list, and a caller
                # mutating it must not corrupt the cache entry.
                result = SessionResult(
                    list(entry.events),
                    entry.meter.copy(),
                    entry.breakdown,
                    self.platform,
                )
                result.document_version = version
                result.cache_hit = True
                result.cache_entry = entry
                result.indexed = entry.indexed
                if traced:
                    tracer.record(
                        trace,
                        "view-cache",
                        t_start,
                        perf_counter(),
                        parent=parent_span,
                        attrs={"cached": True, "events": len(entry.events)},
                    )
                return result
        with self._lock:
            self.stats.requests += 1
        # ---- structural-index serving decision -----------------------
        # Eligible iff the document shipped an index that is fresh
        # against the served snapshot and the query compiled to a
        # wildcard-free structural path.  Anything else streams — the
        # streaming evaluator is the oracle the indexed path must match
        # byte for byte, and the universal fallback.
        index = getattr(prepared, "index", None)
        serve_indexed = (
            self.use_skip_index
            and index is not None
            and query_plan is not None
            and query_plan.structural is not None
        )
        if serve_indexed and not index.matches_document(prepared.encoded):
            serve_indexed = False
            with self._lock:
                self.stats.index_stale += 1
        ctx = None
        if serve_indexed:
            layout = prepared.scheme.layout
            total_chunks = layout.chunk_count(len(prepared.encoded.data))
            candidates = index.match(
                query_plan.structural, prepared.encoded.dictionary
            )
            if not candidates:
                # The structural superset is empty: no element matches
                # the query's path, so the view is provably empty before
                # a single chunk is transferred or decrypted.
                meter = Meter()
                breakdown = CostModel(self.platform).breakdown(meter)
                view: List[Event] = []
                with self._lock:
                    self.stats.indexed_requests += 1
                    self.stats.index_early_exits += 1
                    self.stats.index_chunks_total += total_chunks
            else:
                planned = index.planned_chunks(candidates, layout)
                with self._lock:
                    self.stats.indexed_requests += 1
                    self.stats.index_planned_chunks += len(planned)
                    self.stats.index_chunks_total += total_chunks
                pipeline = DocumentPipeline.consumer(
                    plan,
                    query=query_plan,
                    use_skip_index=self.use_skip_index,
                    context=self.platform,
                    prune=self.prune,
                    index=index,
                )
                ctx = pipeline.run(prepared=prepared)
                view, meter, breakdown = ctx.view, ctx.meter, ctx.breakdown
        else:
            with self._lock:
                self.stats.streamed_requests += 1
            pipeline = DocumentPipeline.consumer(
                plan,
                query=query_plan,
                use_skip_index=self.use_skip_index,
                context=self.platform,
                prune=self.prune,
            )
            ctx = pipeline.run(prepared=prepared)
            view, meter, breakdown = ctx.view, ctx.meter, ctx.breakdown
        if traced and ctx is not None:
            self._record_pipeline_spans(tracer, trace, parent_span, ctx)
        result = SessionResult(view, meter, breakdown, self.platform)
        result.document_version = version
        result.indexed = serve_indexed
        if cache_key is not None:
            entry = _CachedView(
                view, meter.copy(), breakdown, indexed=serve_indexed
            )
            result.cache_entry = entry
            with self._lock:
                self._views[cache_key] = entry
                self._views.move_to_end(cache_key)
                while len(self._views) > self.view_cache_size:
                    self._views.popitem(last=False)
                    self.stats.view_evictions += 1
        return result

    # Meter fields attached to each pipeline-stage span.  The meter is
    # shared across the run (decryption happens lazily while the
    # evaluator pulls), so these are *request totals* placed on the
    # stage they conceptually belong to — the span durations are what
    # localize the wall-clock.
    _SPAN_METER_ATTRS = {
        "stream-decrypt": ("bytes_decrypted", "bytes_hashed", "chunks_accessed"),
        "evaluate": ("events", "token_ops", "skipped_subtrees", "pruned_subtrees"),
        "serialize": ("bytes_delivered",),
    }

    def _record_pipeline_spans(self, tracer, trace, parent_span, ctx) -> None:
        """Turn a finished pipeline run's stage timings into spans."""
        meter = ctx.meter
        for name, started, ended in ctx.stage_times:
            attrs = {
                field: getattr(meter, field)
                for field in self._SPAN_METER_ATTRS.get(name, ())
                if getattr(meter, field)
            }
            if name == "stream-decrypt":
                # The compute-backend dispatch decision rides on the
                # decrypt span: which strategy served the crypto work.
                attrs["backend"] = self.backend.name
            tracer.record(
                trace,
                "stage:%s" % name,
                started,
                ended,
                parent=parent_span,
                attrs=attrs,
            )

    def cached_views(self) -> int:
        with self._lock:
            return len(self._views)

    def _invalidate_views(self, document_id: str) -> None:
        """Drop every cached view of ``document_id`` (all versions).

        Correctness does not depend on this — the version in the cache
        key already makes stale entries unreachable — but dead entries
        would otherwise squat in the LRU until churn evicts them.
        """
        with self._lock:
            stale = [key for key in self._views if key[0] == document_id]
            for key in stale:
                del self._views[key]
            self.stats.view_invalidations += len(stale)

    def stream(
        self,
        document_id: str,
        subject_or_policy: Union[str, Policy, PolicyPlan],
        query=None,
        chunk_size: int = 4096,
        sealer=None,
        tracer=None,
        trace: int = 0,
        parent_span: int = 0,
    ) -> ViewStream:
        """Evaluate and hand the serialized view off for chunked
        delivery (the network layer's entry point).

        The serialized payload is memoized on the view-cache entry, so
        a repeat remote query skips the NFA pass *and* serialization —
        what remains per request is the per-session link reseal."""
        result = self.evaluate(
            document_id,
            subject_or_policy,
            query=query,
            tracer=tracer,
            trace=trace,
            parent_span=parent_span,
        )
        entry = result.cache_entry
        if entry is not None and entry.payload is not None:
            payload = entry.payload
        else:
            traced = tracer is not None and trace != 0
            t_serialize = perf_counter() if traced else 0.0
            payload = serialize_events(result.events).encode("utf-8")
            if traced:
                tracer.record(
                    trace,
                    "serialize-payload",
                    t_serialize,
                    perf_counter(),
                    parent=parent_span,
                    attrs={"bytes": len(payload)},
                )
            if entry is not None:
                entry.payload = payload
        return ViewStream(result, payload, chunk_size, sealer=sealer)

    def evaluate_many(
        self,
        document_id: str,
        subjects: Sequence[Union[str, Policy, PolicyPlan]],
        query=None,
    ) -> BatchResult:
        """Serve every subject in one pass over the encrypted chunks.

        The store is transferred, decrypted and integrity-verified
        exactly once (the ``shared_meter`` of the result); each
        subject's compiled plan then runs over the decoded event stream
        in SOE memory with exact Skip-index metadata.

        Per-subject problems — a missing grant, a policy that fails to
        compile, an evaluation crash — become :class:`SubjectFailure`
        entries in the returned :class:`BatchResult` instead of
        exceptions, so one bad subject cannot kill a multi-client
        response.  Batch-level misuse (unknown document, duplicate
        subjects) still raises.
        """
        prepared = self.document(document_id)
        plans: List[Tuple[str, Union[PolicyPlan, SubjectFailure]]] = []
        for entry in subjects:
            if isinstance(entry, str):
                label = entry
            else:
                label = getattr(entry, "subject", "") or "subject%d" % len(plans)
            if any(label == existing for existing, _plan in plans):
                raise ValueError(
                    "duplicate subject %r in evaluate_many batch" % label
                )
            try:
                if isinstance(entry, str):
                    policy = self._policy_for(document_id, entry)
                else:
                    policy = entry
                plans.append((label, self.plan_for(policy)))
            except StationError as exc:
                plans.append((label, SubjectFailure(label, "no-grant", str(exc))))
            except Exception as exc:
                plans.append(
                    (label, SubjectFailure(label, "compile-error", str(exc)))
                )

        shared_meter = Meter()
        events = self._decode_once(prepared, shared_meter)

        per_subject: "OrderedDict[str, Union[SessionResult, SubjectFailure]]" = (
            OrderedDict()
        )
        cost_model = CostModel(self.platform)
        for label, plan in plans:
            if isinstance(plan, SubjectFailure):
                per_subject[label] = plan
                with self._lock:
                    self.stats.batch_failures += 1
                continue
            meter = Meter()
            try:
                navigator = EventListNavigator(
                    events, provide_meta=self.use_skip_index, meter=meter
                )
                evaluator = StreamingEvaluator(
                    plan,
                    query=plan.query_plan(query),
                    meter=meter,
                    enable_skipping=self.use_skip_index,
                    enable_pruning=self.prune,
                )
                view = evaluator.run(navigator)
            except Exception as exc:
                # The partial meter travels with the failure — counted
                # apart from every served total (see SubjectFailure).
                per_subject[label] = SubjectFailure(
                    label, "evaluate", str(exc), meter=meter
                )
                with self._lock:
                    self.stats.batch_failures += 1
                    self.stats.failed_requests += 1
                continue
            meter.bytes_delivered += delivered_bytes(view)
            per_subject[label] = SessionResult(
                view, meter, cost_model.breakdown(meter), self.platform
            )
            with self._lock:
                self.stats.requests += 1
        with self._lock:
            self.stats.batches += 1
            self.stats.batch_subjects += len(plans)
        return BatchResult(per_subject, shared_meter, self.platform)

    # ------------------------------------------------------------------
    def _decode_once(
        self, prepared: PreparedDocument, meter: Meter
    ) -> List[Event]:
        """Decrypt + verify + decode the full store into an event list,
        charging every primitive cost to ``meter`` exactly once."""
        # A pool backend may decrypt + verify the whole store across
        # workers in one shot (meter counts fold back in); it declines
        # (None) for small documents or unsupported schemes, and any
        # worker failure also lands here — the serial path below is the
        # universal fallback, so a dying pool never fails a batch.
        plain = self.backend.decrypt_document(prepared.scheme, prepared.secure, meter)
        if plain is not None:
            data = plain
        else:
            reader = prepared.scheme.reader(prepared.secure, meter)
            data = SecureBytes(reader)
        navigator = SkipIndexNavigator(
            data,
            dictionary=prepared.encoded.dictionary,
            start_offset=prepared.encoded.root_offset,
            meter=meter,
            provide_meta=False,
        )
        events: List[Event] = []
        while True:
            item = navigator.next()
            if item is None:
                return events
            events.append(Event(item[0], item[1]))

    def close(self) -> None:
        """Release the compute backend (pool workers, if any) and the
        document store (log/manifest handles, mmaps).  Idempotent —
        every owner in a teardown path may call it."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.backend.close()
        self.store.close()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __enter__(self) -> "SecureStation":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SecureStation(%d documents, %d grants, %d cached plans)" % (
            len(self.store),
            len(self._grants),
            len(self._plans),
        )
