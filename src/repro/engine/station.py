"""SecureStation: one SOE serving many clients (the server setting).

The paper's SOE is provisioned once and then serves a stream of
requests; nothing in it is per-request except the token state.  The
seed's :class:`~repro.soe.session.SecureSession` modelled exactly one
``(document, subject)`` run.  A :class:`SecureStation` is the
multi-client generalization the ROADMAP's production framing needs:

* a **plan cache** — an LRU keyed by ``(subject, policy digest)``
  holding compiled :class:`~repro.engine.plans.PolicyPlan` objects, so
  a returning subject (or any subject sharing a role policy) never
  recompiles automata;
* **per-session key material** — each :meth:`connect` derives a session
  key from the station's master secret, used to seal authorized views
  on the SOE -> client link (the document keys never leave the station);
* **batched evaluation** — :meth:`evaluate_many` serves N subjects over
  one encrypted document in a *single pass over the chunks*: the store
  is transferred, decrypted and integrity-checked once into a decoded
  event stream, then every subject's plan is evaluated over it
  in-memory.  For one subject the per-request Skip-index path is
  cheaper; for N subjects with overlapping needs the batch amortizes
  the dominant communication + decryption costs N-fold.
"""

from __future__ import annotations

import hashlib
import hmac
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.accesscontrol.evaluator import StreamingEvaluator
from repro.accesscontrol.model import Policy
from repro.accesscontrol.navigation import EventListNavigator
from repro.crypto.integrity import SecureBytes
from repro.crypto.modes import decrypt_positioned, encrypt_positioned, pad_to_block
from repro.crypto.xtea import Xtea
from repro.engine.pipeline import DocumentPipeline
from repro.engine.plans import PolicyPlan, compile_policy, policy_digest
from repro.metrics import Meter
from repro.skipindex.decoder import SkipIndexNavigator
from repro.soe.costmodel import CONTEXTS, CostModel, PlatformContext
from repro.soe.session import PreparedDocument, SessionResult, delivered_bytes
from repro.xmlkit.dom import Node
from repro.xmlkit.events import Event
from repro.xmlkit.serializer import serialize_events


class StationError(KeyError):
    """Unknown document, subject or grant."""


# ----------------------------------------------------------------------
# Link sealing (SOE -> client)
# ----------------------------------------------------------------------
def seal_payload(session_key: bytes, payload: bytes) -> bytes:
    """MAC-then-encrypt ``payload`` under a session link key.

    The body is ``len || payload || HMAC-SHA1(payload)``, padded and
    XTEA-encrypted.  The inverse is :func:`open_sealed`; both ends of
    the SOE -> client link (station *and* the remote client SDK) share
    this module-level pair so the wire format is defined exactly once.
    """
    mac = hmac.new(session_key, payload, hashlib.sha1).digest()
    body = len(payload).to_bytes(4, "big") + payload + mac
    cipher = Xtea(session_key)
    return encrypt_positioned(cipher, pad_to_block(body), 0)


def open_sealed(session_key: bytes, blob: bytes) -> bytes:
    """Inverse of :func:`seal_payload`; raises ``ValueError`` on a bad MAC."""
    cipher = Xtea(session_key)
    body = decrypt_positioned(cipher, blob, 0)
    length = int.from_bytes(body[:4], "big")
    if length > len(body) - 4:
        raise ValueError("sealed view is truncated")
    payload = body[4 : 4 + length]
    mac = body[4 + length : 4 + length + 20]
    expected = hmac.new(session_key, payload, hashlib.sha1).digest()
    if not hmac.compare_digest(mac, expected):
        raise ValueError("sealed view failed authentication")
    return payload


class StationStats:
    """Operational counters of one station (cache behaviour, volume)."""

    __slots__ = (
        "plan_hits",
        "plan_misses",
        "plan_evictions",
        "sessions_opened",
        "requests",
        "batches",
        "batch_subjects",
        "batch_failures",
    )

    def __init__(self):
        for field in self.__slots__:
            setattr(self, field, 0)

    def as_dict(self) -> Dict[str, int]:
        return {field: getattr(self, field) for field in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "StationStats(%s)" % self.as_dict()


class StationSession:
    """One connected client: a subject plus derived key material.

    The session key is an HKDF-style derivation from the station's
    master secret, the subject and a per-connection counter; it seals
    authorized views on the way out so the untrusted terminal between
    SOE and client learns nothing (document keys stay inside).
    """

    __slots__ = ("station", "subject", "session_id", "session_key")

    def __init__(self, station: "SecureStation", subject: str, session_id: int):
        self.station = station
        self.subject = subject
        self.session_id = session_id
        self.session_key = station._derive_session_key(subject, session_id)

    # ------------------------------------------------------------------
    def view(self, document_id: str, query=None) -> SessionResult:
        """Authorized view of ``document_id`` under this subject's grant."""
        return self.station.evaluate(document_id, self.subject, query=query)

    def sealed_view(self, document_id: str, query=None) -> bytes:
        """Like :meth:`view`, but serialized and sealed for the link."""
        result = self.view(document_id, query=query)
        return self.seal(serialize_events(result.events).encode("utf-8"))

    def seal(self, payload: bytes) -> bytes:
        return seal_payload(self.session_key, payload)

    def open(self, blob: bytes) -> bytes:
        """Client-side inverse of :meth:`seal` (tests / simulation)."""
        return open_sealed(self.session_key, blob)

    def stream_view(
        self,
        document_id: str,
        query=None,
        chunk_size: int = 4096,
        seal: bool = False,
    ) -> "ViewStream":
        """Streaming hand-off for the network layer: evaluate, then
        expose the serialized view as bounded chunks (optionally sealed
        per chunk under this session's link key)."""
        return self.station.stream(
            document_id,
            self.subject,
            query=query,
            chunk_size=chunk_size,
            sealer=self.seal if seal else None,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "StationSession(%s, #%d)" % (self.subject, self.session_id)


class ViewStream:
    """An evaluated authorized view, packaged for chunked delivery.

    The streaming hand-off between the station and the network layer
    (:mod:`repro.server.service`): evaluation already happened, so
    ``result`` carries the full :class:`SessionResult` for the trailer
    metadata, while :meth:`chunks` exposes the serialized payload as
    bounded slices a writer can flow-control — optionally sealed one
    chunk at a time under a session link key.
    """

    __slots__ = ("result", "payload", "chunk_size", "_sealer")

    def __init__(self, result, payload: bytes, chunk_size: int, sealer=None):
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.result = result
        self.payload = payload
        self.chunk_size = chunk_size
        self._sealer = sealer

    @property
    def payload_bytes(self) -> int:
        return len(self.payload)

    @property
    def chunk_count(self) -> int:
        return (len(self.payload) + self.chunk_size - 1) // self.chunk_size

    @property
    def sealed(self) -> bool:
        return self._sealer is not None

    def chunks(self):
        """Yield the payload as ``chunk_size`` slices (sealed if asked).

        Sealing happens lazily, chunk by chunk, so a slow consumer
        never forces the whole view to be sealed up front.
        """
        for start in range(0, len(self.payload), self.chunk_size):
            chunk = self.payload[start : start + self.chunk_size]
            yield self._sealer(chunk) if self._sealer else chunk

    def __iter__(self):
        return self.chunks()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ViewStream(%d bytes, %d chunks%s)" % (
            len(self.payload),
            self.chunk_count,
            ", sealed" if self.sealed else "",
        )


class SubjectFailure:
    """Structured per-subject failure inside a batch.

    One client's bad grant or crashing predicate must not kill the
    whole multi-client response, so :meth:`SecureStation.evaluate_many`
    records the failure in place of that subject's
    :class:`SessionResult` and keeps serving the rest.
    """

    __slots__ = ("subject", "kind", "message")

    ok = False

    def __init__(self, subject: str, kind: str, message: str):
        self.subject = subject
        self.kind = kind
        self.message = message

    def as_dict(self) -> Dict[str, str]:
        return {"subject": self.subject, "kind": self.kind, "message": self.message}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SubjectFailure(%s: %s, %r)" % (self.subject, self.kind, self.message)


class BatchResult:
    """Outcome of :meth:`SecureStation.evaluate_many`.

    ``per_subject`` maps subject -> :class:`SessionResult` (success) or
    :class:`SubjectFailure` (structured error); meters of successful
    entries count only that subject's evaluation and delivery, while
    ``shared_meter`` carries the one-time transfer/decrypt/integrity
    cost of the single pass over the chunks.
    """

    def __init__(
        self,
        per_subject: "OrderedDict[str, SessionResult]",
        shared_meter: Meter,
        context: PlatformContext,
    ):
        self.per_subject = per_subject
        self.shared_meter = shared_meter
        self.context = context

    def __getitem__(self, subject: str) -> SessionResult:
        return self.per_subject[subject]

    def __iter__(self):
        return iter(self.per_subject.items())

    def __len__(self) -> int:
        return len(self.per_subject)

    @property
    def ok(self) -> "OrderedDict[str, SessionResult]":
        """Successful entries only."""
        return OrderedDict(
            (subject, entry)
            for subject, entry in self.per_subject.items()
            if not isinstance(entry, SubjectFailure)
        )

    @property
    def failures(self) -> "OrderedDict[str, SubjectFailure]":
        """Failed entries only (empty when the whole batch succeeded)."""
        return OrderedDict(
            (subject, entry)
            for subject, entry in self.per_subject.items()
            if isinstance(entry, SubjectFailure)
        )

    @property
    def seconds(self) -> float:
        """Simulated wall time of the whole batch on the platform."""
        merged = Meter.merged(
            [self.shared_meter]
            + [result.meter for result in self.ok.values()]
        )
        return CostModel(self.context).breakdown(merged).total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "BatchResult(%d subjects, %.3fs)" % (len(self), self.seconds)


class SecureStation:
    """Multi-client SOE facade: documents, grants, plan cache, batches.

    Parameters
    ----------
    master_secret:
        Station-resident secret; derives per-document keys (when none
        is supplied at :meth:`publish`) and per-session link keys.
    context:
        Platform context used for simulated-cost accounting.
    plan_cache_size:
        Capacity of the compiled-plan LRU (entries, not bytes).
    use_skip_index:
        The TCSBR/Brute-Force switch, station-wide.
    """

    def __init__(
        self,
        master_secret: bytes = b"station-master-secret",
        context: Union[str, PlatformContext] = "smartcard",
        plan_cache_size: int = 32,
        use_skip_index: bool = True,
    ):
        if plan_cache_size < 1:
            raise ValueError("plan_cache_size must be >= 1")
        self._secret = master_secret
        self.platform = CONTEXTS[context] if isinstance(context, str) else context
        self.use_skip_index = use_skip_index
        self.plan_cache_size = plan_cache_size
        self.stats = StationStats()
        self._documents: Dict[str, Tuple[PreparedDocument, bytes]] = {}
        self._grants: Dict[Tuple[str, str], Policy] = {}
        self._plans: "OrderedDict[Tuple[str, str], PolicyPlan]" = OrderedDict()
        self._session_counter = 0

    # ------------------------------------------------------------------
    # Key derivation
    # ------------------------------------------------------------------
    def _derive_key(self, label: str) -> bytes:
        return hashlib.sha1(self._secret + b"|" + label.encode("utf-8")).digest()[:16]

    def _derive_session_key(self, subject: str, session_id: int) -> bytes:
        return self._derive_key("session|%s|%d" % (subject, session_id))

    # ------------------------------------------------------------------
    # Publishing and grants
    # ------------------------------------------------------------------
    def publish(
        self,
        document_id: str,
        document: Union[str, Node, PreparedDocument],
        scheme: str = "ECB-MHT",
        key: Optional[bytes] = None,
    ) -> PreparedDocument:
        """Register a document: parse/encode/encrypt it (publisher
        pipeline) unless an already-:class:`PreparedDocument` is given."""
        if key is None:
            key = self._derive_key("document|%s" % document_id)
        if isinstance(document, PreparedDocument):
            prepared = document
        else:
            pipeline = DocumentPipeline.publisher(
                scheme=scheme, key=key, context=self.platform
            )
            if isinstance(document, Node):
                ctx = pipeline.run(tree=document)
            else:
                ctx = pipeline.run(source=document)
            prepared = ctx.prepared
        self._documents[document_id] = (prepared, key)
        return prepared

    def document(self, document_id: str) -> PreparedDocument:
        try:
            return self._documents[document_id][0]
        except KeyError:
            raise StationError("unknown document %r" % document_id)

    def grant(self, document_id: str, policy: Policy, subject: Optional[str] = None) -> None:
        """Attach ``policy`` to ``(document, subject)``; the subject
        defaults to the policy's own."""
        if document_id not in self._documents:
            raise StationError("unknown document %r" % document_id)
        subject = policy.subject if subject is None else subject
        self._grants[(document_id, subject)] = policy

    def revoke(self, document_id: str, subject: str) -> None:
        self._grants.pop((document_id, subject), None)

    def _policy_for(self, document_id: str, subject: str) -> Policy:
        try:
            return self._grants[(document_id, subject)]
        except KeyError:
            raise StationError(
                "no grant for subject %r on document %r" % (subject, document_id)
            )

    # ------------------------------------------------------------------
    # Plan cache
    # ------------------------------------------------------------------
    def plan_for(self, policy: Union[Policy, PolicyPlan]) -> PolicyPlan:
        """Compiled plan for ``policy``, via the (subject, digest) LRU."""
        if isinstance(policy, PolicyPlan):
            return policy
        key = (policy.subject, policy_digest(policy))
        plan = self._plans.get(key)
        if plan is not None:
            self._plans.move_to_end(key)
            self.stats.plan_hits += 1
            return plan
        self.stats.plan_misses += 1
        plan = compile_policy(policy)
        self._plans[key] = plan
        while len(self._plans) > self.plan_cache_size:
            self._plans.popitem(last=False)
            self.stats.plan_evictions += 1
        return plan

    def cached_plans(self) -> int:
        return len(self._plans)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def connect(self, subject: str) -> StationSession:
        self._session_counter += 1
        self.stats.sessions_opened += 1
        return StationSession(self, subject, self._session_counter)

    def evaluate(
        self,
        document_id: str,
        subject_or_policy: Union[str, Policy, PolicyPlan],
        query=None,
    ) -> SessionResult:
        """One request: the authorized view of one document for one
        subject (grant lookup) or explicit policy/plan."""
        prepared = self.document(document_id)
        if isinstance(subject_or_policy, str):
            policy = self._policy_for(document_id, subject_or_policy)
        else:
            policy = subject_or_policy
        plan = self.plan_for(policy)
        self.stats.requests += 1
        pipeline = DocumentPipeline.consumer(
            plan,
            query=plan.query_plan(query),
            use_skip_index=self.use_skip_index,
            context=self.platform,
        )
        ctx = pipeline.run(prepared=prepared)
        return SessionResult(ctx.view, ctx.meter, ctx.breakdown, self.platform)

    def stream(
        self,
        document_id: str,
        subject_or_policy: Union[str, Policy, PolicyPlan],
        query=None,
        chunk_size: int = 4096,
        sealer=None,
    ) -> ViewStream:
        """Evaluate and hand the serialized view off for chunked
        delivery (the network layer's entry point)."""
        result = self.evaluate(document_id, subject_or_policy, query=query)
        payload = serialize_events(result.events).encode("utf-8")
        return ViewStream(result, payload, chunk_size, sealer=sealer)

    def evaluate_many(
        self,
        document_id: str,
        subjects: Sequence[Union[str, Policy, PolicyPlan]],
        query=None,
    ) -> BatchResult:
        """Serve every subject in one pass over the encrypted chunks.

        The store is transferred, decrypted and integrity-verified
        exactly once (the ``shared_meter`` of the result); each
        subject's compiled plan then runs over the decoded event stream
        in SOE memory with exact Skip-index metadata.

        Per-subject problems — a missing grant, a policy that fails to
        compile, an evaluation crash — become :class:`SubjectFailure`
        entries in the returned :class:`BatchResult` instead of
        exceptions, so one bad subject cannot kill a multi-client
        response.  Batch-level misuse (unknown document, duplicate
        subjects) still raises.
        """
        prepared = self.document(document_id)
        plans: List[Tuple[str, Union[PolicyPlan, SubjectFailure]]] = []
        for entry in subjects:
            if isinstance(entry, str):
                label = entry
            else:
                label = getattr(entry, "subject", "") or "subject%d" % len(plans)
            if any(label == existing for existing, _plan in plans):
                raise ValueError(
                    "duplicate subject %r in evaluate_many batch" % label
                )
            try:
                if isinstance(entry, str):
                    policy = self._policy_for(document_id, entry)
                else:
                    policy = entry
                plans.append((label, self.plan_for(policy)))
            except StationError as exc:
                plans.append((label, SubjectFailure(label, "no-grant", str(exc))))
            except Exception as exc:
                plans.append(
                    (label, SubjectFailure(label, "compile-error", str(exc)))
                )

        shared_meter = Meter()
        events = self._decode_once(prepared, shared_meter)

        per_subject: "OrderedDict[str, Union[SessionResult, SubjectFailure]]" = (
            OrderedDict()
        )
        cost_model = CostModel(self.platform)
        for label, plan in plans:
            if isinstance(plan, SubjectFailure):
                per_subject[label] = plan
                self.stats.batch_failures += 1
                continue
            meter = Meter()
            try:
                navigator = EventListNavigator(
                    events, provide_meta=self.use_skip_index, meter=meter
                )
                evaluator = StreamingEvaluator(
                    plan,
                    query=plan.query_plan(query),
                    meter=meter,
                    enable_skipping=self.use_skip_index,
                )
                view = evaluator.run(navigator)
            except Exception as exc:
                per_subject[label] = SubjectFailure(label, "evaluate", str(exc))
                self.stats.batch_failures += 1
                continue
            meter.bytes_delivered += delivered_bytes(view)
            per_subject[label] = SessionResult(
                view, meter, cost_model.breakdown(meter), self.platform
            )
            self.stats.requests += 1
        self.stats.batches += 1
        self.stats.batch_subjects += len(plans)
        return BatchResult(per_subject, shared_meter, self.platform)

    # ------------------------------------------------------------------
    def _decode_once(
        self, prepared: PreparedDocument, meter: Meter
    ) -> List[Event]:
        """Decrypt + verify + decode the full store into an event list,
        charging every primitive cost to ``meter`` exactly once."""
        reader = prepared.scheme.reader(prepared.secure, meter)
        navigator = SkipIndexNavigator(
            SecureBytes(reader),
            dictionary=prepared.encoded.dictionary,
            start_offset=prepared.encoded.root_offset,
            meter=meter,
            provide_meta=False,
        )
        events: List[Event] = []
        while True:
            item = navigator.next()
            if item is None:
                return events
            events.append(Event(item[0], item[1]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SecureStation(%d documents, %d grants, %d cached plans)" % (
            len(self._documents),
            len(self._grants),
            len(self._plans),
        )
