"""Compiled evaluation plans (the provisioning-time half of the SOE).

The paper's target device compiles each subject's access rules into
Access Rule Automata *once*, when the policy is provisioned over the
secure channel (Section 2); the per-document streaming work then only
walks precompiled NFA states.  The seed code re-parsed and re-compiled
every rule on every :class:`~repro.accesscontrol.evaluator.
StreamingEvaluator` construction, paying the XPath parser on the hot
path.  This module restores the paper's cost split:

* :func:`compile_policy` produces a frozen :class:`PolicyPlan` — parsed
  rules, compiled automata and the token-filter label sets — reusable
  across any number of documents and requests;
* :class:`QueryPlan` is the same for one ad-hoc query (bound to the
  plan's subject), memoized per plan so a hot query string compiles
  once.

Plans are immutable by convention: evaluators only ever *read* the
automata (all mutable evaluation state lives in tokens/instances), so a
single plan can safely back many concurrent sessions.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Iterable, Optional, Sequence, Tuple, Union

from repro.accesscontrol.model import AccessRule, Policy
from repro.xpath.ast import SELF, WILDCARD, Path
from repro.xpath.nfa import Automaton, compile_path
from repro.xpath.parser import parse_xpath


def structural_steps(path: Path) -> Optional[Tuple[Tuple[str, str], ...]]:
    """``((axis, tag), ...)`` when every step names a concrete tag.

    This is the index-eligibility test of the structural accelerator: a
    path whose navigation has no wildcard ambiguity (``*``/``.``)
    resolves to pre/post range predicates over the publish-time index.
    Predicates are allowed — the index answers a *superset* and the
    evaluator still decides membership — so only the node tests gate
    eligibility.  Returns ``None`` for wildcard/self steps or relative
    paths (the evaluator anchors those differently).
    """
    if not path.absolute or not path.steps:
        return None
    steps = []
    for step in path.steps:
        if step.test in (WILDCARD, SELF):
            return None
        steps.append((step.axis, step.test))
    return tuple(steps)


def policy_digest(policy: Policy) -> str:
    """Stable content digest of a policy (cache key material).

    Covers the subject binding, the dummy-tag rendering choice and the
    exact rule list (sign + object expression + name), so two policies
    with the same digest compile to interchangeable plans.
    """
    hasher = hashlib.sha1()

    def feed(text: str) -> None:
        # Length-prefix every field so no crafted rule text can collide
        # with another policy's field boundaries.
        data = text.encode("utf-8")
        hasher.update(len(data).to_bytes(4, "big"))
        hasher.update(data)

    feed(policy.subject)
    feed(repr(policy.dummy_tag))
    for rule in policy.rules:
        feed(rule.sign)
        feed(str(rule.object))
        feed(rule.name)
    return hasher.hexdigest()


class QueryPlan:
    """One compiled ``XP{[],*,//}`` query, bound to a subject.

    The evaluator appends the query automaton after the rule automata;
    keeping it a separate object lets one :class:`PolicyPlan` serve
    many distinct queries without recompiling the policy.
    """

    __slots__ = ("path", "automaton", "subject", "trigger_labels", "structural")

    def __init__(self, path: Path, automaton: Automaton, subject: str = ""):
        self.path = path
        self.automaton = automaton
        self.subject = subject
        #: Labels that can fire any transition of the query automaton
        #: (None when a wildcard makes every label a trigger) — feeds
        #: the evaluator's skip-pruned replay.
        self.trigger_labels = path.trigger_labels()
        #: ``(axis, tag)`` pairs when the path is free of wildcard
        #: ambiguity — the structural index resolves such a plan to
        #: candidate chunk ranges before any decryption (None: the plan
        #: is not index-eligible and the station streams).
        self.structural = structural_steps(path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "QueryPlan(%s)" % self.path


def compile_query(
    query: Union[str, Path], subject: str = ""
) -> QueryPlan:
    """Parse (if needed), bind ``USER`` and compile one query."""
    path = parse_xpath(query) if isinstance(query, str) else query
    path = path.bind_user(subject)
    return QueryPlan(path, compile_path(path), subject)


class PolicyPlan:
    """Frozen compilation of one subject's policy.

    Attributes
    ----------
    policy:
        The source :class:`~repro.accesscontrol.model.Policy` (``USER``
        already bound).
    rules / automata:
        Parallel tuples: rule *i* is evaluated by automaton *i*.
    label_sets:
        Per-rule token-filter label sets (the labels the rule needs to
        see below a node to ever match — Section 4.2's quick relevance
        check, precomputed here instead of per request).
    digest:
        :func:`policy_digest` of the policy; plan caches key on it.
    """

    __slots__ = (
        "policy",
        "rules",
        "automata",
        "label_sets",
        "trigger_labels",
        "digest",
        "_queries",
        "_queries_lock",
    )

    def __init__(
        self,
        policy: Policy,
        rules: Tuple[AccessRule, ...],
        automata: Tuple[Automaton, ...],
    ):
        self.policy = policy
        self.rules = rules
        self.automata = automata
        self.label_sets: Tuple[frozenset, ...] = tuple(
            rule.object.required_labels() for rule in rules
        )
        # Union of every rule's trigger labels (None when any rule
        # carries a wildcard): a subtree disjoint from this set can
        # never fire a transition in any of the policy's automata, so
        # the evaluator's skip-pruned replay may decide it wholesale.
        trigger: Optional[frozenset] = frozenset()
        for rule in rules:
            rule_trigger = rule.object.trigger_labels()
            if rule_trigger is None:
                trigger = None
                break
            trigger = trigger | rule_trigger
        self.trigger_labels = trigger
        self.digest = policy_digest(policy)
        self._queries: "OrderedDict[str, QueryPlan]" = OrderedDict()
        # One plan backs many concurrent sessions (the station shares
        # plans across server executor threads); the memo is the only
        # mutable part, so it gets its own lock.
        self._queries_lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def subject(self) -> str:
        return self.policy.subject

    def required_labels(self) -> frozenset:
        """Union of every rule's token-filter label set."""
        return self.policy.required_labels()

    #: Per-plan query memo bound: a long-lived plan serving ad-hoc
    #: client queries must not grow without limit.
    QUERY_CACHE_SIZE = 32

    def query_plan(
        self, query: Union[str, Path, QueryPlan, None]
    ) -> Optional[QueryPlan]:
        """Compiled form of ``query``, memoized per plan (small LRU).

        Accepts ``None`` (no query), an already-compiled
        :class:`QueryPlan` (returned as-is) or a string/:class:`Path`
        (compiled once per distinct text and cached on the plan).
        """
        if query is None:
            return None
        if isinstance(query, QueryPlan):
            return query
        key = query if isinstance(query, str) else str(query)
        with self._queries_lock:
            plan = self._queries.get(key)
            if plan is not None:
                self._queries.move_to_end(key)
                return plan
        # Compile outside the lock; concurrent compiles of the same
        # query are harmless (last insert wins).
        plan = compile_query(query, self.policy.subject)
        with self._queries_lock:
            self._queries[key] = plan
            while len(self._queries) > self.QUERY_CACHE_SIZE:
                self._queries.popitem(last=False)
        return plan

    def cached_queries(self) -> int:
        with self._queries_lock:
            return len(self._queries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "PolicyPlan(%s, %d rules, %s)" % (
            self.policy.subject or "<anonymous>",
            len(self.rules),
            self.digest[:10],
        )


def compile_policy(
    policy: Union[Policy, Sequence[AccessRule], Iterable[Tuple[str, str]]],
    subject: str = "",
    dummy_tag: Optional[str] = None,
) -> PolicyPlan:
    """Compile ``policy`` into a reusable :class:`PolicyPlan`.

    ``policy`` may be a :class:`~repro.accesscontrol.model.Policy`, a
    sequence of :class:`AccessRule`, or ``(sign, xpath)`` pairs (the
    :func:`~repro.accesscontrol.model.make_policy` shorthand); the last
    two are wrapped into a Policy with ``subject``/``dummy_tag``.

    >>> plan = compile_policy([("+", "//a")])
    >>> plan is compile_policy(plan)  # idempotent passthrough
    True
    """
    if isinstance(policy, PolicyPlan):
        return policy
    if not isinstance(policy, Policy):
        items = list(policy)
        if items and not isinstance(items[0], AccessRule):
            items = [AccessRule(sign, obj) for sign, obj in items]
        policy = Policy(items, subject=subject, dummy_tag=dummy_tag)
    rules = tuple(policy.rules)
    automata = tuple(compile_path(rule.object) for rule in rules)
    return PolicyPlan(policy, rules, automata)
