"""Engine layer: compiled plans, the unified pipeline, the station.

This package is the reusable, cache-backed core the rest of the
codebase routes through (see ``DESIGN.md`` for the layer diagram):

* :mod:`repro.engine.plans` — :func:`compile_policy` /
  :class:`PolicyPlan` / :class:`QueryPlan`: provisioning-time XPath
  parsing and automaton compilation, done once and reused across
  documents and requests;
* :mod:`repro.engine.pipeline` — :class:`DocumentPipeline`: the
  parse -> encode -> encrypt -> stream-decrypt -> evaluate ->
  integrity-check -> serialize dataflow as composable, metered stages;
* :mod:`repro.engine.station` — :class:`SecureStation`: a multi-client
  SOE facade with an LRU plan cache, per-session key material and
  batched :meth:`~SecureStation.evaluate_many`.

Layering rule: engine modules may import every lower layer (xpath,
accesscontrol, skipindex, crypto, soe); lower layers import the engine
only lazily inside functions, so there are no import cycles.
"""

from repro.engine.pipeline import (
    DecryptStreamStage,
    DocumentPipeline,
    EncodeStage,
    EncryptStage,
    EvaluateStage,
    FunctionStage,
    IntegrityAuditStage,
    ParseStage,
    PipelineContext,
    PipelineError,
    SerializeStage,
    Stage,
)
from repro.engine.plans import (
    PolicyPlan,
    QueryPlan,
    compile_policy,
    compile_query,
    policy_digest,
)
from repro.engine.station import (
    BatchResult,
    PublishOptions,
    SecureStation,
    StationConfig,
    StationError,
    StationSession,
    StationStats,
    SubjectFailure,
    UpdateResult,
    ViewStream,
    open_sealed,
    seal_payload,
)

__all__ = [
    # plans
    "PolicyPlan",
    "QueryPlan",
    "compile_policy",
    "compile_query",
    "policy_digest",
    # pipeline
    "DocumentPipeline",
    "PipelineContext",
    "PipelineError",
    "Stage",
    "FunctionStage",
    "ParseStage",
    "EncodeStage",
    "EncryptStage",
    "DecryptStreamStage",
    "EvaluateStage",
    "IntegrityAuditStage",
    "SerializeStage",
    # station
    "SecureStation",
    "StationConfig",
    "PublishOptions",
    "StationSession",
    "StationStats",
    "StationError",
    "BatchResult",
    "SubjectFailure",
    "UpdateResult",
    "ViewStream",
    "seal_payload",
    "open_sealed",
]
